//! Multi-RHS (batched) variants of the hot `_into` kernels.
//!
//! The serving runtime coalesces same-signature requests into one batched
//! execution: request `t`'s operand columns live in block `t` of a
//! column-stacked buffer (`rows × capacity·k`, block `t` occupying columns
//! `[t·k, (t+1)·k)`). Buffers are sized once for the widest batch
//! (`capacity`) and a batch of `batch ≤ capacity` touches only the leading
//! `batch` blocks, so steady-state batched execution allocates nothing.
//!
//! Every kernel here mirrors its serial sibling's inner loop **exactly** per
//! block/column (same accumulation order, same zero-skip, same identity
//! fill), which makes each block of a batched result bitwise identical to
//! the serial `_into` result for that request — the correctness contract the
//! serving tests assert.
//!
//! Parallelism remains deterministic: `par_rows` splits disjoint output rows
//! exactly as in the serial kernels (with the stacked width, a batch crosses
//! the parallel threshold earlier — small graphs that ran serially per
//! request parallelize across the batch for free).

use crate::parallel::{par_rows, par_rows_weighted};
use crate::{CsrMatrix, DenseMatrix, MatrixError, Result, Semiring};

use super::rowkernel::{gemm_row, spmm_row};
use super::BroadcastOp;

fn check_wide(op: &'static str, want_rows: usize, want_cols: usize, m: &DenseMatrix) -> Result<()> {
    if m.rows() != want_rows || m.cols() < want_cols {
        return Err(MatrixError::ShapeMismatch {
            op,
            lhs: (want_rows, want_cols),
            rhs: m.shape(),
        });
    }
    Ok(())
}

/// Block-batched GEMM: for every block `t < batch`,
/// `out[:, t·k2..(t+1)·k2] = a[:, t·k1..(t+1)·k1] · b`.
///
/// `a` and `out` are column-stacked batched buffers (at least `batch` blocks
/// wide); `b` is the shared (unbatched) `k1 × k2` right-hand side. Each
/// block runs the exact serial [`gemm_into`](super::gemm_into) loop
/// (`i-k-j`, zero-filled, zero-`aik` skipped), so block `t` is bitwise equal
/// to the serial product for request `t`.
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] if `a` or `out` has fewer than
/// `batch` blocks or mismatched rows.
pub fn gemm_rhs_blocks_into(
    a: &DenseMatrix,
    b: &DenseMatrix,
    batch: usize,
    out: &mut DenseMatrix,
) -> Result<()> {
    let (k1, k2) = (b.rows(), b.cols());
    check_wide("gemm_rhs_blocks", a.rows(), batch * k1, a)?;
    check_wide("gemm_rhs_blocks_into", a.rows(), batch * k2, out)?;
    let rows = a.rows();
    let width = out.cols();
    par_rows(out.as_mut_slice(), rows, width, |i, out_row| {
        let a_row = a.row(i);
        for t in 0..batch {
            // The shared GEMM row kernel: same zero-skip, same k order, and
            // the same SIMD column tiling as the serial `gemm_into` path.
            gemm_row(
                &a_row[t * k1..(t + 1) * k1],
                b,
                &mut out_row[t * k2..(t + 1) * k2],
            );
        }
    });
    Ok(())
}

/// Multi-column SpMM: [`spmm_into`](super::spmm_into) over the leading
/// `active` columns of a wide feature/output pair.
///
/// One pass over the adjacency serves every stacked request: per edge the
/// column index and edge weight are loaded once and folded into all `active`
/// columns. Per column the fold sequence is identical to the serial kernel
/// (same edge order, same identity, same mean finish), so each column — and
/// therefore each request's block — is bitwise equal to its serial result.
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] on row mismatches or buffers
/// narrower than `active`.
pub fn spmm_cols_into(
    adj: &CsrMatrix,
    feats: &DenseMatrix,
    active: usize,
    semiring: Semiring,
    out: &mut DenseMatrix,
) -> Result<()> {
    if adj.cols() != feats.rows() {
        return Err(MatrixError::ShapeMismatch {
            op: "spmm_cols",
            lhs: adj.shape(),
            rhs: feats.shape(),
        });
    }
    check_wide("spmm_cols", feats.rows(), active, feats)?;
    check_wide("spmm_cols_into", adj.rows(), active, out)?;
    let width = out.cols();
    // The shared SpMM row kernel over the leading `active` columns, with the
    // same nnz-weighted scheduling as the serial path: per column the fold
    // order is identical to `spmm_into`, so each block stays bitwise equal
    // to its serial result.
    par_rows_weighted(
        out.as_mut_slice(),
        adj.rows(),
        width,
        adj.indptr(),
        |i, full_row| {
            spmm_row(
                &mut full_row[..active],
                adj.row_indices(i),
                adj.row_values(i),
                feats,
                semiring,
            );
        },
    );
    Ok(())
}

/// Multi-column row-broadcast: combines `d[i]` with the leading `active`
/// elements of row `i` (the batched form of
/// [`row_broadcast_into`](super::row_broadcast_into) — `d` is per-node, so
/// one vector serves every stacked request).
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] on length/row mismatches or
/// buffers narrower than `active`.
pub fn row_broadcast_cols_into(
    d: &[f32],
    m: &DenseMatrix,
    active: usize,
    op: BroadcastOp,
    out: &mut DenseMatrix,
) -> Result<()> {
    if d.len() != m.rows() {
        return Err(MatrixError::ShapeMismatch {
            op: "row_broadcast_cols",
            lhs: (d.len(), 1),
            rhs: m.shape(),
        });
    }
    check_wide("row_broadcast_cols", m.rows(), active, m)?;
    check_wide("row_broadcast_cols_into", m.rows(), active, out)?;
    // The op match is hoisted out of the element loop: each arm monomorphizes
    // a branch-free (and autovectorizable) inner loop.
    match op {
        BroadcastOp::Mul => row_broadcast_cols_run(d, m, active, out, |di, mv| di * mv),
        BroadcastOp::Add => row_broadcast_cols_run(d, m, active, out, |di, mv| di + mv),
    }
    Ok(())
}

#[inline(always)]
fn row_broadcast_cols_run<F: Fn(f32, f32) -> f32 + Sync>(
    d: &[f32],
    m: &DenseMatrix,
    active: usize,
    out: &mut DenseMatrix,
    f: F,
) {
    let width = out.cols();
    par_rows(out.as_mut_slice(), m.rows(), width, |i, full_row| {
        let di = d[i];
        for (v, &mv) in full_row[..active].iter_mut().zip(&m.row(i)[..active]) {
            *v = f(di, mv);
        }
    });
}

/// Block-batched column-broadcast: applies the shared per-column vector `d`
/// (length `k`, one request's column count) to every block:
/// `out[i, t·k + j] = op(d[j], m[i, t·k + j])` for `t < batch`.
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] on row mismatches or buffers
/// narrower than `batch` blocks.
pub fn col_broadcast_blocks_into(
    m: &DenseMatrix,
    d: &[f32],
    batch: usize,
    op: BroadcastOp,
    out: &mut DenseMatrix,
) -> Result<()> {
    let k = d.len();
    check_wide("col_broadcast_blocks", m.rows(), batch * k, m)?;
    check_wide("col_broadcast_blocks_into", m.rows(), batch * k, out)?;
    match op {
        BroadcastOp::Mul => col_broadcast_blocks_run(m, d, batch, out, |dj, mv| dj * mv),
        BroadcastOp::Add => col_broadcast_blocks_run(m, d, batch, out, |dj, mv| dj + mv),
    }
    Ok(())
}

#[inline(always)]
fn col_broadcast_blocks_run<F: Fn(f32, f32) -> f32 + Sync>(
    m: &DenseMatrix,
    d: &[f32],
    batch: usize,
    out: &mut DenseMatrix,
    f: F,
) {
    let k = d.len();
    let width = out.cols();
    par_rows(out.as_mut_slice(), m.rows(), width, |i, full_row| {
        let m_row = m.row(i);
        for t in 0..batch {
            let base = t * k;
            for ((v, &mv), &dj) in full_row[base..base + k]
                .iter_mut()
                .zip(&m_row[base..base + k])
                .zip(d)
            {
                *v = f(dj, mv);
            }
        }
    });
}

/// Multi-column element-wise map over the leading `active` columns
/// (the batched form of the dense map the ReLU step lowers to).
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] on row mismatches or buffers
/// narrower than `active`.
pub fn map_cols_into(
    m: &DenseMatrix,
    active: usize,
    f: impl Fn(f32) -> f32 + Sync,
    out: &mut DenseMatrix,
) -> Result<()> {
    check_wide("map_cols", m.rows(), active, m)?;
    check_wide("map_cols_into", m.rows(), active, out)?;
    let width = out.cols();
    par_rows(out.as_mut_slice(), m.rows(), width, |i, full_row| {
        for (v, &mv) in full_row[..active].iter_mut().zip(&m.row(i)[..active]) {
            *v = f(mv);
        }
    });
    Ok(())
}

/// Multi-column element-wise zip-accumulate over the leading `active`
/// columns: `dst[i, c] = f(dst[i, c], src[i, c])` (the batched form of the
/// in-place accumulation the AddN step lowers to).
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] on row mismatches or buffers
/// narrower than `active`.
pub fn zip_cols_assign(
    dst: &mut DenseMatrix,
    src: &DenseMatrix,
    active: usize,
    f: impl Fn(f32, f32) -> f32 + Sync,
) -> Result<()> {
    check_wide("zip_cols_src", dst.rows(), active, src)?;
    check_wide("zip_cols_dst", src.rows(), active, dst)?;
    let width = dst.cols();
    let rows = dst.rows();
    par_rows(dst.as_mut_slice(), rows, width, |i, full_row| {
        for (v, &sv) in full_row[..active].iter_mut().zip(&src.row(i)[..active]) {
            *v = f(*v, sv);
        }
    });
    Ok(())
}

/// Copies the leading `active` columns of `src` into `dst` (row by row; the
/// batched form of the uncharged seed copy AddN starts from).
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] on row mismatches or buffers
/// narrower than `active`.
pub fn copy_cols_into(src: &DenseMatrix, active: usize, dst: &mut DenseMatrix) -> Result<()> {
    check_wide("copy_cols_src", dst.rows(), active, src)?;
    check_wide("copy_cols_dst", src.rows(), active, dst)?;
    let width = dst.cols();
    let rows = dst.rows();
    par_rows(dst.as_mut_slice(), rows, width, |i, full_row| {
        full_row[..active].copy_from_slice(&src.row(i)[..active]);
    });
    Ok(())
}

/// Tiles `src` (`rows × k`) into the leading `batch` blocks of the wide
/// `dst`: `dst[i, t·k + j] = src[i, j]` for every `t < batch` — how the
/// shared per-signature feature matrix is stacked across a batch.
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] if `dst` has fewer than `batch`
/// blocks or mismatched rows.
pub fn tile_cols_into(src: &DenseMatrix, batch: usize, dst: &mut DenseMatrix) -> Result<()> {
    let k = src.cols();
    check_wide("tile_cols", src.rows(), batch * k, dst)?;
    let width = dst.cols();
    let rows = dst.rows();
    par_rows(dst.as_mut_slice(), rows, width, |i, full_row| {
        let s_row = src.row(i);
        for t in 0..batch {
            full_row[t * k..(t + 1) * k].copy_from_slice(s_row);
        }
    });
    Ok(())
}

/// Copies block `t` (width `dst.cols()`) of the wide `src` into the
/// per-request `dst` — how one request's result is extracted from a batched
/// output buffer.
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] if block `t` lies outside `src`.
pub fn copy_block_into(src: &DenseMatrix, t: usize, dst: &mut DenseMatrix) -> Result<()> {
    let k = dst.cols();
    check_wide("copy_block", dst.rows(), (t + 1) * k, src)?;
    let base = t * k;
    let rows = dst.rows();
    let width = dst.cols();
    par_rows(dst.as_mut_slice(), rows, width, |i, row| {
        row.copy_from_slice(&src.row(i)[base..base + k]);
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::{col_broadcast_into, gemm_into, row_broadcast_into, spmm_into};
    use super::*;
    use crate::CooMatrix;

    fn wide(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
        DenseMatrix::random(rows, cols, 1.0, seed)
    }

    fn block(src: &DenseMatrix, t: usize, k: usize) -> DenseMatrix {
        let mut out = DenseMatrix::from_vec(src.rows(), k, vec![0.0; src.rows() * k]).unwrap();
        copy_block_into(src, t, &mut out).unwrap();
        out
    }

    fn sample_adj() -> CsrMatrix {
        CooMatrix::from_entries(
            5,
            5,
            &[
                (0, 1, 2.0),
                (0, 4, 3.0),
                (1, 0, 1.0),
                (2, 2, 4.0),
                (4, 3, 0.5),
            ],
        )
        .unwrap()
        .to_csr()
    }

    #[test]
    fn gemm_blocks_match_serial_bitwise() {
        let (k1, k2, batch, cap) = (4, 3, 3, 5);
        let a = wide(6, cap * k1, 1);
        let b = wide(k1, k2, 2);
        let mut out = DenseMatrix::from_vec(6, cap * k2, vec![f32::NAN; 6 * cap * k2]).unwrap();
        gemm_rhs_blocks_into(&a, &b, batch, &mut out).unwrap();
        for t in 0..batch {
            let a_t = block(&a, t, k1);
            let mut want = DenseMatrix::from_vec(6, k2, vec![0.0; 6 * k2]).unwrap();
            gemm_into(&a_t, &b, &mut want).unwrap();
            assert_eq!(block(&out, t, k2).as_slice(), want.as_slice(), "block {t}");
        }
        // Blocks beyond `batch` are untouched.
        assert!(block(&out, batch, k2).as_slice().iter().all(|v| v.is_nan()));
    }

    #[test]
    fn spmm_cols_match_serial_bitwise() {
        let adj = sample_adj();
        let (k, batch, cap) = (3, 2, 4);
        let feats = wide(5, cap * k, 3);
        let mut out = DenseMatrix::from_vec(5, cap * k, vec![f32::NAN; 5 * cap * k]).unwrap();
        for semiring in [Semiring::plus_mul(), Semiring::mean_copy_rhs()] {
            spmm_cols_into(&adj, &feats, batch * k, semiring, &mut out).unwrap();
            for t in 0..batch {
                let f_t = block(&feats, t, k);
                let mut want = DenseMatrix::from_vec(5, k, vec![0.0; 5 * k]).unwrap();
                spmm_into(&adj, &f_t, semiring, &mut want).unwrap();
                assert_eq!(block(&out, t, k).as_slice(), want.as_slice(), "block {t}");
            }
        }
    }

    #[test]
    fn broadcasts_match_serial_bitwise() {
        let (k, batch, cap) = (3, 3, 4);
        let m = wide(4, cap * k, 7);
        let d_row: Vec<f32> = vec![0.5, -1.0, 2.0, 0.0];
        let d_col: Vec<f32> = vec![1.5, 0.0, -2.5];
        let mut out = DenseMatrix::from_vec(4, cap * k, vec![0.0; 4 * cap * k]).unwrap();
        row_broadcast_cols_into(&d_row, &m, batch * k, BroadcastOp::Mul, &mut out).unwrap();
        for t in 0..batch {
            let m_t = block(&m, t, k);
            let mut want = DenseMatrix::from_vec(4, k, vec![0.0; 4 * k]).unwrap();
            row_broadcast_into(&d_row, &m_t, BroadcastOp::Mul, &mut want).unwrap();
            assert_eq!(block(&out, t, k).as_slice(), want.as_slice());
        }
        col_broadcast_blocks_into(&m, &d_col, batch, BroadcastOp::Mul, &mut out).unwrap();
        for t in 0..batch {
            let m_t = block(&m, t, k);
            let mut want = DenseMatrix::from_vec(4, k, vec![0.0; 4 * k]).unwrap();
            col_broadcast_into(&m_t, &d_col, BroadcastOp::Mul, &mut want).unwrap();
            assert_eq!(block(&out, t, k).as_slice(), want.as_slice());
        }
    }

    #[test]
    fn map_zip_tile_and_extract_roundtrip() {
        let (k, batch, cap) = (2, 3, 4);
        let src = wide(3, k, 9);
        let mut tiled = DenseMatrix::from_vec(3, cap * k, vec![0.0; 3 * cap * k]).unwrap();
        tile_cols_into(&src, batch, &mut tiled).unwrap();
        for t in 0..batch {
            assert_eq!(block(&tiled, t, k).as_slice(), src.as_slice());
        }
        let mut mapped = DenseMatrix::from_vec(3, cap * k, vec![0.0; 3 * cap * k]).unwrap();
        map_cols_into(&tiled, batch * k, |v| v.max(0.0), &mut mapped).unwrap();
        for t in 0..batch {
            assert_eq!(
                block(&mapped, t, k).as_slice(),
                src.map(|v| v.max(0.0)).as_slice()
            );
        }
        let mut acc = DenseMatrix::from_vec(3, cap * k, vec![0.0; 3 * cap * k]).unwrap();
        copy_cols_into(&tiled, batch * k, &mut acc).unwrap();
        zip_cols_assign(&mut acc, &tiled, batch * k, |a, b| a + b).unwrap();
        for t in 0..batch {
            assert_eq!(
                block(&acc, t, k).as_slice(),
                src.add(&src).unwrap().as_slice()
            );
        }
    }

    #[test]
    fn narrow_buffers_are_rejected() {
        let a = wide(2, 4, 1);
        let b = wide(2, 2, 2);
        let mut out = DenseMatrix::from_vec(2, 2, vec![0.0; 4]).unwrap();
        assert!(gemm_rhs_blocks_into(&a, &b, 3, &mut out).is_err());
        assert!(copy_block_into(&a, 2, &mut out).is_err());
    }
}
