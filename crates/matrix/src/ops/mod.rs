//! The sparse and dense matrix primitives GNN computations decompose into.
//!
//! Following the paper's §II, every GNN stage lowers to a composition of:
//!
//! - [`gemm`] — dense matrix multiplication (update stage),
//! - [`spmm`] — generalized SpMM (node-wise aggregation),
//! - [`sddmm`] / [`sddmm_u_add_v`] — generalized SDDMM (edge-wise computation),
//! - [`row_broadcast`] / [`col_broadcast`] — per-node scaling (normalization),
//! - [`edge_softmax`] — attention-score normalization,
//! - [`scale_csr`] — `diag · sparse · diag` edge scaling (the SDDMM lowering
//!   of GCN's pre-computed normalization, Eq. 3),
//! - [`degrees_by_binning`] — WiseGraph's scatter-add degree computation.
//!
//! All kernels are deterministic: parallelism is over disjoint output rows.
//!
//! Every hot kernel also has a `*_into` variant writing into a caller-provided
//! buffer (recycled via [`crate::Workspace`]); the allocating form delegates to
//! it, so the two are bitwise identical. The `_into` forms are what the
//! compile-once execution engine drives in steady state.

mod batched;
mod broadcast;
mod edge;
mod gemm;
mod rowkernel;
mod sddmm;
mod spmm;

pub use batched::{
    col_broadcast_blocks_into, copy_block_into, copy_cols_into, gemm_rhs_blocks_into,
    map_cols_into, row_broadcast_cols_into, spmm_cols_into, tile_cols_into, zip_cols_assign,
};
pub use broadcast::{
    col_broadcast, col_broadcast_into, row_broadcast, row_broadcast_into, BroadcastOp,
};
pub use edge::{degrees_by_binning, edge_softmax, edge_softmax_into, scale_csr, scale_csr_into};
pub use gemm::{gemm, gemm_into};
pub use sddmm::{sddmm, sddmm_into, sddmm_u_add_v, sddmm_u_add_v_into};
pub use spmm::{spmm, spmm_into};

/// The compiled kernel configuration: which dispatch path the hot `_into`
/// kernels take and the tile/banding/scheduling constants they use. Surfaced
/// by the CLI's `kernels` command so a bench or serve run can record exactly
/// which kernel build produced its numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Whether the `simd` feature's vectorized paths are the dispatch target.
    pub simd: bool,
    /// `f32` lanes per SIMD vector.
    pub lanes: usize,
    /// Hub-band SpMM column tile, in vectors.
    pub spmm_col_tile: usize,
    /// Stored-edge count at or below which a row takes the short-row band.
    pub short_row_edges: usize,
    /// Output rows per register-tiled GEMM block.
    pub gemm_row_block: usize,
    /// GEMM column tile, in vectors.
    pub gemm_col_tile: usize,
    /// nnz-equivalents per weighted scheduler chunk.
    pub chunk_weight: u64,
    /// Flat per-row cost the weighted schedulers add on top of nnz.
    pub row_base_cost: u64,
    /// Work threshold (elements) below which kernels stay serial.
    pub parallel_threshold: usize,
    /// Resolved worker-thread count (after `GRANII_THREADS` and the cap).
    pub threads: usize,
}

impl std::fmt::Display for KernelConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "kernels: {} (f32x{})",
            if self.simd { "simd" } else { "scalar" },
            self.lanes
        )?;
        writeln!(
            f,
            "  spmm   : col tile {} vec, short-row band <= {} edges",
            self.spmm_col_tile, self.short_row_edges
        )?;
        writeln!(
            f,
            "  gemm   : {} x {}-vec register tile",
            self.gemm_row_block, self.gemm_col_tile
        )?;
        writeln!(
            f,
            "  sched  : nnz-weighted chunks of {} (+{}/row), serial under {} elems",
            self.chunk_weight, self.row_base_cost, self.parallel_threshold
        )?;
        write!(f, "  threads: {}", self.threads)
    }
}

/// Returns the kernel configuration compiled into this build (plus the
/// runtime-resolved thread count).
pub fn kernel_config() -> KernelConfig {
    KernelConfig {
        simd: rowkernel::simd_enabled(),
        lanes: crate::simd::LANES,
        spmm_col_tile: rowkernel::SPMM_COL_TILE,
        short_row_edges: rowkernel::SHORT_ROW_EDGES,
        gemm_row_block: rowkernel::GEMM_ROW_BLOCK,
        gemm_col_tile: rowkernel::GEMM_COL_TILE,
        chunk_weight: crate::parallel::CHUNK_WEIGHT,
        row_base_cost: crate::parallel::ROW_BASE_COST,
        parallel_threshold: crate::parallel::PARALLEL_THRESHOLD,
        threads: crate::parallel::num_threads(),
    }
}
