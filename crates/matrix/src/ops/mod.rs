//! The sparse and dense matrix primitives GNN computations decompose into.
//!
//! Following the paper's §II, every GNN stage lowers to a composition of:
//!
//! - [`gemm`] — dense matrix multiplication (update stage),
//! - [`spmm`] — generalized SpMM (node-wise aggregation),
//! - [`sddmm`] / [`sddmm_u_add_v`] — generalized SDDMM (edge-wise computation),
//! - [`row_broadcast`] / [`col_broadcast`] — per-node scaling (normalization),
//! - [`edge_softmax`] — attention-score normalization,
//! - [`scale_csr`] — `diag · sparse · diag` edge scaling (the SDDMM lowering
//!   of GCN's pre-computed normalization, Eq. 3),
//! - [`degrees_by_binning`] — WiseGraph's scatter-add degree computation.
//!
//! All kernels are deterministic: parallelism is over disjoint output rows.

mod broadcast;
mod edge;
mod gemm;
mod sddmm;
mod spmm;

pub use broadcast::{col_broadcast, row_broadcast, BroadcastOp};
pub use edge::{degrees_by_binning, edge_softmax, scale_csr};
pub use gemm::gemm;
pub use sddmm::{sddmm, sddmm_u_add_v};
pub use spmm::spmm;
