//! The sparse and dense matrix primitives GNN computations decompose into.
//!
//! Following the paper's §II, every GNN stage lowers to a composition of:
//!
//! - [`gemm`] — dense matrix multiplication (update stage),
//! - [`spmm`] — generalized SpMM (node-wise aggregation),
//! - [`sddmm`] / [`sddmm_u_add_v`] — generalized SDDMM (edge-wise computation),
//! - [`row_broadcast`] / [`col_broadcast`] — per-node scaling (normalization),
//! - [`edge_softmax`] — attention-score normalization,
//! - [`scale_csr`] — `diag · sparse · diag` edge scaling (the SDDMM lowering
//!   of GCN's pre-computed normalization, Eq. 3),
//! - [`degrees_by_binning`] — WiseGraph's scatter-add degree computation.
//!
//! All kernels are deterministic: parallelism is over disjoint output rows.
//!
//! Every hot kernel also has a `*_into` variant writing into a caller-provided
//! buffer (recycled via [`crate::Workspace`]); the allocating form delegates to
//! it, so the two are bitwise identical. The `_into` forms are what the
//! compile-once execution engine drives in steady state.

mod batched;
mod broadcast;
mod edge;
mod gemm;
mod sddmm;
mod spmm;

pub use batched::{
    col_broadcast_blocks_into, copy_block_into, copy_cols_into, gemm_rhs_blocks_into,
    map_cols_into, row_broadcast_cols_into, spmm_cols_into, tile_cols_into, zip_cols_assign,
};
pub use broadcast::{
    col_broadcast, col_broadcast_into, row_broadcast, row_broadcast_into, BroadcastOp,
};
pub use edge::{degrees_by_binning, edge_softmax, edge_softmax_into, scale_csr, scale_csr_into};
pub use gemm::{gemm, gemm_into};
pub use sddmm::{sddmm, sddmm_into, sddmm_u_add_v, sddmm_u_add_v_into};
pub use spmm::{spmm, spmm_into};
