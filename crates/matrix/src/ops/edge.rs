use crate::ops::sddmm::{check_out_pattern, fresh_vals};
use crate::{CsrMatrix, MatrixError, Result};

/// Scales a sparse matrix by diagonal matrices on both sides:
/// `out = diag(dl) · a · diag(dr)`, i.e. `out[i,j] = dl[i] * a[i,j] * dr[j]`.
///
/// This is the SDDMM-style lowering of GCN's *pre-computed* normalization
/// `Ñ = D^{-1/2} · Ã · D^{-1/2}` (paper Eq. 3): the dense-dense product of the
/// two rank-1 degree vectors is sampled at the adjacency's pattern. Either
/// side may be `None` to scale on one side only.
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] if a scaling vector's length does
/// not match the corresponding dimension.
///
/// # Example
///
/// ```
/// use granii_matrix::{ops, CooMatrix};
///
/// # fn main() -> Result<(), granii_matrix::MatrixError> {
/// let a = CooMatrix::from_entries(2, 2, &[(0, 1, 4.0)])?.to_csr();
/// let out = ops::scale_csr(Some(&[0.5, 1.0]), &a, Some(&[1.0, 0.25]))?;
/// assert_eq!(out.get(0, 1), 0.5);
/// # Ok(())
/// # }
/// ```
pub fn scale_csr(dl: Option<&[f32]>, a: &CsrMatrix, dr: Option<&[f32]>) -> Result<CsrMatrix> {
    if let Some(dl) = dl {
        if dl.len() != a.rows() {
            return Err(MatrixError::ShapeMismatch {
                op: "scale_csr",
                lhs: (dl.len(), 1),
                rhs: a.shape(),
            });
        }
    }
    if let Some(dr) = dr {
        if dr.len() != a.cols() {
            return Err(MatrixError::ShapeMismatch {
                op: "scale_csr",
                lhs: a.shape(),
                rhs: (dr.len(), 1),
            });
        }
    }
    let vals = fresh_vals(a.nnz());
    let mut out = a.clone().drop_values().with_values(vals)?;
    scale_csr_into(dl, a, dr, &mut out)?;
    Ok(out)
}

/// [`scale_csr`] writing into a caller-provided weighted CSR buffer sharing
/// `a`'s pattern. Every stored position is written, so recycled workspace
/// buffers are safe.
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] on vector-length mismatches or if
/// `out` does not match `a`'s shape/nnz, and [`MatrixError::MissingValues`]
/// if `out` is unweighted.
pub fn scale_csr_into(
    dl: Option<&[f32]>,
    a: &CsrMatrix,
    dr: Option<&[f32]>,
    out: &mut CsrMatrix,
) -> Result<()> {
    if let Some(dl) = dl {
        if dl.len() != a.rows() {
            return Err(MatrixError::ShapeMismatch {
                op: "scale_csr",
                lhs: (dl.len(), 1),
                rhs: a.shape(),
            });
        }
    }
    if let Some(dr) = dr {
        if dr.len() != a.cols() {
            return Err(MatrixError::ShapeMismatch {
                op: "scale_csr",
                lhs: a.shape(),
                rhs: (dr.len(), 1),
            });
        }
    }
    check_out_pattern("scale_csr_into", a, out)?;
    let vals = out.values_mut().expect("checked weighted");
    for i in 0..a.rows() {
        let (s, e) = (a.indptr()[i] as usize, a.indptr()[i + 1] as usize);
        let li = dl.map_or(1.0, |d| d[i]);
        let avals = a.row_values(i);
        for (off, k) in (s..e).enumerate() {
            let j = a.indices()[k] as usize;
            let av = avals.map_or(1.0, |v| v[off]);
            let rj = dr.map_or(1.0, |d| d[j]);
            vals[k] = li * av * rj;
        }
    }
    Ok(())
}

/// Softmax over each row's stored values (GAT's attention normalization).
///
/// Uses the numerically stable max-subtraction formulation. Empty rows are
/// left empty.
///
/// # Errors
///
/// Returns [`MatrixError::MissingValues`] if `a` is unweighted — softmax over
/// implicit ones is a uniform distribution the caller should construct
/// explicitly if intended.
pub fn edge_softmax(a: &CsrMatrix) -> Result<CsrMatrix> {
    let vals = fresh_vals(a.nnz());
    let mut out = a.clone().drop_values().with_values(vals)?;
    edge_softmax_into(a, &mut out)?;
    Ok(out)
}

/// [`edge_softmax`] writing into a caller-provided weighted CSR buffer
/// sharing `a`'s pattern. Empty rows store no positions, so every element of
/// the value array is overwritten and recycled workspace buffers are safe.
///
/// # Errors
///
/// Returns [`MatrixError::MissingValues`] if `a` or `out` is unweighted, and
/// [`MatrixError::ShapeMismatch`] if `out` does not match `a`'s shape/nnz.
pub fn edge_softmax_into(a: &CsrMatrix, out: &mut CsrMatrix) -> Result<()> {
    let vals_in = a
        .values()
        .ok_or(MatrixError::MissingValues("edge_softmax"))?;
    check_out_pattern("edge_softmax_into", a, out)?;
    let vals = out.values_mut().expect("checked weighted");
    for i in 0..a.rows() {
        let (s, e) = (a.indptr()[i] as usize, a.indptr()[i + 1] as usize);
        if s == e {
            continue;
        }
        let row = &vals_in[s..e];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0f32;
        for (off, &v) in row.iter().enumerate() {
            let ev = (v - max).exp();
            vals[s + off] = ev;
            sum += ev;
        }
        for v in &mut vals[s..e] {
            *v /= sum;
        }
    }
    Ok(())
}

/// Computes in-degrees by scatter-add "binning" of edges onto their target
/// node, reproducing WiseGraph's normalization path (paper §VI-C1).
///
/// The *result* equals [`CsrMatrix::in_degrees`]; the difference is the
/// execution shape: every edge issues one atomic increment on its destination
/// bin, so on dense graphs (few bins, many edges) the contention makes this
/// primitive far slower than a row scan. The device models charge it as
/// [`crate::WorkStats::binning`]; GRANII's speedups on dense graphs come from
/// selecting compositions that avoid it.
pub fn degrees_by_binning(a: &CsrMatrix) -> Vec<f32> {
    use std::sync::atomic::{AtomicU32, Ordering};
    let bins: Vec<AtomicU32> = (0..a.cols()).map(|_| AtomicU32::new(0)).collect();
    // The scatter loop: one atomic RMW per edge, matching the GPU kernel shape.
    for &c in a.indices() {
        bins[c as usize].fetch_add(1, Ordering::Relaxed);
    }
    bins.into_iter().map(|b| b.into_inner() as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn adj() -> CsrMatrix {
        CooMatrix::from_entries(3, 3, &[(0, 1, 1.0), (0, 2, 2.0), (1, 2, 3.0), (2, 0, 4.0)])
            .unwrap()
            .to_csr()
    }

    #[test]
    fn scale_csr_scales_both_sides() {
        let a = adj();
        let dl = [2.0, 3.0, 5.0];
        let dr = [7.0, 11.0, 13.0];
        let out = scale_csr(Some(&dl), &a, Some(&dr)).unwrap();
        assert_eq!(out.get(0, 1), 2.0 * 1.0 * 11.0);
        assert_eq!(out.get(2, 0), 5.0 * 4.0 * 7.0);
    }

    #[test]
    fn scale_csr_one_sided_and_unweighted() {
        let a = adj().drop_values();
        let out = scale_csr(Some(&[2.0, 2.0, 2.0]), &a, None).unwrap();
        assert_eq!(out.get(0, 2), 2.0);
        let out2 = scale_csr(None, &a, Some(&[3.0, 3.0, 3.0])).unwrap();
        assert_eq!(out2.get(1, 2), 3.0);
    }

    #[test]
    fn scale_csr_validates_lengths() {
        let a = adj();
        assert!(scale_csr(Some(&[1.0]), &a, None).is_err());
        assert!(scale_csr(None, &a, Some(&[1.0])).is_err());
    }

    #[test]
    fn edge_softmax_rows_sum_to_one() {
        let a = adj();
        let sm = edge_softmax(&a).unwrap();
        for i in 0..3 {
            let sum: f32 = sm.row_values(i).unwrap().iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {i} sums to {sum}");
        }
        // Larger logits get larger probabilities.
        assert!(sm.get(0, 2) > sm.get(0, 1));
    }

    #[test]
    fn edge_softmax_is_shift_invariant() {
        let a = adj();
        let shifted = scale_csr(None, &a, None).unwrap(); // copy
        let shifted = shifted
            .clone()
            .with_values(
                shifted
                    .values()
                    .unwrap()
                    .iter()
                    .map(|v| v + 100.0)
                    .collect(),
            )
            .unwrap();
        let s1 = edge_softmax(&a).unwrap();
        let s2 = edge_softmax(&shifted).unwrap();
        for (a, b) in s1.values().unwrap().iter().zip(s2.values().unwrap()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn edge_softmax_requires_values() {
        assert!(matches!(
            edge_softmax(&adj().drop_values()),
            Err(MatrixError::MissingValues("edge_softmax"))
        ));
    }

    #[test]
    fn binning_matches_in_degrees() {
        let a = adj();
        assert_eq!(degrees_by_binning(&a), a.in_degrees());
    }
}
