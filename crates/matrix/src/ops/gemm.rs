use super::rowkernel::{gemm_block, GEMM_ROW_BLOCK};
use crate::parallel::par_row_blocks;
use crate::{DenseMatrix, MatrixError, Result};

/// Dense matrix multiplication `A (n x k1) · B (k1 x k2) → n x k2`.
///
/// Parallelized over blocks of output rows with an `i-k-j` loop order so
/// each pass streams a row of `B` sequentially; with the `simd` feature the
/// blocks run register-tiled (see `DESIGN.md` §14) with bitwise-identical
/// results.
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] if `a.cols() != b.rows()`, and
/// [`MatrixError::AllocationTooLarge`] if the output exceeds the allocation
/// guard.
///
/// # Example
///
/// ```
/// use granii_matrix::{ops, DenseMatrix};
///
/// # fn main() -> Result<(), granii_matrix::MatrixError> {
/// let a = DenseMatrix::from_rows(&[[1.0, 2.0].as_slice()])?;
/// let b = DenseMatrix::from_rows(&[[3.0].as_slice(), [4.0].as_slice()])?;
/// assert_eq!(ops::gemm(&a, &b)?.get(0, 0), 11.0);
/// # Ok(())
/// # }
/// ```
pub fn gemm(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.cols() != b.rows() {
        return Err(MatrixError::ShapeMismatch {
            op: "gemm",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut out = DenseMatrix::zeros(a.rows(), b.cols())?;
    gemm_into(a, b, &mut out)?;
    Ok(out)
}

/// [`gemm`] writing into a caller-provided `a.rows() × b.cols()` buffer.
///
/// The buffer's previous contents are overwritten (rows are zeroed before
/// accumulation), so recycled workspace buffers are safe. The accumulation
/// order is identical to [`gemm`]'s, making results bitwise equal.
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] if `a.cols() != b.rows()` or `out`
/// has the wrong shape.
pub fn gemm_into(a: &DenseMatrix, b: &DenseMatrix, out: &mut DenseMatrix) -> Result<()> {
    if a.cols() != b.rows() {
        return Err(MatrixError::ShapeMismatch {
            op: "gemm",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if out.shape() != (a.rows(), b.cols()) {
        return Err(MatrixError::ShapeMismatch {
            op: "gemm_into",
            lhs: (a.rows(), b.cols()),
            rhs: out.shape(),
        });
    }
    let k2 = b.cols();
    let rows = a.rows();
    // Register-tiled blocks of GEMM_ROW_BLOCK consecutive output rows: each
    // loaded B vector is reused across the whole row block. Accumulation
    // order per element is unchanged (k ascending, zero-aik skipped), so
    // results stay bitwise equal to the scalar row loop.
    par_row_blocks(out.as_mut_slice(), rows, k2, GEMM_ROW_BLOCK, |r0, blk| {
        gemm_block(a, r0, b, blk);
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        DenseMatrix::from_fn(a.rows(), b.cols(), |i, j| {
            (0..a.cols()).map(|k| a.get(i, k) * b.get(k, j)).sum()
        })
    }

    #[test]
    fn matches_naive_reference() {
        let a = DenseMatrix::random(17, 9, 1.0, 3);
        let b = DenseMatrix::random(9, 13, 1.0, 4);
        let fast = gemm(&a, &b).unwrap();
        let slow = naive(&a, &b);
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-4);
    }

    #[test]
    fn wide_output_matches_naive_reference() {
        // k2 = 41 exercises the full tile cascade: 2-vector strips, a
        // 1-vector strip, and a scalar tail; zeros in A exercise the skip.
        let a = DenseMatrix::random(11, 9, 1.0, 13).map(|v| if v.abs() < 0.2 { 0.0 } else { v });
        let b = DenseMatrix::random(9, 41, 1.0, 14);
        let fast = gemm(&a, &b).unwrap();
        let slow = naive(&a, &b);
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-4);
    }

    #[test]
    fn rejects_mismatched_inner_dim() {
        let a = DenseMatrix::zeros(2, 3).unwrap();
        let b = DenseMatrix::zeros(4, 2).unwrap();
        assert!(matches!(
            gemm(&a, &b),
            Err(MatrixError::ShapeMismatch { op: "gemm", .. })
        ));
    }

    #[test]
    fn identity_multiplication() {
        let a = DenseMatrix::random(5, 5, 1.0, 7);
        let eye = DenseMatrix::from_fn(5, 5, |i, j| if i == j { 1.0 } else { 0.0 });
        assert!(gemm(&a, &eye).unwrap().max_abs_diff(&a).unwrap() < 1e-6);
        assert!(gemm(&eye, &a).unwrap().max_abs_diff(&a).unwrap() < 1e-6);
    }

    #[test]
    fn empty_dimensions_are_ok() {
        let a = DenseMatrix::zeros(0, 3).unwrap();
        let b = DenseMatrix::zeros(3, 2).unwrap();
        assert_eq!(gemm(&a, &b).unwrap().shape(), (0, 2));
        let c = DenseMatrix::zeros(2, 0).unwrap();
        let d = DenseMatrix::zeros(0, 4).unwrap();
        assert_eq!(gemm(&c, &d).unwrap().shape(), (2, 4));
        // Zero inner dimension produces all zeros.
        assert!(gemm(&c, &d).unwrap().as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn associativity_of_chain() {
        // (A·B)·C == A·(B·C) — the algebraic fact GRANII's re-association
        // relies on.
        let a = DenseMatrix::random(6, 4, 1.0, 10);
        let b = DenseMatrix::random(4, 7, 1.0, 11);
        let c = DenseMatrix::random(7, 3, 1.0, 12);
        let left = gemm(&gemm(&a, &b).unwrap(), &c).unwrap();
        let right = gemm(&a, &gemm(&b, &c).unwrap()).unwrap();
        assert!(left.max_abs_diff(&right).unwrap() < 1e-4);
    }
}
