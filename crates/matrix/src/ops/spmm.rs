use super::rowkernel::spmm_row;
use crate::parallel::par_rows_weighted;
use crate::{CsrMatrix, DenseMatrix, MatrixError, Result, Semiring};

/// Generalized sparse-dense matrix multiplication (g-SpMM, paper §II-B).
///
/// Computes, for every row `i` of the sparse matrix `adj` and every feature
/// column `c`:
///
/// ```text
/// out[i, c] = ⊕_{(i,j) ∈ adj} ( adj[i, j] ⊗ feats[j, c] )
/// ```
///
/// where `⊕`/`⊗` come from `semiring`. With [`Semiring::plus_mul`] this is the
/// standard weighted SpMM; with [`Semiring::plus_copy_rhs`] it is the cheaper
/// unweighted aggregation that never loads edge values. Unweighted matrices
/// (no value array) use an implicit edge value of `1.0` when `⊗` reads it.
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] if `adj.cols() != feats.rows()`, and
/// [`MatrixError::AllocationTooLarge`] if the output exceeds the guard.
///
/// # Example
///
/// ```
/// use granii_matrix::{ops, CooMatrix, DenseMatrix, Semiring};
///
/// # fn main() -> Result<(), granii_matrix::MatrixError> {
/// let adj = CooMatrix::from_entries(2, 2, &[(0, 1, 2.0)])?.to_csr();
/// let x = DenseMatrix::from_rows(&[[1.0].as_slice(), [3.0].as_slice()])?;
/// let y = ops::spmm(&adj, &x, Semiring::plus_mul())?;
/// assert_eq!(y.get(0, 0), 6.0); // 2.0 * 3.0
/// # Ok(())
/// # }
/// ```
pub fn spmm(adj: &CsrMatrix, feats: &DenseMatrix, semiring: Semiring) -> Result<DenseMatrix> {
    if adj.cols() != feats.rows() {
        return Err(MatrixError::ShapeMismatch {
            op: "spmm",
            lhs: adj.shape(),
            rhs: feats.shape(),
        });
    }
    let mut out = DenseMatrix::zeros(adj.rows(), feats.cols())?;
    spmm_into(adj, feats, semiring, &mut out)?;
    Ok(out)
}

/// [`spmm`] writing into a caller-provided `adj.rows() × feats.cols()` buffer.
///
/// Every output element is written (empty rows get the reduce identity), so
/// recycled workspace buffers are safe; results are bitwise equal to
/// [`spmm`]'s.
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] if `adj.cols() != feats.rows()` or
/// `out` has the wrong shape.
pub fn spmm_into(
    adj: &CsrMatrix,
    feats: &DenseMatrix,
    semiring: Semiring,
    out: &mut DenseMatrix,
) -> Result<()> {
    if adj.cols() != feats.rows() {
        return Err(MatrixError::ShapeMismatch {
            op: "spmm",
            lhs: adj.shape(),
            rhs: feats.shape(),
        });
    }
    if out.shape() != (adj.rows(), feats.cols()) {
        return Err(MatrixError::ShapeMismatch {
            op: "spmm_into",
            lhs: (adj.rows(), feats.cols()),
            rhs: out.shape(),
        });
    }
    let k = feats.cols();
    // nnz-weighted scheduling: chunk boundaries follow the row-length
    // distribution, so a hub row costs one chunk instead of skewing a
    // 64-row chunk. The per-row kernel picks its band (short-row vs hub-row
    // strategy) from the same distribution; see `ops::rowkernel`.
    par_rows_weighted(
        out.as_mut_slice(),
        adj.rows(),
        k,
        adj.indptr(),
        |i, out_row| {
            spmm_row(
                out_row,
                adj.row_indices(i),
                adj.row_values(i),
                feats,
                semiring,
            );
        },
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ops::gemm, CooMatrix, MulOp, ReduceOp};

    fn sample_adj() -> CsrMatrix {
        CooMatrix::from_entries(3, 3, &[(0, 1, 2.0), (0, 2, 3.0), (1, 0, 1.0), (2, 2, 4.0)])
            .unwrap()
            .to_csr()
    }

    #[test]
    fn weighted_spmm_matches_dense_gemm() {
        let adj = sample_adj();
        let x = DenseMatrix::random(3, 4, 1.0, 5);
        let sparse = spmm(&adj, &x, Semiring::plus_mul()).unwrap();
        let dense = gemm(&adj.to_dense().unwrap(), &x).unwrap();
        assert!(sparse.max_abs_diff(&dense).unwrap() < 1e-5);
    }

    #[test]
    fn unweighted_spmm_ignores_values() {
        let adj = sample_adj();
        let x = DenseMatrix::random(3, 2, 1.0, 6);
        let copy = spmm(&adj, &x, Semiring::plus_copy_rhs()).unwrap();
        let ones = spmm(&adj.clone().drop_values(), &x, Semiring::plus_mul()).unwrap();
        assert!(copy.max_abs_diff(&ones).unwrap() < 1e-6);
    }

    #[test]
    fn max_reduce_takes_row_max() {
        let adj = sample_adj().drop_values();
        let x = DenseMatrix::from_rows(&[[5.0].as_slice(), [-1.0].as_slice(), [2.0].as_slice()])
            .unwrap();
        let y = spmm(&adj, &x, Semiring::max_copy_rhs()).unwrap();
        assert_eq!(y.get(0, 0), 2.0); // max of rows 1, 2
        assert_eq!(y.get(1, 0), 5.0);
    }

    #[test]
    fn mean_reduce_divides_by_degree() {
        let adj = sample_adj().drop_values();
        let x = DenseMatrix::from_rows(&[[4.0].as_slice(), [2.0].as_slice(), [6.0].as_slice()])
            .unwrap();
        let y = spmm(&adj, &x, Semiring::mean_copy_rhs()).unwrap();
        assert_eq!(y.get(0, 0), 4.0); // (2 + 6) / 2
    }

    #[test]
    fn empty_rows_yield_zero() {
        let adj = CooMatrix::from_entries(2, 2, &[(0, 1, 1.0)])
            .unwrap()
            .to_csr();
        let x = DenseMatrix::from_rows(&[[7.0].as_slice(), [9.0].as_slice()]).unwrap();
        for s in [
            Semiring::plus_mul(),
            Semiring::max_copy_rhs(),
            Semiring::mean_copy_rhs(),
        ] {
            let y = spmm(&adj, &x, s).unwrap();
            assert_eq!(y.get(1, 0), 0.0, "empty row must be 0 for {s:?}");
        }
    }

    /// Pins the Mean denominator semantics: `finish` divides by the
    /// *stored-edge count*, explicit zero-weight edges included. This is the
    /// GNN convention (degree = number of stored neighbors, whatever their
    /// weight), not "count of edges that contributed a nonzero message".
    #[test]
    fn mean_counts_explicit_zero_weight_edges() {
        let adj = CooMatrix::from_entries(1, 2, &[(0, 0, 0.0), (0, 1, 2.0)])
            .unwrap()
            .to_csr();
        let x = DenseMatrix::from_rows(&[[3.0].as_slice(), [5.0].as_slice()]).unwrap();
        let y = spmm(
            &adj,
            &x,
            Semiring {
                reduce: ReduceOp::Mean,
                mul: MulOp::Mul,
            },
        )
        .unwrap();
        // (0.0*3.0 + 2.0*5.0) / 2 stored edges — NOT / 1 contributing edge.
        assert_eq!(y.get(0, 0), 5.0);
    }

    /// Pins the Max/Min empty-row semantics: the `-inf`/`+inf` fold identity
    /// must never leak into the output — empty rows finish to 0.0 (DGL's
    /// masked-max convention, documented on [`ReduceOp::Max`]) — while
    /// non-empty rows keep their true extremum even when it is negative
    /// (i.e. the finish clamp applies only to degree-0 rows).
    #[test]
    fn max_min_identity_never_leaks_and_negatives_survive() {
        // Row 0 has one neighbor with a negative feature; row 1 is empty.
        let adj = CooMatrix::from_entries(2, 2, &[(0, 1, 1.0)])
            .unwrap()
            .to_csr()
            .drop_values();
        let x = DenseMatrix::from_rows(&[[9.0].as_slice(), [-4.5].as_slice()]).unwrap();
        for reduce in [ReduceOp::Max, ReduceOp::Min] {
            let y = spmm(
                &adj,
                &x,
                Semiring {
                    reduce,
                    mul: MulOp::CopyRhs,
                },
            )
            .unwrap();
            assert_eq!(y.get(0, 0), -4.5, "{reduce:?}: true extremum kept");
            assert_eq!(y.get(1, 0), 0.0, "{reduce:?}: empty row is 0, not inf");
            assert!(y.get(1, 0).is_finite());
        }
    }

    /// Pins the Mean empty-row semantics: 0.0, not `0/0 = NaN`.
    #[test]
    fn mean_empty_row_is_zero_not_nan() {
        let adj = CooMatrix::from_entries(2, 2, &[(0, 1, 1.0)])
            .unwrap()
            .to_csr();
        let x = DenseMatrix::from_rows(&[[1.0].as_slice(), [2.0].as_slice()]).unwrap();
        let y = spmm(&adj, &x, Semiring::mean_copy_rhs()).unwrap();
        assert_eq!(y.get(1, 0), 0.0);
    }

    #[test]
    fn min_reduce_and_empty_rows() {
        let adj = CooMatrix::from_entries(2, 3, &[(0, 0, 1.0), (0, 2, 1.0)])
            .unwrap()
            .to_csr()
            .drop_values();
        let x = DenseMatrix::from_rows(&[[5.0].as_slice(), [1.0].as_slice(), [3.0].as_slice()])
            .unwrap();
        let y = spmm(
            &adj,
            &x,
            Semiring {
                reduce: ReduceOp::Min,
                mul: MulOp::CopyRhs,
            },
        )
        .unwrap();
        assert_eq!(y.get(0, 0), 3.0); // min of neighbors 0, 2
        assert_eq!(y.get(1, 0), 0.0); // empty row
    }

    /// A structurally skewed graph (hub + short + empty rows) exercising
    /// both kernel bands and the weighted scheduler must agree with the
    /// dense reference.
    #[test]
    fn skewed_degree_distribution_matches_dense() {
        let n = 64;
        let mut entries = Vec::new();
        for j in 0..n {
            entries.push((0usize, j, 1.0 + j as f32 / n as f32)); // hub row
        }
        for i in (2..n).step_by(3) {
            entries.push((i, (i * 7) % n, 0.5)); // sparse short rows
        }
        let adj = CooMatrix::from_entries(n, n, &entries).unwrap().to_csr();
        let x = DenseMatrix::random(n, 40, 1.0, 77);
        let sparse = spmm(&adj, &x, Semiring::plus_mul()).unwrap();
        let dense = gemm(&adj.to_dense().unwrap(), &x).unwrap();
        assert!(sparse.max_abs_diff(&dense).unwrap() < 1e-4);
    }

    #[test]
    fn copy_edge_broadcasts_edge_value() {
        let adj = sample_adj();
        let x = DenseMatrix::zeros(3, 2).unwrap();
        let y = spmm(
            &adj,
            &x,
            Semiring {
                reduce: ReduceOp::Sum,
                mul: MulOp::CopyEdge,
            },
        )
        .unwrap();
        assert_eq!(y.get(0, 0), 5.0); // 2.0 + 3.0
        assert_eq!(y.get(0, 1), 5.0);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let adj = sample_adj();
        let x = DenseMatrix::zeros(4, 2).unwrap();
        assert!(matches!(
            spmm(&adj, &x, Semiring::plus_mul()),
            Err(MatrixError::ShapeMismatch { op: "spmm", .. })
        ));
    }
}
