use crate::parallel::par_rows;
use crate::{CsrMatrix, DenseMatrix, MatrixError, ReduceOp, Result, Semiring};

/// Generalized sparse-dense matrix multiplication (g-SpMM, paper §II-B).
///
/// Computes, for every row `i` of the sparse matrix `adj` and every feature
/// column `c`:
///
/// ```text
/// out[i, c] = ⊕_{(i,j) ∈ adj} ( adj[i, j] ⊗ feats[j, c] )
/// ```
///
/// where `⊕`/`⊗` come from `semiring`. With [`Semiring::plus_mul`] this is the
/// standard weighted SpMM; with [`Semiring::plus_copy_rhs`] it is the cheaper
/// unweighted aggregation that never loads edge values. Unweighted matrices
/// (no value array) use an implicit edge value of `1.0` when `⊗` reads it.
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] if `adj.cols() != feats.rows()`, and
/// [`MatrixError::AllocationTooLarge`] if the output exceeds the guard.
///
/// # Example
///
/// ```
/// use granii_matrix::{ops, CooMatrix, DenseMatrix, Semiring};
///
/// # fn main() -> Result<(), granii_matrix::MatrixError> {
/// let adj = CooMatrix::from_entries(2, 2, &[(0, 1, 2.0)])?.to_csr();
/// let x = DenseMatrix::from_rows(&[[1.0].as_slice(), [3.0].as_slice()])?;
/// let y = ops::spmm(&adj, &x, Semiring::plus_mul())?;
/// assert_eq!(y.get(0, 0), 6.0); // 2.0 * 3.0
/// # Ok(())
/// # }
/// ```
pub fn spmm(adj: &CsrMatrix, feats: &DenseMatrix, semiring: Semiring) -> Result<DenseMatrix> {
    if adj.cols() != feats.rows() {
        return Err(MatrixError::ShapeMismatch {
            op: "spmm",
            lhs: adj.shape(),
            rhs: feats.shape(),
        });
    }
    let mut out = DenseMatrix::zeros(adj.rows(), feats.cols())?;
    spmm_into(adj, feats, semiring, &mut out)?;
    Ok(out)
}

/// [`spmm`] writing into a caller-provided `adj.rows() × feats.cols()` buffer.
///
/// Every output element is written (empty rows get the reduce identity), so
/// recycled workspace buffers are safe; results are bitwise equal to
/// [`spmm`]'s.
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] if `adj.cols() != feats.rows()` or
/// `out` has the wrong shape.
pub fn spmm_into(
    adj: &CsrMatrix,
    feats: &DenseMatrix,
    semiring: Semiring,
    out: &mut DenseMatrix,
) -> Result<()> {
    if adj.cols() != feats.rows() {
        return Err(MatrixError::ShapeMismatch {
            op: "spmm",
            lhs: adj.shape(),
            rhs: feats.shape(),
        });
    }
    if out.shape() != (adj.rows(), feats.cols()) {
        return Err(MatrixError::ShapeMismatch {
            op: "spmm_into",
            lhs: (adj.rows(), feats.cols()),
            rhs: out.shape(),
        });
    }
    let k = feats.cols();
    let reduce = semiring.reduce;
    let mul = semiring.mul;
    par_rows(out.as_mut_slice(), adj.rows(), k, |i, out_row| {
        let cols = adj.row_indices(i);
        let vals = adj.row_values(i);
        let count = cols.len();
        if count == 0 {
            // Identity-finished empty rows (0 for every reduce op).
            for v in out_row.iter_mut() {
                *v = reduce.finish(reduce.identity(), 0);
            }
            return;
        }
        let ident = reduce.identity();
        for v in out_row.iter_mut() {
            *v = ident;
        }
        for (e, &j) in cols.iter().enumerate() {
            let edge = vals.map_or(1.0, |v| v[e]);
            let frow = feats.row(j as usize);
            for (c, v) in out_row.iter_mut().enumerate() {
                *v = reduce.fold(*v, mul.apply(edge, frow[c]));
            }
        }
        if matches!(reduce, ReduceOp::Mean) {
            for v in out_row.iter_mut() {
                *v = reduce.finish(*v, count);
            }
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ops::gemm, CooMatrix, MulOp};

    fn sample_adj() -> CsrMatrix {
        CooMatrix::from_entries(3, 3, &[(0, 1, 2.0), (0, 2, 3.0), (1, 0, 1.0), (2, 2, 4.0)])
            .unwrap()
            .to_csr()
    }

    #[test]
    fn weighted_spmm_matches_dense_gemm() {
        let adj = sample_adj();
        let x = DenseMatrix::random(3, 4, 1.0, 5);
        let sparse = spmm(&adj, &x, Semiring::plus_mul()).unwrap();
        let dense = gemm(&adj.to_dense().unwrap(), &x).unwrap();
        assert!(sparse.max_abs_diff(&dense).unwrap() < 1e-5);
    }

    #[test]
    fn unweighted_spmm_ignores_values() {
        let adj = sample_adj();
        let x = DenseMatrix::random(3, 2, 1.0, 6);
        let copy = spmm(&adj, &x, Semiring::plus_copy_rhs()).unwrap();
        let ones = spmm(&adj.clone().drop_values(), &x, Semiring::plus_mul()).unwrap();
        assert!(copy.max_abs_diff(&ones).unwrap() < 1e-6);
    }

    #[test]
    fn max_reduce_takes_row_max() {
        let adj = sample_adj().drop_values();
        let x = DenseMatrix::from_rows(&[[5.0].as_slice(), [-1.0].as_slice(), [2.0].as_slice()])
            .unwrap();
        let y = spmm(&adj, &x, Semiring::max_copy_rhs()).unwrap();
        assert_eq!(y.get(0, 0), 2.0); // max of rows 1, 2
        assert_eq!(y.get(1, 0), 5.0);
    }

    #[test]
    fn mean_reduce_divides_by_degree() {
        let adj = sample_adj().drop_values();
        let x = DenseMatrix::from_rows(&[[4.0].as_slice(), [2.0].as_slice(), [6.0].as_slice()])
            .unwrap();
        let y = spmm(&adj, &x, Semiring::mean_copy_rhs()).unwrap();
        assert_eq!(y.get(0, 0), 4.0); // (2 + 6) / 2
    }

    #[test]
    fn empty_rows_yield_zero() {
        let adj = CooMatrix::from_entries(2, 2, &[(0, 1, 1.0)])
            .unwrap()
            .to_csr();
        let x = DenseMatrix::from_rows(&[[7.0].as_slice(), [9.0].as_slice()]).unwrap();
        for s in [
            Semiring::plus_mul(),
            Semiring::max_copy_rhs(),
            Semiring::mean_copy_rhs(),
        ] {
            let y = spmm(&adj, &x, s).unwrap();
            assert_eq!(y.get(1, 0), 0.0, "empty row must be 0 for {s:?}");
        }
    }

    #[test]
    fn copy_edge_broadcasts_edge_value() {
        let adj = sample_adj();
        let x = DenseMatrix::zeros(3, 2).unwrap();
        let y = spmm(
            &adj,
            &x,
            Semiring {
                reduce: ReduceOp::Sum,
                mul: MulOp::CopyEdge,
            },
        )
        .unwrap();
        assert_eq!(y.get(0, 0), 5.0); // 2.0 + 3.0
        assert_eq!(y.get(0, 1), 5.0);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let adj = sample_adj();
        let x = DenseMatrix::zeros(4, 2).unwrap();
        assert!(matches!(
            spmm(&adj, &x, Semiring::plus_mul()),
            Err(MatrixError::ShapeMismatch { op: "spmm", .. })
        ));
    }
}
