use serde::{Deserialize, Serialize};

use crate::parallel::par_rows;
use crate::{DenseMatrix, MatrixError, Result};

/// The element-wise combination used by a broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BroadcastOp {
    /// `out = d ⊙ m` (scaling; GCN's normalization uses this).
    Mul,
    /// `out = d + m` (bias addition).
    Add,
}

/// Row-broadcast (paper Eq. 1): combines `d[i]` with every element of row `i`.
///
/// This is the dense primitive GCN's dynamic normalization lowers to
/// (`D^{-1/2} ⊗ H`, §III-A). It is equivalent to `diag(d) · m` for
/// [`BroadcastOp::Mul`] — the algebraic identity GRANII's IR rewrite exploits
/// to turn broadcasts back into re-associable multiplications.
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] if `d.len() != m.rows()`.
///
/// # Example
///
/// ```
/// use granii_matrix::{ops, ops::BroadcastOp, DenseMatrix};
///
/// # fn main() -> Result<(), granii_matrix::MatrixError> {
/// let m = DenseMatrix::from_rows(&[[1.0, 2.0].as_slice(), [3.0, 4.0].as_slice()])?;
/// let out = ops::row_broadcast(&[10.0, 100.0], &m, BroadcastOp::Mul)?;
/// assert_eq!(out.get(1, 1), 400.0);
/// # Ok(())
/// # }
/// ```
pub fn row_broadcast(d: &[f32], m: &DenseMatrix, op: BroadcastOp) -> Result<DenseMatrix> {
    if d.len() != m.rows() {
        return Err(MatrixError::ShapeMismatch {
            op: "row_broadcast",
            lhs: (d.len(), 1),
            rhs: m.shape(),
        });
    }
    let mut out = DenseMatrix::zeros(m.rows(), m.cols())?;
    row_broadcast_into(d, m, op, &mut out)?;
    Ok(out)
}

/// [`row_broadcast`] writing into a caller-provided buffer of `m`'s shape.
///
/// Reads straight from `m`, so no clone happens and recycled workspace
/// buffers are safe; results are bitwise equal to [`row_broadcast`]'s.
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] if `d.len() != m.rows()` or `out`
/// has the wrong shape.
pub fn row_broadcast_into(
    d: &[f32],
    m: &DenseMatrix,
    op: BroadcastOp,
    out: &mut DenseMatrix,
) -> Result<()> {
    if d.len() != m.rows() {
        return Err(MatrixError::ShapeMismatch {
            op: "row_broadcast",
            lhs: (d.len(), 1),
            rhs: m.shape(),
        });
    }
    if out.shape() != m.shape() {
        return Err(MatrixError::ShapeMismatch {
            op: "row_broadcast_into",
            lhs: m.shape(),
            rhs: out.shape(),
        });
    }
    // Hoisted op dispatch: each arm monomorphizes a branch-free inner loop
    // that LLVM autovectorizes (same technique as `ops::rowkernel`).
    match op {
        BroadcastOp::Mul => row_broadcast_run(d, m, out, |di, mv| di * mv),
        BroadcastOp::Add => row_broadcast_run(d, m, out, |di, mv| di + mv),
    }
    Ok(())
}

#[inline(always)]
fn row_broadcast_run<F: Fn(f32, f32) -> f32 + Sync>(
    d: &[f32],
    m: &DenseMatrix,
    out: &mut DenseMatrix,
    f: F,
) {
    let k = m.cols();
    par_rows(out.as_mut_slice(), m.rows(), k, |i, row| {
        let di = d[i];
        for (v, &mv) in row.iter_mut().zip(m.row(i)) {
            *v = f(di, mv);
        }
    });
}

/// Column-broadcast: combines `d[j]` with every element of column `j`
/// (equivalent to `m · diag(d)` for [`BroadcastOp::Mul`]).
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] if `d.len() != m.cols()`.
pub fn col_broadcast(m: &DenseMatrix, d: &[f32], op: BroadcastOp) -> Result<DenseMatrix> {
    if d.len() != m.cols() {
        return Err(MatrixError::ShapeMismatch {
            op: "col_broadcast",
            lhs: m.shape(),
            rhs: (d.len(), 1),
        });
    }
    let mut out = DenseMatrix::zeros(m.rows(), m.cols())?;
    col_broadcast_into(m, d, op, &mut out)?;
    Ok(out)
}

/// [`col_broadcast`] writing into a caller-provided buffer of `m`'s shape.
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] if `d.len() != m.cols()` or `out`
/// has the wrong shape.
pub fn col_broadcast_into(
    m: &DenseMatrix,
    d: &[f32],
    op: BroadcastOp,
    out: &mut DenseMatrix,
) -> Result<()> {
    if d.len() != m.cols() {
        return Err(MatrixError::ShapeMismatch {
            op: "col_broadcast",
            lhs: m.shape(),
            rhs: (d.len(), 1),
        });
    }
    if out.shape() != m.shape() {
        return Err(MatrixError::ShapeMismatch {
            op: "col_broadcast_into",
            lhs: m.shape(),
            rhs: out.shape(),
        });
    }
    match op {
        BroadcastOp::Mul => col_broadcast_run(m, d, out, |dj, mv| dj * mv),
        BroadcastOp::Add => col_broadcast_run(m, d, out, |dj, mv| dj + mv),
    }
    Ok(())
}

#[inline(always)]
fn col_broadcast_run<F: Fn(f32, f32) -> f32 + Sync>(
    m: &DenseMatrix,
    d: &[f32],
    out: &mut DenseMatrix,
    f: F,
) {
    let k = m.cols();
    par_rows(out.as_mut_slice(), m.rows(), k, |i, row| {
        for ((v, &mv), &dj) in row.iter_mut().zip(m.row(i)).zip(d) {
            *v = f(dj, mv);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::gemm;
    use crate::DiagMatrix;

    #[test]
    fn row_broadcast_equals_diag_gemm() {
        let m = DenseMatrix::random(5, 3, 1.0, 20);
        let d = vec![0.5, 1.0, 2.0, -1.0, 0.0];
        let fast = row_broadcast(&d, &m, BroadcastOp::Mul).unwrap();
        let diag = DiagMatrix::from_vec(d).to_csr().to_dense().unwrap();
        let slow = gemm(&diag, &m).unwrap();
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-6);
    }

    #[test]
    fn col_broadcast_equals_gemm_diag() {
        let m = DenseMatrix::random(4, 3, 1.0, 21);
        let d = vec![2.0, 0.0, -3.0];
        let fast = col_broadcast(&m, &d, BroadcastOp::Mul).unwrap();
        let diag = DiagMatrix::from_vec(d).to_csr().to_dense().unwrap();
        let slow = gemm(&m, &diag).unwrap();
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-6);
    }

    #[test]
    fn add_broadcast_adds() {
        let m = DenseMatrix::zeros(2, 2).unwrap();
        let out = row_broadcast(&[1.0, 2.0], &m, BroadcastOp::Add).unwrap();
        assert_eq!(out.row(0), &[1.0, 1.0]);
        assert_eq!(out.row(1), &[2.0, 2.0]);
    }

    #[test]
    fn length_mismatch_rejected() {
        let m = DenseMatrix::zeros(2, 2).unwrap();
        assert!(row_broadcast(&[1.0], &m, BroadcastOp::Mul).is_err());
        assert!(col_broadcast(&m, &[1.0, 2.0, 3.0], BroadcastOp::Mul).is_err());
    }
}
