//! Analytical device performance models and the execution engine.
//!
//! The paper evaluates on an Intel Xeon CPU, an NVIDIA A100, and an NVIDIA
//! H100. This reproduction has no GPU, so each device is modeled analytically:
//! a kernel's [`WorkStats`] is converted into a latency using a small roofline
//! model with per-device parameters (peak compute, memory bandwidth, sparse
//! efficiency, atomic throughput and contention sensitivity, launch overhead).
//!
//! The parameters are chosen so the qualitative relationships the paper's
//! analysis depends on hold (see `DESIGN.md` §2):
//!
//! 1. dense compute becomes relatively cheaper from CPU → A100 → H100
//!    (§VI-C1 "Difference Across Hardware"),
//! 2. the A100 pays a much higher price for contended atomics than the H100,
//!    which is what makes WiseGraph's binning-based normalization pathological
//!    on dense graphs there (Table III's 10.39× GCN speedup on A100),
//! 3. sparse kernels are bandwidth-bound and degrade with degree skew.
//!
//! The [`Engine`] pairs a device model with a timing policy: `Measured` times
//! real kernel executions on the host CPU, `Modeled` runs the kernel for
//! correctness but charges the modeled latency. Both record a [`Profile`] used
//! by the evaluation harness (e.g. Figure 2's sparse/dense breakdown).

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::{PrimitiveKind, WorkStats};

/// The hardware platforms of the paper's evaluation (§V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Intel Xeon Gold 6348 class CPU.
    Cpu,
    /// NVIDIA A100 (with Intel Xeon Platinum 8358 host).
    A100,
    /// NVIDIA H100 (with AMD EPYC 9454 host).
    H100,
}

impl DeviceKind {
    /// All devices, in the paper's presentation order.
    pub const ALL: [DeviceKind; 3] = [DeviceKind::H100, DeviceKind::A100, DeviceKind::Cpu];

    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::Cpu => "cpu",
            DeviceKind::A100 => "a100",
            DeviceKind::H100 => "h100",
        }
    }
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters of the analytical latency model for one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Which platform this models.
    pub kind: DeviceKind,
    /// Peak dense fp32 throughput, in GFLOP/s.
    pub dense_gflops: f64,
    /// Peak memory bandwidth, in GB/s.
    pub mem_bw_gbps: f64,
    /// Fraction of peak bandwidth achieved by irregular (sparse) access.
    pub sparse_bw_efficiency: f64,
    /// Fraction of peak compute achieved by sparse kernels.
    pub sparse_compute_efficiency: f64,
    /// Uncontended atomic throughput, in Gops/s.
    pub atomic_gops: f64,
    /// Exponent applied to the contention factor (`contention^exp` multiplies
    /// atomic cost). Higher = the device serializes contended atomics harder.
    pub contention_exponent: f64,
    /// Multiplier applied per unit of irregularity (degree CV) to sparse
    /// kernels' memory time.
    pub irregularity_penalty: f64,
    /// Slowdown of edge-value-reading SpMM relative to the specialized
    /// unweighted copy-sum kernel (indirect value streams break coalescing;
    /// the reason GCN's dynamic normalization wins on dense graphs, §III-A).
    pub weighted_spmm_penalty: f64,
    /// Fixed overhead per kernel launch, in microseconds.
    pub launch_overhead_us: f64,
}

impl DeviceSpec {
    /// CPU preset (Intel Xeon Gold 6348 class).
    pub fn cpu() -> Self {
        Self {
            kind: DeviceKind::Cpu,
            dense_gflops: 1_200.0,
            mem_bw_gbps: 180.0,
            sparse_bw_efficiency: 0.45,
            sparse_compute_efficiency: 0.35,
            atomic_gops: 0.8,
            contention_exponent: 0.25,
            irregularity_penalty: 0.35,
            weighted_spmm_penalty: 1.25,
            launch_overhead_us: 1.0,
        }
    }

    /// A100 preset. Note the low atomic throughput and high contention
    /// exponent relative to the H100 — the property behind the paper's large
    /// A100 speedups for binning-heavy baselines (Table III).
    pub fn a100() -> Self {
        Self {
            kind: DeviceKind::A100,
            dense_gflops: 19_500.0,
            mem_bw_gbps: 1_555.0,
            sparse_bw_efficiency: 0.50,
            sparse_compute_efficiency: 0.25,
            atomic_gops: 0.9,
            contention_exponent: 0.85,
            irregularity_penalty: 0.75,
            weighted_spmm_penalty: 1.18,
            launch_overhead_us: 8.0,
        }
    }

    /// H100 preset: more dense compute, more bandwidth, and markedly better
    /// contended atomics than the A100.
    pub fn h100() -> Self {
        Self {
            kind: DeviceKind::H100,
            dense_gflops: 60_000.0,
            mem_bw_gbps: 3_350.0,
            sparse_bw_efficiency: 0.55,
            sparse_compute_efficiency: 0.30,
            atomic_gops: 14.0,
            contention_exponent: 0.35,
            irregularity_penalty: 0.60,
            weighted_spmm_penalty: 1.12,
            launch_overhead_us: 6.0,
        }
    }

    /// The preset for a device kind.
    pub fn preset(kind: DeviceKind) -> Self {
        match kind {
            DeviceKind::Cpu => Self::cpu(),
            DeviceKind::A100 => Self::a100(),
            DeviceKind::H100 => Self::h100(),
        }
    }

    /// Models the latency (seconds) of one primitive invocation.
    ///
    /// Roofline: `launch + max(compute, memory) + atomics`, where sparse
    /// primitives see derated compute/bandwidth and an irregularity penalty,
    /// and atomic cost grows super-linearly with contention.
    pub fn estimate_seconds(&self, stats: &WorkStats) -> f64 {
        let sparse = stats.kind.is_sparse();
        let compute_rate = if sparse {
            self.dense_gflops * 1e9 * self.sparse_compute_efficiency
        } else {
            self.dense_gflops * 1e9
        };
        let bw = if sparse {
            let derate = 1.0 + self.irregularity_penalty * stats.irregularity;
            self.mem_bw_gbps * 1e9 * self.sparse_bw_efficiency / derate
        } else {
            self.mem_bw_gbps * 1e9
        };
        let compute_time = stats.flops as f64 / compute_rate;
        let mut memory_time = stats.bytes_total() as f64 / bw;
        if stats.kind == PrimitiveKind::SpmmWeighted {
            memory_time *= self.weighted_spmm_penalty;
        }
        let atomic_time = if stats.atomic_ops > 0 {
            let contention = stats
                .atomic_contention
                .max(1.0)
                .powf(self.contention_exponent);
            stats.atomic_ops as f64 * contention / (self.atomic_gops * 1e9)
        } else {
            0.0
        };
        self.launch_overhead_us * 1e-6 + compute_time.max(memory_time) + atomic_time
    }
}

/// How the engine produces timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Timing {
    /// Wall-clock measurement of the real host execution (valid CPU numbers).
    Measured,
    /// Analytical latency from the device model (GPU substitution).
    Modeled,
}

/// One profiled primitive invocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileEntry {
    /// Primitive kind.
    pub kind: PrimitiveKind,
    /// Charged latency in seconds.
    pub seconds: f64,
    /// The work record that produced the charge.
    pub stats: WorkStats,
}

/// Accumulated execution profile: the source for the paper's runtime
/// breakdowns (Figure 2) and overhead reporting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Entries in execution order.
    pub entries: Vec<ProfileEntry>,
}

impl Profile {
    /// Total charged seconds.
    pub fn total_seconds(&self) -> f64 {
        self.entries.iter().map(|e| e.seconds).sum()
    }

    /// Seconds spent in sparse primitives.
    pub fn sparse_seconds(&self) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.kind.is_sparse())
            .map(|e| e.seconds)
            .sum()
    }

    /// Fraction of time in sparse primitives (0 when nothing ran).
    pub fn sparse_fraction(&self) -> f64 {
        let total = self.total_seconds();
        if total > 0.0 {
            self.sparse_seconds() / total
        } else {
            0.0
        }
    }

    /// Seconds aggregated per primitive kind.
    pub fn by_kind(&self) -> Vec<(PrimitiveKind, f64)> {
        let mut acc: Vec<(PrimitiveKind, f64)> = Vec::new();
        for e in &self.entries {
            match acc.iter_mut().find(|(k, _)| *k == e.kind) {
                Some((_, s)) => *s += e.seconds,
                None => acc.push((e.kind, e.seconds)),
            }
        }
        acc
    }

    /// Appends another profile's entries (in `other`'s execution order, after
    /// this profile's existing entries). Used to aggregate per-iteration or
    /// per-engine profiles into one report.
    pub fn merge(&mut self, other: Profile) {
        self.entries.extend(other.entries);
    }
}

impl std::fmt::Display for Profile {
    /// Per-kind breakdown table: calls, invocation count, charged seconds,
    /// and fraction of the profile total (the Figure 2 view).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let total = self.total_seconds();
        writeln!(
            f,
            "{:<16} {:>7} {:>12} {:>8}",
            "primitive", "calls", "seconds", "share"
        )?;
        for (kind, seconds) in self.by_kind() {
            let calls = self.entries.iter().filter(|e| e.kind == kind).count();
            let share = if total > 0.0 {
                100.0 * seconds / total
            } else {
                0.0
            };
            writeln!(
                f,
                "{:<16} {calls:>7} {seconds:>12.6} {share:>7.1}%",
                kind.name()
            )?;
        }
        writeln!(
            f,
            "{:<16} {:>7} {total:>12.6} {:>7.1}%",
            "total",
            self.entries.len(),
            100.0
        )?;
        write!(f, "sparse fraction: {:.1}%", 100.0 * self.sparse_fraction())
    }
}

/// Executes kernels on a device, producing correct results plus a profile of
/// measured or modeled latencies.
///
/// # Example
///
/// ```
/// use granii_matrix::device::{DeviceKind, Engine};
/// use granii_matrix::WorkStats;
///
/// let engine = Engine::modeled(DeviceKind::A100);
/// let out = engine.run(WorkStats::gemm(64, 64, 64), || 2 + 2);
/// assert_eq!(out, 4);
/// assert!(engine.elapsed_seconds() > 0.0);
/// ```
#[derive(Debug)]
pub struct Engine {
    spec: DeviceSpec,
    timing: Timing,
    profile: Mutex<Profile>,
}

impl Engine {
    /// An engine that models latencies for `kind` using its preset.
    pub fn modeled(kind: DeviceKind) -> Self {
        Self::new(DeviceSpec::preset(kind), Timing::Modeled)
    }

    /// An engine that measures real wall-clock time on the host CPU.
    pub fn cpu_measured() -> Self {
        Self::new(DeviceSpec::cpu(), Timing::Measured)
    }

    /// An engine with an explicit spec and timing policy.
    pub fn new(spec: DeviceSpec, timing: Timing) -> Self {
        Self {
            spec,
            timing,
            profile: Mutex::new(Profile::default()),
        }
    }

    /// The device model in use.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The timing policy in use.
    pub fn timing(&self) -> Timing {
        self.timing
    }

    /// Runs a kernel, charging either its measured wall time or the modeled
    /// latency for `stats`, and returns the kernel's output.
    pub fn run<T>(&self, stats: WorkStats, f: impl FnOnce() -> T) -> T {
        let mut span = granii_telemetry::span!(
            stats.kind.span_name(),
            flops = stats.flops,
            bytes = stats.bytes_total(),
            irregularity = stats.irregularity,
        );
        let (out, seconds) = match self.timing {
            Timing::Measured => {
                let start = std::time::Instant::now();
                let out = f();
                (out, start.elapsed().as_secs_f64())
            }
            Timing::Modeled => {
                let out = f();
                (out, self.spec.estimate_seconds(&stats))
            }
        };
        span.attr("charged_s", seconds);
        drop(span);
        granii_telemetry::counter_add("engine.kernels", 1);
        granii_telemetry::histogram_record_seconds(stats.kind.span_name(), seconds);
        self.profile.lock().entries.push(ProfileEntry {
            kind: stats.kind,
            seconds,
            stats,
        });
        out
    }

    /// Charges work without running anything (used when the caller already has
    /// the result, e.g. replaying a profile).
    pub fn charge(&self, stats: WorkStats) {
        let seconds = match self.timing {
            Timing::Measured => self.spec.estimate_seconds(&stats),
            Timing::Modeled => self.spec.estimate_seconds(&stats),
        };
        let _span = granii_telemetry::span!(
            stats.kind.span_name(),
            flops = stats.flops,
            bytes = stats.bytes_total(),
            charged_s = seconds,
        );
        granii_telemetry::counter_add("engine.kernels", 1);
        granii_telemetry::histogram_record_seconds(stats.kind.span_name(), seconds);
        self.profile.lock().entries.push(ProfileEntry {
            kind: stats.kind,
            seconds,
            stats,
        });
    }

    /// Total seconds charged so far.
    pub fn elapsed_seconds(&self) -> f64 {
        self.profile.lock().total_seconds()
    }

    /// Takes and resets the accumulated profile.
    pub fn take_profile(&self) -> Profile {
        std::mem::take(&mut *self.profile.lock())
    }

    /// Number of kernels charged so far. Use as a mark for
    /// [`Engine::summarize_since`] to attribute charges to a region without
    /// draining the profile (which [`Engine::take_profile`] would).
    pub fn profile_len(&self) -> usize {
        self.profile.lock().entries.len()
    }

    /// Aggregates every kernel charged since `mark` (a prior
    /// [`Engine::profile_len`]) into one [`ChargeSummary`], leaving the
    /// profile intact. `predicted_seconds` is always the device-model
    /// roofline estimate, independent of the timing policy, so a measuring
    /// engine yields an achieved-vs-predicted comparison.
    pub fn summarize_since(&self, mark: usize) -> ChargeSummary {
        let profile = self.profile.lock();
        let mut summary = ChargeSummary::default();
        for entry in profile.entries.iter().skip(mark) {
            summary.kernels += 1;
            summary.charged_seconds += entry.seconds;
            summary.predicted_seconds += self.spec.estimate_seconds(&entry.stats);
            summary.flops += entry.stats.flops;
            summary.bytes += entry.stats.bytes_read + entry.stats.bytes_written;
        }
        summary
    }
}

/// Aggregate of a contiguous run of charged kernels; see
/// [`Engine::summarize_since`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChargeSummary {
    /// Number of kernels in the range.
    pub kernels: u64,
    /// Seconds the engine charged (measured or modeled per its policy).
    pub charged_seconds: f64,
    /// Device-model roofline estimate for the same work.
    pub predicted_seconds: f64,
    /// Total floating-point operations.
    pub flops: u64,
    /// Total bytes read plus written.
    pub bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_relatively_cheaper_on_newer_devices() {
        // Ratio of GEMM to SpMM modeled time must fall from CPU to A100 to
        // H100 — the paper's "dense operations gradually become more
        // optimized" observation.
        let gemm = WorkStats::gemm(10_000, 512, 512);
        let spmm = WorkStats::spmm(10_000, 2_000_000, 512, false, 1.0);
        let ratio = |kind: DeviceKind| {
            let spec = DeviceSpec::preset(kind);
            spec.estimate_seconds(&gemm) / spec.estimate_seconds(&spmm)
        };
        assert!(ratio(DeviceKind::Cpu) > ratio(DeviceKind::A100));
        assert!(ratio(DeviceKind::A100) > ratio(DeviceKind::H100));
    }

    #[test]
    fn a100_punishes_contended_atomics_harder_than_h100() {
        let contended = WorkStats::binning(10_000_000, 20_000); // dense graph
        let a100 = DeviceSpec::a100().estimate_seconds(&contended);
        let h100 = DeviceSpec::h100().estimate_seconds(&contended);
        assert!(a100 > 10.0 * h100, "a100 = {a100}, h100 = {h100}");
    }

    #[test]
    fn irregularity_slows_sparse_kernels() {
        let spec = DeviceSpec::h100();
        let regular = WorkStats::spmm(1000, 100_000, 64, true, 0.0);
        let skewed = WorkStats::spmm(1000, 100_000, 64, true, 5.0);
        assert!(spec.estimate_seconds(&skewed) > spec.estimate_seconds(&regular));
    }

    #[test]
    fn launch_overhead_floors_tiny_kernels() {
        let spec = DeviceSpec::h100();
        let tiny = WorkStats::elementwise(1, 1);
        assert!(spec.estimate_seconds(&tiny) >= spec.launch_overhead_us * 1e-6);
    }

    #[test]
    fn engine_profiles_modeled_runs() {
        let e = Engine::modeled(DeviceKind::H100);
        let v = e.run(WorkStats::gemm(8, 8, 8), || 42);
        assert_eq!(v, 42);
        e.run(WorkStats::spmm(8, 16, 8, false, 0.0), || ());
        let p = e.take_profile();
        assert_eq!(p.entries.len(), 2);
        assert!(p.sparse_fraction() > 0.0 && p.sparse_fraction() < 1.0);
        // Profile is reset after take.
        assert_eq!(e.elapsed_seconds(), 0.0);
    }

    #[test]
    fn engine_measures_real_time() {
        let e = Engine::cpu_measured();
        e.run(WorkStats::elementwise(1, 1), || {
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        assert!(e.elapsed_seconds() >= 0.002);
    }

    #[test]
    fn summarize_since_attributes_marked_region() {
        let e = Engine::modeled(DeviceKind::Cpu);
        e.charge(WorkStats::gemm(8, 8, 8));
        let mark = e.profile_len();
        e.charge(WorkStats::spmm(8, 16, 8, false, 0.0));
        e.charge(WorkStats::row_broadcast(8, 8));
        let s = e.summarize_since(mark);
        assert_eq!(s.kernels, 2);
        assert!(s.charged_seconds > 0.0);
        // A modeled engine charges exactly the roofline estimate.
        assert!((s.charged_seconds - s.predicted_seconds).abs() < 1e-15);
        assert!(s.flops > 0 && s.bytes > 0);
        // The profile is left intact, unlike take_profile().
        assert_eq!(e.profile_len(), 3);
    }

    #[test]
    fn by_kind_aggregates() {
        let e = Engine::modeled(DeviceKind::Cpu);
        e.charge(WorkStats::gemm(8, 8, 8));
        e.charge(WorkStats::gemm(8, 8, 8));
        e.charge(WorkStats::row_broadcast(8, 8));
        let by = e.take_profile().by_kind();
        assert_eq!(by.len(), 2);
        assert_eq!(by[0].0, PrimitiveKind::Gemm);
    }
}
