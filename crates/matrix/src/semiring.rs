use serde::{Deserialize, Serialize};

/// Generalized multiplication operator `⊗` combining an edge value with a
/// source-node feature inside g-SpMM / g-SDDMM (paper §II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MulOp {
    /// `edge * feature` — the standard weighted aggregation (`u_mul_e` in DGL).
    Mul,
    /// Ignore the edge value, forward the feature (`copy_u` in DGL).
    ///
    /// This is the "computationally less expensive aggregation operation that
    /// does not use the edge values" the paper exploits for unweighted graphs.
    CopyRhs,
    /// Ignore the feature, forward the edge value (`copy_e` in DGL).
    CopyEdge,
    /// `edge + feature` (`u_add_e` in DGL).
    Add,
}

impl MulOp {
    /// Applies the operator to an edge value and a feature value.
    #[inline]
    pub fn apply(self, edge: f32, feat: f32) -> f32 {
        match self {
            MulOp::Mul => edge * feat,
            MulOp::CopyRhs => feat,
            MulOp::CopyEdge => edge,
            MulOp::Add => edge + feat,
        }
    }

    /// Whether the operator reads the edge value at all. Kernels skip loading
    /// the value array when it does not.
    pub fn reads_edge(self) -> bool {
        !matches!(self, MulOp::CopyRhs)
    }
}

/// Generalized reduction operator `⊕` accumulating messages at a destination
/// node (paper §II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReduceOp {
    /// Sum of incoming messages.
    Sum,
    /// Maximum of incoming messages (identity `-inf`; rows with no neighbors
    /// produce 0, matching DGL's masked-max convention).
    Max,
    /// Minimum of incoming messages (same empty-row convention as `Max`).
    Min,
    /// Arithmetic mean of incoming messages (GraphSAGE's mean aggregator).
    Mean,
}

impl ReduceOp {
    /// Identity element for the reduction.
    #[inline]
    pub fn identity(self) -> f32 {
        match self {
            ReduceOp::Sum | ReduceOp::Mean => 0.0,
            ReduceOp::Max => f32::NEG_INFINITY,
            ReduceOp::Min => f32::INFINITY,
        }
    }

    /// Folds one message into the accumulator.
    #[inline]
    pub fn fold(self, acc: f32, v: f32) -> f32 {
        match self {
            ReduceOp::Sum | ReduceOp::Mean => acc + v,
            ReduceOp::Max => acc.max(v),
            ReduceOp::Min => acc.min(v),
        }
    }

    /// Finalizes an accumulator given the number of folded messages.
    #[inline]
    pub fn finish(self, acc: f32, count: usize) -> f32 {
        match self {
            ReduceOp::Sum => acc,
            ReduceOp::Mean => {
                if count > 0 {
                    acc / count as f32
                } else {
                    0.0
                }
            }
            ReduceOp::Max | ReduceOp::Min => {
                if count > 0 {
                    acc
                } else {
                    0.0
                }
            }
        }
    }
}

/// A `(⊕, ⊗)` pair parameterizing the generalized sparse primitives.
///
/// The paper (§II-B, citing GraphBLAS) writes g-SpMM as `SpMM(⊕, ⊗)`; this
/// struct is that pair.
///
/// # Example
///
/// ```
/// use granii_matrix::{MulOp, ReduceOp, Semiring};
///
/// let weighted = Semiring::plus_mul();
/// assert_eq!(weighted.mul, MulOp::Mul);
/// assert_eq!(weighted.reduce, ReduceOp::Sum);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Semiring {
    /// The reduction (`⊕`).
    pub reduce: ReduceOp,
    /// The edge-feature combination (`⊗`).
    pub mul: MulOp,
}

impl Semiring {
    /// Standard weighted aggregation: `(+, ×)`.
    pub fn plus_mul() -> Self {
        Self {
            reduce: ReduceOp::Sum,
            mul: MulOp::Mul,
        }
    }

    /// Unweighted aggregation: `(+, copy_u)`; never touches edge values.
    pub fn plus_copy_rhs() -> Self {
        Self {
            reduce: ReduceOp::Sum,
            mul: MulOp::CopyRhs,
        }
    }

    /// Max pooling over neighbors: `(max, copy_u)`.
    pub fn max_copy_rhs() -> Self {
        Self {
            reduce: ReduceOp::Max,
            mul: MulOp::CopyRhs,
        }
    }

    /// Mean aggregation over neighbors: `(mean, copy_u)` (GraphSAGE).
    pub fn mean_copy_rhs() -> Self {
        Self {
            reduce: ReduceOp::Mean,
            mul: MulOp::CopyRhs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_op_semantics() {
        assert_eq!(MulOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(MulOp::CopyRhs.apply(2.0, 3.0), 3.0);
        assert_eq!(MulOp::CopyEdge.apply(2.0, 3.0), 2.0);
        assert_eq!(MulOp::Add.apply(2.0, 3.0), 5.0);
    }

    #[test]
    fn copy_rhs_skips_edge_loads() {
        assert!(!MulOp::CopyRhs.reads_edge());
        assert!(MulOp::Mul.reads_edge());
        assert!(MulOp::CopyEdge.reads_edge());
    }

    #[test]
    fn reduce_identities_and_finish() {
        assert_eq!(ReduceOp::Sum.identity(), 0.0);
        assert_eq!(ReduceOp::Mean.finish(6.0, 3), 2.0);
        assert_eq!(ReduceOp::Mean.finish(0.0, 0), 0.0);
        assert_eq!(ReduceOp::Max.finish(f32::NEG_INFINITY, 0), 0.0);
        assert_eq!(ReduceOp::Min.finish(f32::INFINITY, 0), 0.0);
        let folded = ReduceOp::Max.fold(ReduceOp::Max.identity(), -2.0);
        assert_eq!(ReduceOp::Max.finish(folded, 1), -2.0);
    }

    #[test]
    fn reduce_fold_is_associative_for_sum_max_min() {
        let vals = [1.0f32, -3.5, 2.0, 7.25];
        for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min] {
            let left = vals.iter().fold(op.identity(), |a, &v| op.fold(a, v));
            let right = {
                let l = vals[..2].iter().fold(op.identity(), |a, &v| op.fold(a, v));
                vals[2..].iter().fold(l, |a, &v| op.fold(a, v))
            };
            assert_eq!(left, right);
        }
    }
}
