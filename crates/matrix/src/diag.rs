use serde::{Deserialize, Serialize};

use crate::{CsrMatrix, MatrixError, Result};

/// A diagonal matrix stored as its diagonal vector.
///
/// GCN's degree normalizer `D^{-1/2}` is the canonical instance. GRANII's IR
/// tracks diagonality as a sparse sub-attribute (paper Table I) because a
/// diagonal operand unlocks cheaper primitives: `diag · dense` lowers to a
/// row-broadcast instead of an SpMM, and `diag · sparse · diag` lowers to an
/// SDDMM-style edge scaling (paper §III-A, Eq. 3).
///
/// # Example
///
/// ```
/// use granii_matrix::DiagMatrix;
///
/// let d = DiagMatrix::from_vec(vec![1.0, 4.0]);
/// let inv_sqrt = d.inv_sqrt();
/// assert_eq!(inv_sqrt.values(), &[1.0, 0.5]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiagMatrix {
    values: Vec<f32>,
}

impl DiagMatrix {
    /// Creates a diagonal matrix from its diagonal entries.
    pub fn from_vec(values: Vec<f32>) -> Self {
        Self { values }
    }

    /// Dimension `n` of the `n x n` matrix.
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// The diagonal entries.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Consumes the matrix and returns the diagonal entries.
    pub fn into_vec(self) -> Vec<f32> {
        self.values
    }

    /// Element-wise `d_i^{-1/2}`, with `0^{-1/2}` defined as 0 (isolated nodes
    /// contribute nothing, matching DGL's GraphConv convention).
    pub fn inv_sqrt(&self) -> DiagMatrix {
        DiagMatrix {
            values: self
                .values
                .iter()
                .map(|&v| if v > 0.0 { 1.0 / v.sqrt() } else { 0.0 })
                .collect(),
        }
    }

    /// Element-wise reciprocal, with `1/0` defined as 0.
    pub fn inv(&self) -> DiagMatrix {
        DiagMatrix {
            values: self
                .values
                .iter()
                .map(|&v| if v != 0.0 { 1.0 / v } else { 0.0 })
                .collect(),
        }
    }

    /// Converts to an equivalent weighted CSR matrix.
    pub fn to_csr(&self) -> CsrMatrix {
        let n = self.values.len();
        CsrMatrix::from_parts(
            n,
            n,
            (0..=n as u64).collect(),
            (0..n as u32).collect(),
            Some(self.values.clone()),
        )
        .expect("diagonal CSR is valid by construction")
    }

    /// Multiplies two diagonal matrices (element-wise product of diagonals).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ShapeMismatch`] if dimensions differ.
    pub fn mul_diag(&self, other: &DiagMatrix) -> Result<DiagMatrix> {
        if self.dim() != other.dim() {
            return Err(MatrixError::ShapeMismatch {
                op: "diag_mul",
                lhs: (self.dim(), self.dim()),
                rhs: (other.dim(), other.dim()),
            });
        }
        Ok(DiagMatrix {
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| a * b)
                .collect(),
        })
    }
}

impl From<Vec<f32>> for DiagMatrix {
    fn from(values: Vec<f32>) -> Self {
        Self::from_vec(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inv_sqrt_handles_zero() {
        let d = DiagMatrix::from_vec(vec![0.0, 9.0]);
        assert_eq!(d.inv_sqrt().values(), &[0.0, 1.0 / 3.0]);
    }

    #[test]
    fn inv_handles_zero() {
        let d = DiagMatrix::from_vec(vec![0.0, 2.0]);
        assert_eq!(d.inv().values(), &[0.0, 0.5]);
    }

    #[test]
    fn to_csr_is_diagonal() {
        let d = DiagMatrix::from_vec(vec![2.0, 3.0]);
        let csr = d.to_csr();
        assert_eq!(csr.get(0, 0), 2.0);
        assert_eq!(csr.get(1, 1), 3.0);
        assert_eq!(csr.get(0, 1), 0.0);
        assert_eq!(csr.nnz(), 2);
    }

    #[test]
    fn mul_diag_multiplies_entrywise() {
        let a = DiagMatrix::from_vec(vec![2.0, 3.0]);
        let b = DiagMatrix::from_vec(vec![5.0, 7.0]);
        assert_eq!(a.mul_diag(&b).unwrap().values(), &[10.0, 21.0]);
        let c = DiagMatrix::from_vec(vec![1.0]);
        assert!(a.mul_diag(&c).is_err());
    }
}
