use serde::{Deserialize, Serialize};

use crate::{MatrixError, Result};

/// Guard limit on single dense allocations (in `f32` elements, = 4 GiB).
///
/// The paper's evaluation hits out-of-memory and illegal-memory-access failures
/// for some baseline configurations (Fig 8, Table IV); this guard turns the
/// equivalent situations into a typed error instead of aborting the process.
pub const DENSE_ALLOC_LIMIT: usize = 1 << 30;

/// A row-major dense `f32` matrix.
///
/// This is the dense operand type for every dense primitive in the crate
/// (GEMM, row-broadcast, element-wise maps) and the embedding/feature storage
/// for the GNN stack built on top.
///
/// # Example
///
/// ```
/// use granii_matrix::DenseMatrix;
///
/// # fn main() -> Result<(), granii_matrix::MatrixError> {
/// let m = DenseMatrix::from_rows(&[[1.0, 2.0].as_slice(), [3.0, 4.0].as_slice()])?;
/// assert_eq!(m.shape(), (2, 2));
/// assert_eq!(m.get(1, 0), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::AllocationTooLarge`] if `rows * cols` exceeds the
    /// allocation guard ([`DENSE_ALLOC_LIMIT`]).
    pub fn zeros(rows: usize, cols: usize) -> Result<Self> {
        let elements = rows
            .checked_mul(cols)
            .ok_or(MatrixError::AllocationTooLarge {
                elements: usize::MAX,
                limit: DENSE_ALLOC_LIMIT,
            })?;
        if elements > DENSE_ALLOC_LIMIT {
            return Err(MatrixError::AllocationTooLarge {
                elements,
                limit: DENSE_ALLOC_LIMIT,
            });
        }
        // Every fresh dense buffer passes through here; the counter lets the
        // allocation-regression tests prove the steady-state path stays off it.
        granii_telemetry::counter_add("matrix.dense_allocs", 1);
        Ok(Self {
            rows,
            cols,
            data: vec![0.0; elements],
        })
    }

    /// Creates a matrix from a raw row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidDenseLength`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MatrixError::InvalidDenseLength {
                len: data.len(),
                expected: rows * cols,
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from row slices. All rows must have equal length.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidDenseLength`] if the rows are ragged.
    pub fn from_rows<R: AsRef<[f32]>>(rows: &[R]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.as_ref().len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            let r = r.as_ref();
            if r.len() != ncols {
                return Err(MatrixError::InvalidDenseLength {
                    len: r.len(),
                    expected: ncols,
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Creates a matrix by calling `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix with pseudo-random entries in `[-scale, scale)`.
    ///
    /// Uses a deterministic xorshift stream seeded by `seed`, so model
    /// initializations are reproducible without pulling a RNG dependency into
    /// the kernel crate.
    pub fn random(rows: usize, cols: usize, scale: f32, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Map the top 24 bits to [-1, 1).
            (state >> 40) as f32 / (1u64 << 23) as f32 - 1.0
        };
        let data = (0..rows * cols).map(|_| next() * scale).collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(
            row < self.rows && col < self.cols,
            "dense index out of bounds"
        );
        self.data[row * self.cols + col]
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(
            row < self.rows && col < self.cols,
            "dense index out of bounds"
        );
        self.data[row * self.cols + col] = value;
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(i < self.rows, "row index out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The whole backing buffer in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the backing buffer in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = vec![0.0f32; self.data.len()];
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        DenseMatrix {
            rows: self.cols,
            cols: self.rows,
            data: out,
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> DenseMatrix {
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise combination of two equally-shaped matrices.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ShapeMismatch`] if shapes differ.
    pub fn zip_with(
        &self,
        other: &DenseMatrix,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<DenseMatrix> {
        if self.shape() != other.shape() {
            return Err(MatrixError::ShapeMismatch {
                op: "zip_with",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> DenseMatrix {
        self.map(|v| v * s)
    }

    /// Rectified linear unit applied element-wise.
    pub fn relu(&self) -> DenseMatrix {
        self.map(|v| v.max(0.0))
    }

    /// Leaky ReLU with the given negative slope, applied element-wise.
    pub fn leaky_relu(&self, slope: f32) -> DenseMatrix {
        self.map(move |v| if v >= 0.0 { v } else { slope * v })
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute difference against another matrix, used by tests.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ShapeMismatch`] if shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> Result<f32> {
        if self.shape() != other.shape() {
            return Err(MatrixError::ShapeMismatch {
                op: "max_abs_diff",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }

    /// Sum of every element.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Appends the rows of `other` below `self`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ShapeMismatch`] if column counts differ.
    pub fn vstack(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != other.cols {
            return Err(MatrixError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(DenseMatrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Concatenates columns of `other` to the right of `self`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ShapeMismatch`] if row counts differ.
    pub fn hstack(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.rows != other.rows {
            return Err(MatrixError::ShapeMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
            data.extend_from_slice(other.row(i));
        }
        Ok(DenseMatrix {
            rows: self.rows,
            cols,
            data,
        })
    }

    /// Gathers the listed rows into a new matrix (used by sampling).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::IndexOutOfBounds`] for any invalid row id.
    pub fn gather_rows(&self, rows: &[usize]) -> Result<DenseMatrix> {
        let mut data = Vec::with_capacity(rows.len() * self.cols);
        for &r in rows {
            if r >= self.rows {
                return Err(MatrixError::IndexOutOfBounds {
                    index: (r, 0),
                    shape: self.shape(),
                });
            }
            data.extend_from_slice(self.row(r));
        }
        Ok(DenseMatrix {
            rows: rows.len(),
            cols: self.cols,
            data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = DenseMatrix::zeros(3, 4).unwrap();
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        let err = DenseMatrix::from_vec(2, 2, vec![1.0; 3]).unwrap_err();
        assert!(matches!(
            err,
            MatrixError::InvalidDenseLength {
                len: 3,
                expected: 4
            }
        ));
    }

    #[test]
    fn from_rows_rejects_ragged_rows() {
        let rows: Vec<Vec<f32>> = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(DenseMatrix::from_rows(&rows).is_err());
    }

    #[test]
    fn transpose_round_trips() {
        let m = DenseMatrix::from_fn(3, 5, |i, j| (i * 10 + j) as f32);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(4, 2), m.get(2, 4));
    }

    #[test]
    fn add_and_sub_are_inverses() {
        let a = DenseMatrix::random(4, 4, 1.0, 1);
        let b = DenseMatrix::random(4, 4, 1.0, 2);
        let s = a.add(&b).unwrap().sub(&b).unwrap();
        assert!(s.max_abs_diff(&a).unwrap() < 1e-6);
    }

    #[test]
    fn relu_clamps_negatives() {
        let m = DenseMatrix::from_rows(&[[-1.0, 2.0].as_slice()]).unwrap();
        assert_eq!(m.relu().as_slice(), &[0.0, 2.0]);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let m = DenseMatrix::from_rows(&[[-2.0, 4.0].as_slice()]).unwrap();
        assert_eq!(m.leaky_relu(0.5).as_slice(), &[-1.0, 4.0]);
    }

    #[test]
    fn hstack_and_vstack_shapes() {
        let a = DenseMatrix::zeros(2, 3).unwrap();
        let b = DenseMatrix::zeros(2, 2).unwrap();
        assert_eq!(a.hstack(&b).unwrap().shape(), (2, 5));
        let c = DenseMatrix::zeros(1, 3).unwrap();
        assert_eq!(a.vstack(&c).unwrap().shape(), (3, 3));
        assert!(a.vstack(&b).is_err());
        assert!(a.hstack(&c).is_err());
    }

    #[test]
    fn gather_rows_picks_rows() {
        let m = DenseMatrix::from_fn(4, 2, |i, _| i as f32);
        let g = m.gather_rows(&[3, 1]).unwrap();
        assert_eq!(g.row(0), &[3.0, 3.0]);
        assert_eq!(g.row(1), &[1.0, 1.0]);
        assert!(m.gather_rows(&[4]).is_err());
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = DenseMatrix::random(3, 3, 1.0, 42);
        let b = DenseMatrix::random(3, 3, 1.0, 42);
        let c = DenseMatrix::random(3, 3, 1.0, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn allocation_guard_trips() {
        let err = DenseMatrix::zeros(usize::MAX / 2, 3).unwrap_err();
        assert!(matches!(err, MatrixError::AllocationTooLarge { .. }));
    }
}
