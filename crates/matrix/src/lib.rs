//! Sparse and dense matrix primitives for GNN computations.
//!
//! This crate is the kernel substrate of the GRANII reproduction. It provides:
//!
//! - [`DenseMatrix`]: row-major dense `f32` matrices and element-wise operations,
//! - [`CsrMatrix`] / [`CooMatrix`]: sparse matrices in CSR/COO form,
//! - [`DiagMatrix`]: diagonal matrices (e.g. degree normalizers),
//! - the generalized matrix primitives used by GNN frameworks (see the paper's
//!   §II): [`ops::gemm`], [`ops::spmm`] (g-SpMM), [`ops::sddmm`] (g-SDDMM),
//!   row/column broadcasts, and edge softmax,
//! - [`stats::WorkStats`]: per-primitive work accounting (flops, bytes, atomics),
//! - [`device`]: analytical device performance models (CPU / A100 / H100) and the
//!   [`device::Engine`] that either measures wall-clock time or converts work
//!   statistics into modeled latencies. The device models substitute for the
//!   GPUs used in the paper's evaluation (see `DESIGN.md` §2).
//!
//! # Example
//!
//! ```
//! use granii_matrix::{CooMatrix, DenseMatrix, ops, Semiring};
//!
//! # fn main() -> Result<(), granii_matrix::MatrixError> {
//! // A tiny 3-node path graph: 0 - 1 - 2 (undirected).
//! let adj = CooMatrix::from_entries(3, 3, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)])?
//!     .to_csr();
//! let feats = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], [2.0, 2.0].as_slice()])?;
//! // Aggregate neighbor features: g-SpMM with the (+, copy-rhs) semiring.
//! let agg = ops::spmm(&adj, &feats, Semiring::plus_copy_rhs())?;
//! assert_eq!(agg.get(0, 1), 1.0); // node 0 sees node 1's features
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod coo;
mod csr;
mod dense;
pub mod device;
mod diag;
mod error;
pub mod ops;
pub mod parallel;
mod semiring;
mod simd;
pub mod stats;
pub mod workspace;

pub use coo::CooMatrix;
pub use csr::{CsrMatrix, RowStats};
pub use dense::{DenseMatrix, DENSE_ALLOC_LIMIT};
pub use diag::DiagMatrix;
pub use error::MatrixError;
pub use semiring::{MulOp, ReduceOp, Semiring};
pub use stats::{PrimitiveKind, WorkStats};
pub use workspace::Workspace;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, MatrixError>;
