//! Library backing the `granii` command-line tool.
//!
//! The CLI wraps the two-stage workflow of the paper's Fig 4/5 for shell use:
//!
//! - `granii train` — the offline stage: profile primitives for a device and
//!   persist the trained cost models as JSON,
//! - `granii select` — the online stage: load cost models, featurize a graph,
//!   and print the selected composition with predicted costs,
//! - `granii compile` — show a model's offline compilation (counts, promoted
//!   trees, complexities),
//! - `granii generate` — write synthetic graphs / dataset stand-ins as edge
//!   lists,
//! - `granii inspect` — print a graph's featurizer view,
//! - `granii bench` — execute a model's compositions with real CPU kernels
//!   and report measured per-iteration times alongside GRANII's choice,
//! - `granii serve-demo` — stand up the concurrent serving runtime
//!   (`granii-serve`), replay a request signature through it, and report
//!   cache-cold vs. cache-hot latency plus the server's counters; can dump a
//!   live status snapshot (`--status-out`), per-request trace lanes
//!   (`--trace-out` + `--trace-every`), and a structured event log
//!   (`--events-out`); `--incident-dir` arms automatic incident capture
//!   with demo-tight SLO and shed thresholds and floods the queue so at
//!   least one bundle lands in the directory,
//! - `granii serve-status` — render a dumped status snapshot as a
//!   human-readable table,
//! - `granii top` — the operator's per-tenant resource view: render the
//!   metering ledger (requests, charged engine time, flops/bytes, queue
//!   wait, batch share, hit rate, sheds, SLO violations) from a
//!   `--status-out` snapshot, optionally re-polling the file,
//! - `granii incident-show` — render an incident bundle (written by the
//!   serving runtime's flight recorder on SLO burn / drift / shed storms)
//!   as a human-readable timeline,
//! - `granii kernels` — print the compiled-in kernel configuration (SIMD
//!   on/off, lane width, tile sizes, scheduling constants) so bench
//!   snapshots can be attributed to the build that produced them.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::BTreeMap;
use std::fmt::Write as _;

use granii_core::cost::training::TrainingConfig;
use granii_core::cost::CostModelSet;
use granii_core::plan::CompiledModel;
use granii_core::Granii;
use granii_gnn::spec::{LayerConfig, ModelKind};
use granii_graph::datasets::{Dataset, Scale};
use granii_graph::{generators, io, Graph, GraphFeatures};
use granii_matrix::device::DeviceKind;

/// Errors surfaced to the CLI user (message + exit code 1).
pub type CliError = String;

/// Parsed command-line arguments: positional command plus `--key value` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    /// `--key value` flags, in order of appearance (later wins).
    pub flags: BTreeMap<String, String>,
}

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns an error for flags without values or extra positionals.
    pub fn parse(raw: &[String]) -> Result<Self, CliError> {
        // Flags that take no value (presence means "true").
        const BOOLEAN_FLAGS: &[&str] = &["trace-summary", "audit"];
        let mut out = Args::default();
        let mut it = raw.iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if BOOLEAN_FLAGS.contains(&key) {
                    out.flags.insert(key.to_string(), "true".to_string());
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?
                    .clone();
                out.flags.insert(key.to_string(), value);
            } else if out.command.is_empty() {
                out.command = tok.clone();
            } else {
                return Err(format!("unexpected positional argument {tok}"));
            }
        }
        if out.command.is_empty() {
            return Err(usage());
        }
        Ok(out)
    }

    /// A flag's value, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// A required flag.
    ///
    /// # Errors
    ///
    /// Returns a usage error naming the missing flag.
    pub fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// A flag parsed as `usize` with a default.
    ///
    /// # Errors
    ///
    /// Returns an error for unparsable values.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got {v}")),
        }
    }
}

/// The CLI usage string.
pub fn usage() -> String {
    "usage: granii <command> [flags]\n\
     commands:\n\
       train     --device cpu|a100|h100 --out FILE [--fast true] [--measured true]\n\
       select    --models FILE --model gcn|gin|sgc|tagcn|gat|sage --k1 N --k2 N\n\
                 (--graph FILE | --dataset RD|CA|MC|BL|AU|OP [--scale tiny|small])\n\
                 [--iters N] [--audit]\n\
                 --audit re-measures every eligible candidate on the device\n\
                 model and reports regret vs the oracle and ln-latency MAPE\n\
       compile   --model NAME [--k1 N --k2 N] [--hops N]\n\
       generate  --kind power-law|erdos-renyi|grid|mycielskian|community|ring|star\n\
                 --out FILE [--nodes N] [--param N] [--seed N]\n\
       inspect   (--graph FILE | --dataset CODE [--scale tiny|small])\n\
       bench     --models FILE --model NAME --k1 N --k2 N [--iters N]\n\
                 (--graph FILE | --dataset CODE [--scale tiny|small])\n\
       serve-demo --models FILE (--graph FILE | --dataset CODE [--scale ...])\n\
                 [--model NAME] [--k1 N] [--k2 N] [--requests N] [--workers N]\n\
                 [--max-batch N] [--status-out FILE] [--trace-every N]\n\
                 [--incident-dir DIR] [--scrape ADDR] [--scrape-hold-ms N]\n\
                 [--timeline-out FILE]\n\
                 --status-out writes a live ServerStatus snapshot as JSON;\n\
                 --trace-every samples every Nth request into its own trace\n\
                 lane (needs --trace-out; default 1, 0 disables);\n\
                 --incident-dir arms automatic incident capture with\n\
                 demo-tight SLO/shed thresholds, floods the queue into a\n\
                 shed storm, and writes the captured bundles to DIR;\n\
                 --scrape binds a Prometheus /metrics + /healthz + /readyz\n\
                 listener on ADDR (e.g. 127.0.0.1:9464; port 0 picks one);\n\
                 --scrape-hold-ms keeps the server (and listener) alive N ms\n\
                 after the workload so an external scraper can poll it;\n\
                 --timeline-out dumps the on-host time-series ring as JSON\n\
       serve-status --status FILE\n\
                 render a serve-demo --status-out snapshot as a table\n\
       top       --status FILE [--watch N] [--interval-ms MS]\n\
                 render the per-tenant metering table from a serve-demo\n\
                 --status-out snapshot; --watch re-reads the file N more\n\
                 times every MS milliseconds (default 1000)\n\
       kernels   print the compiled-in kernel configuration (SIMD on/off,\n\
                 lane width, tile sizes, scheduling constants, threads)\n\
       incident-show --incident FILE\n\
                 render an incident bundle (serve-demo --incident-dir) as\n\
                 a human-readable timeline\n\
     global observability flags (any command):\n\
       --trace-out FILE     write a Chrome trace-event JSON (Perfetto-loadable)\n\
       --metrics-out FILE   write counters, latency histograms, quantile\n\
                 sketches (p50-p999), and distinct-count estimates as JSON\n\
       --events-out FILE    write structured events (enqueue/shed/drift/...) as JSONL\n\
       --trace-summary      append a hierarchical span summary (plus sketch\n\
                 quantile and distinct-count tables, when recorded) to the output"
        .to_string()
}

/// Parses a device name.
///
/// # Errors
///
/// Returns a usage error for unknown names.
pub fn parse_device(name: &str) -> Result<DeviceKind, CliError> {
    match name {
        "cpu" => Ok(DeviceKind::Cpu),
        "a100" => Ok(DeviceKind::A100),
        "h100" => Ok(DeviceKind::H100),
        other => Err(format!("unknown device {other} (cpu|a100|h100)")),
    }
}

/// Parses a model name.
///
/// # Errors
///
/// Returns a usage error for unknown names.
pub fn parse_model(name: &str) -> Result<ModelKind, CliError> {
    match name {
        "gcn" => Ok(ModelKind::Gcn),
        "gin" => Ok(ModelKind::Gin),
        "sgc" => Ok(ModelKind::Sgc),
        "tagcn" => Ok(ModelKind::Tagcn),
        "gat" => Ok(ModelKind::Gat),
        "sage" => Ok(ModelKind::Sage),
        other => Err(format!("unknown model {other}")),
    }
}

/// Parses a Table II dataset code.
///
/// # Errors
///
/// Returns a usage error for unknown codes.
pub fn parse_dataset(code: &str) -> Result<Dataset, CliError> {
    Dataset::ALL
        .into_iter()
        .find(|d| d.code().eq_ignore_ascii_case(code))
        .ok_or_else(|| format!("unknown dataset code {code} (RD|CA|MC|BL|AU|OP)"))
}

/// Loads the graph named by `--graph` or `--dataset`.
///
/// # Errors
///
/// Returns IO/parse errors and usage errors.
pub fn load_graph(args: &Args) -> Result<Graph, CliError> {
    match (args.get("graph"), args.get("dataset")) {
        (Some(path), None) => {
            let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
            if path.ends_with(".mtx") {
                io::read_matrix_market(file).map_err(|e| format!("parse {path}: {e}"))
            } else {
                io::read_edge_list(file).map_err(|e| format!("parse {path}: {e}"))
            }
        }
        (None, Some(code)) => {
            let scale = match args.get("scale").unwrap_or("tiny") {
                "tiny" => Scale::Tiny,
                "small" => Scale::Small,
                other => return Err(format!("unknown scale {other}")),
            };
            parse_dataset(code)?.load(scale).map_err(|e| e.to_string())
        }
        _ => Err("provide exactly one of --graph FILE or --dataset CODE".to_string()),
    }
}

/// Runs a parsed command, returning the text to print. When any of the
/// observability flags (`--trace-out`, `--metrics-out`, `--trace-summary`) is
/// present, telemetry is enabled for the duration of the command and the
/// requested exports are produced afterwards.
///
/// # Errors
///
/// Returns a user-facing error message.
pub fn run(args: &Args) -> Result<String, CliError> {
    let tracing = args.get("trace-out").is_some()
        || args.get("metrics-out").is_some()
        || args.get("trace-summary").is_some()
        || args.get("events-out").is_some();
    if !tracing {
        return dispatch(args);
    }
    granii_telemetry::reset();
    granii_telemetry::enable();
    let result = dispatch(args);
    granii_telemetry::disable();
    let spans = granii_telemetry::take_spans();
    let events = granii_telemetry::take_events();
    let snapshot = granii_telemetry::metrics_snapshot();
    granii_telemetry::reset();
    let mut out = result?;
    if let Some(path) = args.get("trace-out") {
        std::fs::write(path, granii_telemetry::export::chrome_trace(&spans))
            .map_err(|e| format!("write {path}: {e}"))?;
        writeln!(out, "trace: {} spans -> {path}", spans.len()).expect("fmt");
    }
    if let Some(path) = args.get("metrics-out") {
        std::fs::write(path, granii_telemetry::export::metrics_json(&snapshot))
            .map_err(|e| format!("write {path}: {e}"))?;
        writeln!(
            out,
            "metrics: {} counters, {} histograms, {} sketches -> {path}",
            snapshot.counters.len(),
            snapshot.histograms.len(),
            snapshot.sketches.len()
        )
        .expect("fmt");
    }
    if let Some(path) = args.get("events-out") {
        std::fs::write(path, granii_telemetry::export::events_jsonl(&events))
            .map_err(|e| format!("write {path}: {e}"))?;
        writeln!(out, "events: {} -> {path}", events.len()).expect("fmt");
    }
    if args.get("trace-summary").is_some() {
        out.push('\n');
        out.push_str(&granii_telemetry::export::summary(&spans));
        // Sketch-backed quantiles (and distinct-count estimates) ride along
        // when anything recorded them — e.g. the serve-demo latency lanes.
        let sketches = granii_telemetry::export::sketch_summary(&snapshot);
        if !sketches.is_empty() {
            out.push('\n');
            out.push_str(&sketches);
        }
    }
    Ok(out)
}

fn dispatch(args: &Args) -> Result<String, CliError> {
    match args.command.as_str() {
        "train" => cmd_train(args),
        "select" => cmd_select(args),
        "compile" => cmd_compile(args),
        "generate" => cmd_generate(args),
        "inspect" => cmd_inspect(args),
        "bench" => cmd_bench(args),
        "serve-demo" => cmd_serve_demo(args),
        "serve-status" => cmd_serve_status(args),
        "top" => cmd_top(args),
        "kernels" => Ok(cmd_kernels()),
        "incident-show" => cmd_incident_show(args),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command {other}\n{}", usage())),
    }
}

fn cmd_train(args: &Args) -> Result<String, CliError> {
    let device = parse_device(args.require("device")?)?;
    let out_path = args.require("out")?;
    let fast = args.get("fast") == Some("true");
    let measured = args.get("measured") == Some("true");
    let cfg = if fast {
        TrainingConfig::fast()
    } else {
        TrainingConfig::default()
    };
    let models = if measured {
        if device != DeviceKind::Cpu {
            return Err("--measured true profiles real kernels and requires --device cpu".into());
        }
        granii_core::cost::training::train_measured_cpu(&cfg, 2_000_000, 512)
            .map_err(|e| e.to_string())?
    } else {
        granii_core::cost::training::train(device, &cfg).map_err(|e| e.to_string())?
    };
    let json = models.to_json().map_err(|e| e.to_string())?;
    std::fs::write(out_path, &json).map_err(|e| format!("write {out_path}: {e}"))?;
    let mut report = format!("trained cost models for {device} -> {out_path}\n");
    for (kind, (rmse, spearman)) in &models.validation {
        writeln!(
            report,
            "  {kind}: rmse(log) {rmse:.3}, spearman {spearman:.3}"
        )
        .expect("fmt");
    }
    Ok(report)
}

fn cmd_select(args: &Args) -> Result<String, CliError> {
    let path = args.require("models")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let models = CostModelSet::from_json(&json).map_err(|e| e.to_string())?;
    let granii = Granii::with_cost_models(models);
    let model = parse_model(args.require("model")?)?;
    let k1 = args
        .require("k1")?
        .parse::<usize>()
        .map_err(|e| format!("--k1: {e}"))?;
    let k2 = args
        .require("k2")?
        .parse::<usize>()
        .map_err(|e| format!("--k2: {e}"))?;
    let iters = args.usize_or("iters", 100)?;
    let graph = load_graph(args)?;
    let sel = granii
        .select_with_config(model, &graph, LayerConfig::new(k1, k2), iters)
        .map_err(|e| e.to_string())?;
    let mut out = format!(
        "graph: {} ({} nodes, {} edges)\nselected: {}\ncost models used: {}\noverhead: {:.3} ms\n",
        graph.name(),
        graph.num_nodes(),
        graph.num_edges(),
        sel.composition_name(),
        sel.used_cost_models,
        sel.overhead_seconds() * 1e3
    );
    for (comp, cost) in &sel.predicted {
        writeln!(out, "  predicted {:>10.3} ms  {comp}", cost * 1e3).expect("fmt");
    }
    if args.get("audit") == Some("true") {
        let report = granii
            .verify(model, &graph, LayerConfig::new(k1, k2), iters)
            .map_err(|e| e.to_string())?;
        let mape = report
            .ln_mape
            .map_or_else(|| "n/a".to_string(), |m| format!("{m:.3}"));
        writeln!(
            out,
            "audit: oracle {} | regret {:.3} ms ({:+.1}%) | ln-latency MAPE {mape}",
            report.oracle,
            report.regret_seconds() * 1e3,
            report.relative_regret() * 100.0,
        )
        .expect("fmt");
        writeln!(
            out,
            "  {:>12} {:>12}  candidate (measured-cheapest first)",
            "measured", "predicted"
        )
        .expect("fmt");
        for c in &report.candidates {
            let pred = c
                .predicted_seconds
                .map_or_else(|| "-".to_string(), |p| format!("{:.3} ms", p * 1e3));
            let mut marker = String::new();
            if c.composition == report.chosen {
                marker.push_str("  <- chosen");
            }
            if c.composition == report.oracle {
                marker.push_str("  <- oracle");
            }
            writeln!(
                out,
                "  {:>9.3} ms {pred:>12}  {}{marker}",
                c.measured_seconds * 1e3,
                c.composition
            )
            .expect("fmt");
        }
    }
    Ok(out)
}

fn cmd_compile(args: &Args) -> Result<String, CliError> {
    let model = parse_model(args.require("model")?)?;
    let k1 = args.usize_or("k1", 32)?;
    let k2 = args.usize_or("k2", 256)?;
    let hops = args.usize_or("hops", 2)?;
    let plan = CompiledModel::compile(
        model,
        LayerConfig {
            k_in: k1,
            k_out: k2,
            hops,
        },
    )
    .map_err(|e| e.to_string())?;
    let mut out = format!(
        "{model}: {} enumerated, {} pruned, {} promoted\n",
        plan.enumerated,
        plan.pruned,
        plan.candidates.len()
    );
    for c in &plan.candidates {
        let scen = match (c.shrink, c.grow) {
            (true, true) => "<>",
            (true, false) => ">",
            (false, true) => "<",
            _ => "-",
        };
        writeln!(out, "  [{scen}] {} => {}", c.program.expr, c.composition).expect("fmt");
    }
    Ok(out)
}

fn cmd_generate(args: &Args) -> Result<String, CliError> {
    let kind = args.require("kind")?;
    let out_path = args.require("out")?;
    let nodes = args.usize_or("nodes", 1_000)?;
    let param = args.usize_or("param", 8)?;
    let seed = args.usize_or("seed", 0)? as u64;
    let graph = match kind {
        "power-law" => generators::power_law(nodes, param, seed),
        "erdos-renyi" => generators::erdos_renyi(nodes, param as f64, seed),
        "grid" => generators::grid_2d(nodes, param),
        "mycielskian" => generators::mycielskian(param as u32),
        "community" => generators::community((nodes / 50).max(1), 50, 0.2, param, seed),
        "ring" => generators::ring(nodes),
        "star" => generators::star(nodes),
        other => return Err(format!("unknown generator {other}")),
    }
    .map_err(|e| e.to_string())?;
    let file = std::fs::File::create(out_path).map_err(|e| format!("create {out_path}: {e}"))?;
    io::write_edge_list(&graph, file).map_err(|e| e.to_string())?;
    Ok(format!(
        "wrote {} ({} nodes, {} edges) -> {out_path}",
        graph.name(),
        graph.num_nodes(),
        graph.num_edges()
    ))
}

/// Measured execution: runs every composition of a model on the host CPU and
/// reports per-iteration times next to GRANII's selection.
fn cmd_bench(args: &Args) -> Result<String, CliError> {
    use granii_gnn::models::GnnLayer;
    use granii_gnn::spec::Composition;
    use granii_gnn::{Exec, GraphCtx};
    use granii_matrix::device::Engine;
    use granii_matrix::DenseMatrix;

    let path = args.require("models")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let models = CostModelSet::from_json(&json).map_err(|e| e.to_string())?;
    let granii = Granii::with_cost_models(models);
    let model = parse_model(args.require("model")?)?;
    let k1 = args
        .require("k1")?
        .parse::<usize>()
        .map_err(|e| format!("--k1: {e}"))?;
    let k2 = args
        .require("k2")?
        .parse::<usize>()
        .map_err(|e| format!("--k2: {e}"))?;
    let iters = args.usize_or("iters", 10)?;
    let graph = load_graph(args)?;
    let cfg = LayerConfig::new(k1, k2);

    let ctx = GraphCtx::new(&graph).map_err(|e| e.to_string())?;
    let engine = Engine::cpu_measured();
    let exec = Exec::real(&engine);
    let layer = GnnLayer::new(model, cfg, 7).map_err(|e| e.to_string())?;
    let h = DenseMatrix::random(ctx.num_nodes(), k1, 1.0, 1);
    let selection = granii
        .select_with_config(model, &graph, cfg, iters)
        .map_err(|e| e.to_string())?;

    let mut out = format!(
        "measured CPU execution on {} ({} nodes, {} edges), {iters} iterations each
",
        graph.name(),
        graph.num_nodes(),
        graph.num_edges()
    );
    for comp in Composition::all_for(model) {
        let prepared = layer
            .prepare(&exec, &ctx, comp)
            .map_err(|e| e.to_string())?;
        engine.take_profile();
        for _ in 0..iters {
            layer
                .forward(&exec, &ctx, &prepared, &h, comp)
                .map_err(|e| e.to_string())?;
        }
        let per_iter = engine.take_profile().total_seconds() / iters as f64;
        let marker = if comp == selection.composition {
            "  <- GRANII's choice"
        } else {
            ""
        };
        writeln!(out, "  {:>10.3} ms/iter  {comp}{marker}", per_iter * 1e3).expect("fmt");
    }

    // One measured training step under the selected composition, so the bench
    // report (and its trace) covers the training path as well.
    let mut trainer =
        granii_gnn::train::Trainer::new(model, cfg, 7, 0.01).map_err(|e| e.to_string())?;
    let target = DenseMatrix::random(ctx.num_nodes(), k2, 1.0, 2);
    engine.take_profile();
    let loss = trainer
        .step(&exec, &ctx, &h, &target, selection.composition)
        .map_err(|e| e.to_string())?;
    let step_seconds = engine.take_profile().total_seconds();
    writeln!(
        out,
        "  {:>10.3} ms/step  training step (loss {loss:.4}, {})",
        step_seconds * 1e3,
        selection.composition
    )
    .expect("fmt");
    Ok(out)
}

/// Serving demo: replays one request signature through a multi-worker
/// [`granii_serve::Server`] and reports cache-cold vs. cache-hot latency.
fn cmd_serve_demo(args: &Args) -> Result<String, CliError> {
    use granii_serve::{
        IncidentConfig, LatencyObjective, Outcome, ScrapeConfig, ServeConfig, ServeRequest, Server,
    };

    let path = args.require("models")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let models = CostModelSet::from_json(&json).map_err(|e| e.to_string())?;
    let granii = std::sync::Arc::new(Granii::with_cost_models(models));
    let model = parse_model(args.get("model").unwrap_or("gcn"))?;
    let k1 = args.usize_or("k1", 32)?;
    let k2 = args.usize_or("k2", 32)?;
    let requests = args.usize_or("requests", 16)?.max(2);
    let workers = args.usize_or("workers", 2)?.max(1);
    let max_batch = args.usize_or("max-batch", 8)?.max(1);
    // Per-request trace-lane sampling; only takes effect when telemetry is
    // on (i.e. --trace-out or a sibling flag was given).
    let trace_every = args.usize_or("trace-every", 1)? as u64;
    let incident_dir = args.get("incident-dir").map(std::path::PathBuf::from);
    let scrape_hold_ms = args.usize_or("scrape-hold-ms", 0)?;
    let graph = std::sync::Arc::new(load_graph(args)?);

    let mut config = ServeConfig {
        workers,
        max_batch,
        trace_sample_every: trace_every,
        ..ServeConfig::default()
    };
    if let Some(addr) = args.get("scrape") {
        config.scrape = ScrapeConfig {
            enabled: true,
            addr: addr.to_string(),
        };
    }
    if let Some(dir) = &incident_dir {
        // Demo-tight thresholds: sub-microsecond SLOs make every request a
        // violation (the first closed window burns), and a low shed-storm
        // threshold plus zero capture cooldown lets the flood below
        // deterministically trip at least one incident into DIR.
        config.slo.objectives = vec![
            LatencyObjective::new(Outcome::Hit, 0.0001, 0.99),
            LatencyObjective::new(Outcome::Miss, 0.0001, 0.99),
            LatencyObjective::new(Outcome::Degraded, 0.0001, 0.95),
        ];
        config.slo.window = 16;
        config.incident = IncidentConfig {
            dir: Some(dir.clone()),
            cooldown: std::time::Duration::ZERO,
            max_per_window: 64,
            shed_threshold: 16,
            ..IncidentConfig::default()
        };
    }
    let queue_depth = config.queue_depth;
    let scrape_armed = args.get("scrape").is_some();
    let server = Server::start(granii, config);
    let scrape_line = match (scrape_armed, server.scrape_addr()) {
        (true, Some(addr)) => Some(format!(
            "  scrape: http://{addr}/metrics (/healthz, /readyz)"
        )),
        (true, None) => return Err("--scrape: failed to bind the listener".to_string()),
        _ => None,
    };
    let mut out = format!(
        "serving {model} {k1}x{k2} on {} ({} nodes, {} edges): {requests} requests, {workers} workers\n",
        graph.name(),
        graph.num_nodes(),
        graph.num_edges()
    );
    let mut hot = Vec::with_capacity(requests - 1);
    for i in 0..requests {
        let response = server
            .process(ServeRequest::new(model, graph.clone(), k1, k2))
            .map_err(|e| e.to_string())?;
        if i == 0 {
            let degraded = if response.degraded { " (degraded)" } else { "" };
            writeln!(
                out,
                "  cache-cold request: {:.3} ms -> {}{degraded}",
                response.timing.total_seconds * 1e3,
                response.composition
            )
            .expect("fmt");
        } else {
            hot.push(response.timing.total_seconds);
        }
    }
    // A burst of concurrent submits: with the workers busy, the queue backs
    // up and the dispatcher coalesces same-signature requests into
    // multi-RHS batch groups (the sequential loop above never batches —
    // each request completes before the next is submitted).
    let tickets: Vec<_> = (0..requests)
        .map(|_| server.submit(ServeRequest::new(model, graph.clone(), k1, k2)))
        .collect();
    let mut burst_completed = 0u64;
    let mut burst_batched = 0u64;
    for ticket in tickets {
        let response = ticket
            .map_err(|e| e.to_string())?
            .wait()
            .map_err(|e| e.to_string())?;
        burst_completed += 1;
        if response.batch_size >= 2 {
            burst_batched += 1;
        }
    }
    // Incident mode: flood the queue far past its depth in a tight loop.
    // Admission (and single-tenant fairness) sheds the overflow, the shed
    // storm trips the capturer, and the burning SLO windows from the
    // requests above contribute their own bundles.
    let mut flood_line = None;
    if incident_dir.is_some() {
        let mut flood_tickets = Vec::new();
        let mut flood_shed = 0u64;
        let flood_total = 8 * queue_depth;
        for _ in 0..flood_total {
            match server.submit(ServeRequest::new(model, graph.clone(), k1, k2)) {
                Ok(ticket) => flood_tickets.push(ticket),
                Err(_) => flood_shed += 1,
            }
        }
        let mut flood_completed = 0u64;
        for ticket in flood_tickets {
            if ticket.wait().is_ok() {
                flood_completed += 1;
            }
        }
        flood_line = Some(format!(
            "  flood: {flood_total} submits -> {flood_shed} shed, {flood_completed} completed"
        ));
    }
    // CI / external scrapers: hold the server (and its /metrics listener)
    // alive past the workload so they can poll a live endpoint.
    if scrape_hold_ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(scrape_hold_ms as u64));
    }
    let bundles = server.incidents();
    let stats = server.stats();
    let status = server.status();
    let timeline_line = match args.get("timeline-out") {
        Some(path) => {
            let snapshot = server.timeline_snapshot();
            std::fs::write(path, granii_telemetry::timeseries_json(&snapshot))
                .map_err(|e| format!("write {path}: {e}"))?;
            Some(format!(
                "  timeline: {} frames x {} columns -> {path}",
                snapshot.frames(),
                snapshot.columns.len()
            ))
        }
        None => None,
    };
    server.shutdown();
    if let Some(line) = &scrape_line {
        out.push_str(line);
        out.push('\n');
    }
    writeln!(
        out,
        "  burst: {burst_completed} requests, {burst_batched} served in batch groups \
         (max batch {max_batch}, {} groups formed)",
        status.batching.groups
    )
    .expect("fmt");
    if let Some(line) = flood_line {
        out.push_str(&line);
        out.push('\n');
    }
    hot.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    writeln!(
        out,
        "  cache-hot p50: {:.3} ms (over {} requests)",
        hot[hot.len() / 2] * 1e3,
        hot.len()
    )
    .expect("fmt");
    writeln!(
        out,
        "  stats: completed {} | cache hits {} misses {} (hit rate {:.1}%) | degraded {} | shed {}",
        stats.completed,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_hit_rate * 100.0,
        stats.degraded,
        stats.shed
    )
    .expect("fmt");
    if let Some(dir) = &incident_dir {
        writeln!(
            out,
            "  incidents: {} captured -> {}",
            bundles.len(),
            dir.display()
        )
        .expect("fmt");
        for bundle in &bundles {
            writeln!(
                out,
                "    incident #{} {}: {}",
                bundle.seq, bundle.trigger.kind, bundle.trigger.detail
            )
            .expect("fmt");
        }
        if bundles.is_empty() {
            return Err("incident mode armed but no incident was captured".to_string());
        }
    }
    if let Some(path) = args.get("status-out") {
        std::fs::write(path, status.to_json()).map_err(|e| format!("write {path}: {e}"))?;
        writeln!(out, "  status -> {path}").expect("fmt");
    }
    if let Some(line) = timeline_line {
        out.push_str(&line);
        out.push('\n');
    }
    Ok(out)
}

/// Renders the per-tenant metering ledger from a status snapshot — the
/// `top` command. With `--watch N` the file is re-read N more times (every
/// `--interval-ms`, default 1000), so an operator can point it at a file a
/// live server keeps rewriting.
fn cmd_top(args: &Args) -> Result<String, CliError> {
    let path = args.require("status")?;
    let watch = args.usize_or("watch", 0)?;
    let interval_ms = args.usize_or("interval-ms", 1000)?;
    let mut out = String::new();
    for round in 0..=watch {
        if round > 0 {
            std::thread::sleep(std::time::Duration::from_millis(interval_ms as u64));
            out.push('\n');
        }
        let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let status = granii_serve::ServerStatus::from_json(&json)
            .map_err(|e| format!("parse {path}: {e}"))?;
        let m = &status.metering;
        writeln!(
            out,
            "granii top — uptime {:.1}s | {} metered requests | charged {:.2} ms | \
             {:.3e} flops | {:.3e} bytes | sheds {} | slo violations {}",
            status.uptime_seconds,
            m.total_requests,
            m.total_charged_ms,
            m.total_flops,
            m.total_bytes,
            m.total_sheds,
            m.total_slo_violations
        )
        .expect("fmt");
        if m.tenants.is_empty() {
            out.push_str("  (no tenants metered yet)\n");
            continue;
        }
        writeln!(
            out,
            "  {:<16} {:>7} {:>8} {:>12} {:>10} {:>6} {:>6} {:>6} {:>6} {:>6}",
            "tenant",
            "reqs",
            "batched",
            "charged-ms",
            "wait-ms",
            "share",
            "hit%",
            "shed",
            "degr",
            "slo"
        )
        .expect("fmt");
        for t in &m.tenants {
            writeln!(
                out,
                "  {:<16} {:>7} {:>8} {:>12.3} {:>10.3} {:>6.2} {:>6.1} {:>6} {:>6} {:>6}",
                t.fingerprint,
                t.requests,
                t.batched_requests,
                t.charged_ms,
                t.mean_queue_wait_ms,
                t.mean_batch_share,
                t.hit_rate * 100.0,
                t.sheds,
                t.degraded,
                t.slo_violations
            )
            .expect("fmt");
        }
    }
    Ok(out)
}

/// Renders an incident bundle (written by `serve-demo --incident-dir`, or
/// by any server with `IncidentConfig::dir` set) as the human-readable
/// timeline — the `incident-show` command.
fn cmd_incident_show(args: &Args) -> Result<String, CliError> {
    let path = args.require("incident")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let bundle =
        granii_serve::IncidentBundle::from_json(&json).map_err(|e| format!("parse {path}: {e}"))?;
    Ok(bundle.to_string())
}

/// Renders a status snapshot (written by `serve-demo --status-out`) as the
/// human-readable table — the `serve-status` command.
fn cmd_serve_status(args: &Args) -> Result<String, CliError> {
    let path = args.require("status")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let status =
        granii_serve::ServerStatus::from_json(&json).map_err(|e| format!("parse {path}: {e}"))?;
    Ok(status.to_string())
}

/// Prints the compiled-in kernel configuration — the `kernels` command.
///
/// One glance answers "is this binary running the SIMD paths, and with what
/// tile/scheduling constants?", which matters when comparing bench snapshots
/// recorded on different builds (see DESIGN.md §14).
fn cmd_kernels() -> String {
    granii_matrix::ops::kernel_config().to_string()
}

fn cmd_inspect(args: &Args) -> Result<String, CliError> {
    let graph = load_graph(args)?;
    let f = GraphFeatures::extract(&graph);
    let mut out = format!("graph {}\n", graph.name());
    for (name, value) in GraphFeatures::NAMES.iter().zip(f.to_vec()) {
        writeln!(out, "  {name:<20} {value:.4}").expect("fmt");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parse_accepts_command_and_flags() {
        let a = args(&["select", "--k1", "32", "--k2", "64"]);
        assert_eq!(a.command, "select");
        assert_eq!(a.get("k1"), Some("32"));
        assert_eq!(a.usize_or("k2", 0).unwrap(), 64);
        assert_eq!(a.usize_or("missing", 7).unwrap(), 7);
    }

    #[test]
    fn parse_rejects_dangling_flag_and_extra_positional() {
        assert!(Args::parse(&["x".into(), "--k1".into()]).is_err());
        assert!(Args::parse(&["x".into(), "y".into()]).is_err());
        assert!(Args::parse(&[]).is_err());
    }

    #[test]
    fn name_parsers() {
        assert_eq!(parse_device("a100").unwrap(), DeviceKind::A100);
        assert!(parse_device("tpu").is_err());
        assert_eq!(parse_model("gat").unwrap(), ModelKind::Gat);
        assert!(parse_model("transformer").is_err());
        assert_eq!(parse_dataset("rd").unwrap(), Dataset::Reddit);
        assert!(parse_dataset("XX").is_err());
    }

    #[test]
    fn kernels_command_reports_build_configuration() {
        let out = run(&args(&["kernels"])).unwrap();
        // The report must state the SIMD mode of the matrix crate actually
        // linked in (feature unification can enable it without this crate's
        // own `simd` feature) and the constants a bench snapshot depends on.
        let mode = if granii_matrix::ops::kernel_config().simd {
            "kernels: simd"
        } else {
            "kernels: scalar"
        };
        assert!(out.contains(mode), "{out}");
        assert!(out.contains("threads"), "{out}");
        assert!(usage().contains("kernels"));
    }

    #[test]
    fn compile_command_reports_counts() {
        let out = run(&args(&["compile", "--model", "gcn"])).unwrap();
        assert!(out.contains("12 enumerated, 8 pruned, 4 promoted"), "{out}");
    }

    #[test]
    fn generate_and_inspect_round_trip() {
        let dir = std::env::temp_dir().join("granii-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let path_s = path.to_str().unwrap();
        let out = run(&args(&[
            "generate", "--kind", "ring", "--nodes", "12", "--out", path_s,
        ]))
        .unwrap();
        assert!(out.contains("12 nodes"), "{out}");
        let out = run(&args(&["inspect", "--graph", path_s])).unwrap();
        assert!(out.contains("avg_degree"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn select_requires_model_file() {
        let err = run(&args(&[
            "select",
            "--models",
            "/nonexistent.json",
            "--model",
            "gcn",
            "--k1",
            "8",
            "--k2",
            "8",
            "--dataset",
            "RD",
        ]))
        .unwrap_err();
        assert!(err.contains("read /nonexistent.json"), "{err}");
    }

    #[test]
    fn bench_requires_models_file() {
        let err = run(&args(&[
            "bench",
            "--models",
            "/missing.json",
            "--model",
            "gcn",
            "--k1",
            "8",
            "--k2",
            "8",
            "--dataset",
            "BL",
        ]))
        .unwrap_err();
        assert!(err.contains("read /missing.json"), "{err}");
    }

    #[test]
    fn serve_demo_requires_models_file() {
        let err = run(&args(&[
            "serve-demo",
            "--models",
            "/missing.json",
            "--dataset",
            "MC",
        ]))
        .unwrap_err();
        assert!(err.contains("read /missing.json"), "{err}");
    }

    #[test]
    fn serve_demo_round_trips_with_trained_models() {
        let dir = std::env::temp_dir().join("granii-cli-serve-demo");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("models.json");
        let path_s = path.to_str().unwrap();
        run(&args(&[
            "train", "--device", "h100", "--fast", "true", "--out", path_s,
        ]))
        .unwrap();
        let out = run(&args(&[
            "serve-demo",
            "--models",
            path_s,
            "--dataset",
            "MC",
            "--requests",
            "4",
        ]))
        .unwrap();
        assert!(out.contains("cache-cold request"), "{out}");
        assert!(out.contains("cache-hot p50"), "{out}");
        assert!(out.contains("hit rate"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn serve_demo_incident_mode_writes_bundles_and_incident_show_renders() {
        let dir = std::env::temp_dir().join("granii-cli-incident-demo");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let models = dir.join("models.json");
        let models_s = models.to_str().unwrap();
        run(&args(&[
            "train", "--device", "h100", "--fast", "true", "--out", models_s,
        ]))
        .unwrap();
        let incidents = dir.join("incidents");
        let incidents_s = incidents.to_str().unwrap();
        let out = run(&args(&[
            "serve-demo",
            "--models",
            models_s,
            "--dataset",
            "MC",
            "--requests",
            "32",
            "--incident-dir",
            incidents_s,
        ]))
        .unwrap();
        assert!(out.contains("flood:"), "{out}");
        assert!(out.contains("incidents:"), "{out}");
        assert!(!out.contains("incidents: 0 captured"), "{out}");
        let mut files: Vec<_> = std::fs::read_dir(&incidents)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        assert!(!files.is_empty(), "bundle files written");
        let rendered = run(&args(&[
            "incident-show",
            "--incident",
            files[0].to_str().unwrap(),
        ]))
        .unwrap();
        assert!(rendered.contains("incident #"), "{rendered}");
        assert!(rendered.contains("trigger"), "{rendered}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_demo_scrape_timeline_and_top_round_trip() {
        let dir = std::env::temp_dir().join("granii-cli-top-demo");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let models = dir.join("models.json");
        let models_s = models.to_str().unwrap();
        run(&args(&[
            "train", "--device", "h100", "--fast", "true", "--out", models_s,
        ]))
        .unwrap();
        let status = dir.join("status.json");
        let timeline = dir.join("timeline.json");
        let out = run(&args(&[
            "serve-demo",
            "--models",
            models_s,
            "--dataset",
            "MC",
            "--requests",
            "4",
            "--scrape",
            "127.0.0.1:0",
            "--status-out",
            status.to_str().unwrap(),
            "--timeline-out",
            timeline.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("scrape: http://127.0.0.1:"), "{out}");
        assert!(out.contains("timeline:"), "{out}");
        let timeline_json = std::fs::read_to_string(&timeline).unwrap();
        assert!(timeline_json.contains("serve.completed"), "{timeline_json}");
        let rendered = run(&args(&["top", "--status", status.to_str().unwrap()])).unwrap();
        assert!(rendered.contains("granii top"), "{rendered}");
        assert!(rendered.contains("metered requests"), "{rendered}");
        assert!(rendered.contains("tenant"), "{rendered}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn top_requires_readable_status() {
        let err = run(&args(&["top", "--status", "/missing.json"])).unwrap_err();
        assert!(err.contains("read /missing.json"), "{err}");
    }

    #[test]
    fn incident_show_requires_readable_bundle() {
        let err = run(&args(&["incident-show", "--incident", "/missing.json"])).unwrap_err();
        assert!(err.contains("read /missing.json"), "{err}");
    }

    #[test]
    fn unknown_command_shows_usage() {
        let err = run(&args(&["frobnicate"])).unwrap_err();
        assert!(err.contains("usage:"), "{err}");
    }
}
