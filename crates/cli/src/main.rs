//! The `granii` command-line tool. See [`granii_cli::usage`].

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match granii_cli::Args::parse(&raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match granii_cli::run(&args) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
