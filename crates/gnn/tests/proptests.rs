//! Property-based tests for the GNN substrate: composition equivalence on
//! random graphs and configurations — the correctness foundation GRANII's
//! re-association selection stands on.

use granii_gnn::models::GnnLayer;
use granii_gnn::spec::{Composition, LayerConfig, ModelKind};
use granii_gnn::{Exec, GraphCtx};
use granii_graph::Graph;
use granii_matrix::device::{DeviceKind, Engine};
use granii_matrix::DenseMatrix;
use proptest::prelude::*;

fn random_graph() -> impl Strategy<Value = Graph> {
    (
        3usize..25,
        proptest::collection::vec((0usize..25, 0usize..25), 1..60),
    )
        .prop_map(|(n, edges)| {
            let edges: Vec<_> = edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
            Graph::undirected_from_edges(n, &edges).expect("in range")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Every composition of every model computes the same function on random
    /// undirected graphs and random embedding sizes.
    #[test]
    fn compositions_equivalent_on_random_graphs(
        g in random_graph(),
        k_in in 1usize..8,
        k_out in 1usize..8,
        seed in 0u64..1000,
    ) {
        let ctx = GraphCtx::new(&g).unwrap();
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);
        let h = DenseMatrix::random(g.num_nodes(), k_in, 1.0, seed);
        for kind in [ModelKind::Gcn, ModelKind::Gin, ModelKind::Sgc, ModelKind::Tagcn, ModelKind::Gat, ModelKind::Sage] {
            let layer = GnnLayer::new(kind, LayerConfig::new(k_in, k_out), seed + 1).unwrap();
            let comps = Composition::all_for(kind);
            let reference = {
                let p = layer.prepare(&exec, &ctx, comps[0]).unwrap();
                layer.forward(&exec, &ctx, &p, &h, comps[0]).unwrap()
            };
            for &comp in &comps[1..] {
                let p = layer.prepare(&exec, &ctx, comp).unwrap();
                let out = layer.forward(&exec, &ctx, &p, &h, comp).unwrap();
                let diff = out.max_abs_diff(&reference).unwrap();
                // Scale tolerance with magnitude: deep chains amplify rounding.
                let tol = 1e-3 * (1.0 + reference.frobenius_norm());
                prop_assert!(diff < tol, "{comp}: diff {diff} (tol {tol})");
            }
        }
    }

    /// Virtual execution charges exactly the same modeled latency as real
    /// execution for every model/composition (this is what makes the
    /// benchmark sweeps trustworthy).
    #[test]
    fn virtual_and_real_latencies_match(
        g in random_graph(),
        k in 1usize..6,
        seed in 0u64..100,
    ) {
        let ctx = GraphCtx::new(&g).unwrap();
        let h = DenseMatrix::random(g.num_nodes(), k, 1.0, seed);
        for kind in ModelKind::EVAL {
            for comp in Composition::all_for(kind) {
                let layer = GnnLayer::new(kind, LayerConfig::new(k, k), seed).unwrap();
                let time = |virtual_mode: bool| {
                    let engine = Engine::modeled(DeviceKind::A100);
                    let exec = if virtual_mode { Exec::virtual_only(&engine) } else { Exec::real(&engine) };
                    let p = layer.prepare(&exec, &ctx, comp).unwrap();
                    layer.forward(&exec, &ctx, &p, &h, comp).unwrap();
                    engine.elapsed_seconds()
                };
                let (real, virt) = (time(false), time(true));
                prop_assert!((real - virt).abs() < 1e-12, "{comp}: {real} vs {virt}");
            }
        }
    }
}
