//! Training (forward + backward + SGD) for every model and composition.
//!
//! The paper's training evaluation (§VI-C) runs full training iterations where
//! only the forward pass uses GRANII's selected composition; the backward pass
//! runs whatever gradient program the tape derives. [`Trainer::step`] builds
//! the tape for the requested composition, computes an MSE loss against a
//! regression target, backpropagates, and applies an SGD update — charging
//! every primitive of all three phases to the executor's engine.

use std::sync::Arc;

use granii_matrix::{DenseMatrix, Semiring};

use crate::autodiff::{Tape, Var};
use crate::models::GIN_EPS;
use crate::spec::{Composition, GatStrategy, LayerConfig, ModelKind, NormStrategy, OpOrder};
use crate::{Exec, GnnError, GraphCtx, Result};

/// Trainable parameters of one layer, by model kind.
#[derive(Debug, Clone)]
enum Params {
    Gcn {
        w: DenseMatrix,
    },
    Gin {
        w1: DenseMatrix,
        w2: DenseMatrix,
    },
    Sgc {
        w: DenseMatrix,
    },
    Tagcn {
        ws: Vec<DenseMatrix>,
    },
    Gat {
        w: DenseMatrix,
        a_l: DenseMatrix,
        a_r: DenseMatrix,
    },
    Sage {
        w_self: DenseMatrix,
        w_neigh: DenseMatrix,
    },
}

/// Gradient-descent optimizers for [`Trainer`].
///
/// `Sgd` is the paper-era default; `Adam` is provided as the common
/// alternative (extension feature). All state updates are charged through the
/// executor like any other element-wise primitive.
#[derive(Debug, Clone)]
pub struct Optimizer {
    kind: OptimizerKind,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    /// Per-parameter (first moment, second moment), lazily initialized.
    state: Vec<Option<(DenseMatrix, DenseMatrix)>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OptimizerKind {
    Sgd,
    Adam,
}

impl Optimizer {
    /// Plain stochastic gradient descent.
    pub fn sgd(lr: f32) -> Self {
        Self {
            kind: OptimizerKind::Sgd,
            lr,
            beta1: 0.0,
            beta2: 0.0,
            eps: 0.0,
            t: 0,
            state: Vec::new(),
        }
    }

    /// Adam with the standard moment coefficients (0.9, 0.999).
    pub fn adam(lr: f32) -> Self {
        Self {
            kind: OptimizerKind::Adam,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            state: Vec::new(),
        }
    }

    /// The learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Advances the step counter (once per training step, before updates).
    fn begin_step(&mut self, num_params: usize) {
        self.t += 1;
        if self.state.len() < num_params {
            self.state.resize(num_params, None);
        }
    }

    /// Applies the update rule for parameter `idx`, returning the new value.
    fn update(
        &mut self,
        exec: &Exec,
        idx: usize,
        w: &DenseMatrix,
        g: &DenseMatrix,
    ) -> Result<DenseMatrix> {
        match self.kind {
            OptimizerKind::Sgd => {
                let lr = self.lr;
                exec.zip(w, g, 2, move |wv, gv| wv - lr * gv)
            }
            OptimizerKind::Adam => {
                let (m_prev, v_prev) = match self.state[idx].take() {
                    Some(s) => s,
                    None => (
                        DenseMatrix::zeros(w.rows(), w.cols())?,
                        DenseMatrix::zeros(w.rows(), w.cols())?,
                    ),
                };
                let (b1, b2) = (self.beta1, self.beta2);
                let m = exec.zip(&m_prev, g, 2, move |mv, gv| b1 * mv + (1.0 - b1) * gv)?;
                let v = exec.zip(&v_prev, g, 3, move |vv, gv| b2 * vv + (1.0 - b2) * gv * gv)?;
                let bc1 = 1.0 - b1.powi(self.t);
                let bc2 = 1.0 - b2.powi(self.t);
                let (lr, eps) = (self.lr, self.eps);
                let step = exec.zip(&m, &v, 4, move |mv, vv| {
                    lr * (mv / bc1) / ((vv / bc2).sqrt() + eps)
                })?;
                let new_w = exec.zip(w, &step, 1, |wv, sv| wv - sv)?;
                self.state[idx] = Some((m, v));
                Ok(new_w)
            }
        }
    }
}

/// A single-layer trainer with a pluggable optimizer (SGD by default).
///
/// # Example
///
/// ```
/// use granii_gnn::train::Trainer;
/// use granii_gnn::spec::{Composition, LayerConfig, ModelKind};
/// use granii_gnn::{Exec, GraphCtx};
/// use granii_graph::generators;
/// use granii_matrix::device::{DeviceKind, Engine};
/// use granii_matrix::DenseMatrix;
///
/// # fn main() -> Result<(), granii_gnn::GnnError> {
/// let graph = generators::ring(10)?;
/// let ctx = GraphCtx::new(&graph)?;
/// let engine = Engine::modeled(DeviceKind::Cpu);
/// let exec = Exec::real(&engine);
/// let mut trainer = Trainer::new(ModelKind::Gcn, LayerConfig::new(4, 2), 7, 0.05)?;
/// let h = DenseMatrix::random(10, 4, 1.0, 1);
/// let y = DenseMatrix::random(10, 2, 1.0, 2);
/// let comp = Composition::all_for(ModelKind::Gcn)[0];
/// let first = trainer.step(&exec, &ctx, &h, &y, comp)?;
/// let mut last = first;
/// for _ in 0..10 { last = trainer.step(&exec, &ctx, &h, &y, comp)?; }
/// assert!(last < first); // SGD reduces the loss
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Trainer {
    kind: ModelKind,
    cfg: LayerConfig,
    params: Params,
    optimizer: Optimizer,
}

impl Trainer {
    /// Creates an SGD trainer with deterministic random parameters.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidConfig`] for invalid configurations.
    pub fn new(kind: ModelKind, cfg: LayerConfig, seed: u64, lr: f32) -> Result<Self> {
        if lr <= 0.0 {
            return Err(GnnError::InvalidConfig("learning rate must be > 0".into()));
        }
        Self::with_optimizer(kind, cfg, seed, Optimizer::sgd(lr))
    }

    /// Creates a trainer with an explicit optimizer.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidConfig`] for invalid configurations.
    pub fn with_optimizer(
        kind: ModelKind,
        cfg: LayerConfig,
        seed: u64,
        optimizer: Optimizer,
    ) -> Result<Self> {
        cfg.validate()?;
        if optimizer.learning_rate() <= 0.0 {
            return Err(GnnError::InvalidConfig("learning rate must be > 0".into()));
        }
        let scale = (2.0 / (cfg.k_in + cfg.k_out) as f32).sqrt();
        let params = match kind {
            ModelKind::Gcn => Params::Gcn {
                w: DenseMatrix::random(cfg.k_in, cfg.k_out, scale, seed),
            },
            ModelKind::Gin => Params::Gin {
                w1: DenseMatrix::random(cfg.k_in, cfg.k_out, scale, seed),
                w2: DenseMatrix::random(cfg.k_out, cfg.k_out, scale, seed + 1),
            },
            ModelKind::Sgc => Params::Sgc {
                w: DenseMatrix::random(cfg.k_in, cfg.k_out, scale, seed),
            },
            ModelKind::Tagcn => Params::Tagcn {
                ws: (0..=cfg.hops)
                    .map(|k| DenseMatrix::random(cfg.k_in, cfg.k_out, scale, seed + k as u64))
                    .collect(),
            },
            ModelKind::Gat => Params::Gat {
                w: DenseMatrix::random(cfg.k_in, cfg.k_out, scale, seed),
                a_l: DenseMatrix::random(cfg.k_out, 1, scale, seed + 1),
                a_r: DenseMatrix::random(cfg.k_out, 1, scale, seed + 2),
            },
            ModelKind::Sage => Params::Sage {
                w_self: DenseMatrix::random(cfg.k_in, cfg.k_out, scale, seed),
                w_neigh: DenseMatrix::random(cfg.k_in, cfg.k_out, scale, seed + 1),
            },
        };
        Ok(Self {
            kind,
            cfg,
            params,
            optimizer,
        })
    }

    /// The model kind being trained.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// One training step (forward under `comp`, MSE loss, backward, SGD).
    /// Returns the loss before the update.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidConfig`] if `comp` belongs to another model,
    /// and propagates kernel errors.
    pub fn step(
        &mut self,
        exec: &Exec,
        ctx: &GraphCtx,
        h: &DenseMatrix,
        target: &DenseMatrix,
        comp: Composition,
    ) -> Result<f64> {
        if comp.model() != self.kind {
            return Err(GnnError::InvalidConfig(format!(
                "composition {comp} does not belong to model {}",
                self.kind
            )));
        }
        crate::models::check_input(ctx, h, self.cfg)?;
        let _span = granii_telemetry::span!(
            "train.step",
            model = self.kind.name(),
            nodes = ctx.graph().num_nodes(),
            k_in = self.cfg.k_in,
            k_out = self.cfg.k_out,
        );
        granii_telemetry::counter_add("train.steps", 1);
        let mut tape = Tape::new(*exec);
        let (pred, param_vars) = self.build_forward(&mut tape, ctx, h, comp)?;
        let (loss, grads) = tape.backward_mse(pred, target)?;

        // Parameter updates via the configured optimizer, charged like any
        // other element-wise primitives.
        self.optimizer.begin_step(param_vars.len());
        let mut updated = Vec::with_capacity(param_vars.len());
        for (idx, &v) in param_vars.iter().enumerate() {
            let g = grads
                .dense(v)
                .ok_or_else(|| GnnError::InvalidConfig("missing parameter gradient".into()))?;
            let w = tape.value(v)?;
            updated.push(self.optimizer.update(exec, idx, w, g)?);
        }
        self.store_params(updated);
        Ok(loss)
    }

    /// Builds the forward tape for `comp`; returns the prediction var and the
    /// parameter vars in declaration order.
    fn build_forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphCtx,
        h: &DenseMatrix,
        comp: Composition,
    ) -> Result<(Var, Vec<Var>)> {
        let irr = ctx.irregularity();
        let adj = Arc::new(ctx.adj().clone());
        let raw_adj = Arc::new(ctx.graph().adj().clone());
        let d = Arc::new(ctx.deg_inv_sqrt().to_vec());
        // The layer input carries gradients (in a multi-layer network every
        // layer input except the first is an intermediate), so the backward
        // pass propagates through the aggregation regardless of operator
        // order — matching framework behavior. It is not SGD-updated.
        let hv = tape.param(h.clone());

        // Normalized propagation step shared by the GCN family. The dynamic
        // strategy differentiates through broadcasts; the precompute strategy
        // aggregates over the pre-scaled adjacency (built once outside the
        // per-iteration tape, mirroring `models::Prepared`).
        let norm_adj = |norm: NormStrategy| -> Arc<granii_matrix::CsrMatrix> {
            match norm {
                NormStrategy::Precompute => Arc::new(
                    granii_matrix::ops::scale_csr(Some(&d), ctx.adj(), Some(&d))
                        .expect("degree vectors match"),
                ),
                NormStrategy::Dynamic => adj.clone(),
            }
        };

        match (comp, &self.params) {
            (Composition::Gcn(norm, order), Params::Gcn { w }) => {
                let wv = tape.param(w.clone());
                let prop = |tape: &mut Tape, x: Var| -> Result<Var> {
                    match norm {
                        NormStrategy::Dynamic => {
                            let t = tape.row_broadcast(d.clone(), x)?;
                            let t = tape.spmm(adj.clone(), t, ctx.sum_semiring(), irr)?;
                            tape.row_broadcast(d.clone(), t)
                        }
                        NormStrategy::Precompute => {
                            tape.spmm(norm_adj(norm), x, Semiring::plus_mul(), irr)
                        }
                    }
                };
                let z = match order {
                    OpOrder::AggregateFirst => {
                        let a = prop(tape, hv)?;
                        tape.gemm(a, wv)?
                    }
                    OpOrder::UpdateFirst => {
                        let u = tape.gemm(hv, wv)?;
                        prop(tape, u)?
                    }
                };
                let out = tape.relu(z)?;
                Ok((out, vec![wv]))
            }
            (Composition::Gin(order), Params::Gin { w1, w2 }) => {
                let w1v = tape.param(w1.clone());
                let w2v = tape.param(w2.clone());
                let hidden = match order {
                    OpOrder::AggregateFirst => {
                        let agg = tape.spmm(raw_adj, hv, ctx.raw_sum_semiring(), irr)?;
                        let selfed = tape.scale(hv, 1.0 + GIN_EPS)?;
                        let sum = tape.add(selfed, agg)?;
                        tape.gemm(sum, w1v)?
                    }
                    OpOrder::UpdateFirst => {
                        let z = tape.gemm(hv, w1v)?;
                        let agg = tape.spmm(raw_adj, z, ctx.raw_sum_semiring(), irr)?;
                        let selfed = tape.scale(z, 1.0 + GIN_EPS)?;
                        tape.add(selfed, agg)?
                    }
                };
                let r = tape.relu(hidden)?;
                let out = tape.gemm(r, w2v)?;
                Ok((out, vec![w1v, w2v]))
            }
            (Composition::Sgc(norm, order), Params::Sgc { w }) => {
                let wv = tape.param(w.clone());
                let nadj = norm_adj(norm);
                let prop = |tape: &mut Tape, mut x: Var| -> Result<Var> {
                    for _ in 0..self.cfg.hops {
                        x = match norm {
                            NormStrategy::Dynamic => {
                                let t = tape.row_broadcast(d.clone(), x)?;
                                let t = tape.spmm(adj.clone(), t, ctx.sum_semiring(), irr)?;
                                tape.row_broadcast(d.clone(), t)?
                            }
                            NormStrategy::Precompute => {
                                tape.spmm(nadj.clone(), x, Semiring::plus_mul(), irr)?
                            }
                        };
                    }
                    Ok(x)
                };
                let out = match order {
                    OpOrder::AggregateFirst => {
                        let a = prop(tape, hv)?;
                        tape.gemm(a, wv)?
                    }
                    OpOrder::UpdateFirst => {
                        let u = tape.gemm(hv, wv)?;
                        prop(tape, u)?
                    }
                };
                Ok((out, vec![wv]))
            }
            (Composition::Tagcn(norm, order), Params::Tagcn { ws }) => {
                let wvs: Vec<Var> = ws.iter().map(|w| tape.param(w.clone())).collect();
                let nadj = norm_adj(norm);
                let hop = |tape: &mut Tape, x: Var| -> Result<Var> {
                    match norm {
                        NormStrategy::Dynamic => {
                            let t = tape.row_broadcast(d.clone(), x)?;
                            let t = tape.spmm(adj.clone(), t, ctx.sum_semiring(), irr)?;
                            tape.row_broadcast(d.clone(), t)
                        }
                        NormStrategy::Precompute => {
                            tape.spmm(nadj.clone(), x, Semiring::plus_mul(), irr)
                        }
                    }
                };
                let z = match order {
                    OpOrder::AggregateFirst => {
                        let mut acc = tape.gemm(hv, wvs[0])?;
                        let mut x = hv;
                        for wv in &wvs[1..] {
                            x = hop(tape, x)?;
                            let term = tape.gemm(x, *wv)?;
                            acc = tape.add(acc, term)?;
                        }
                        acc
                    }
                    OpOrder::UpdateFirst => {
                        let mut acc = tape.gemm(hv, wvs[self.cfg.hops])?;
                        for k in (0..self.cfg.hops).rev() {
                            let prop = hop(tape, acc)?;
                            let term = tape.gemm(hv, wvs[k])?;
                            acc = tape.add(prop, term)?;
                        }
                        acc
                    }
                };
                let out = tape.relu(z)?;
                Ok((out, wvs))
            }
            (Composition::Gat(strategy), Params::Gat { w, a_l, a_r }) => {
                let wv = tape.param(w.clone());
                let alv = tape.param(a_l.clone());
                let arv = tape.param(a_r.clone());
                let theta = tape.gemm(hv, wv)?;
                let ul = tape.gemm(theta, alv)?;
                let vr = tape.gemm(theta, arv)?;
                let logits = tape.sddmm_u_add_v(adj.clone(), ul, vr, irr)?;
                let scored = tape.sparse_leaky_relu(logits, crate::models::GAT_SLOPE)?;
                let alpha = tape.edge_softmax(scored, irr)?;
                let z = match strategy {
                    GatStrategy::Reuse => tape.spmm_var(alpha, theta, irr)?,
                    GatStrategy::Recompute => {
                        let agg = tape.spmm_var(alpha, hv, irr)?;
                        tape.gemm(agg, wv)?
                    }
                };
                let out = tape.relu(z)?;
                Ok((out, vec![wv, alv, arv]))
            }
            (Composition::Sage(order), Params::Sage { w_self, w_neigh }) => {
                let wsv = tape.param(w_self.clone());
                let wnv = tape.param(w_neigh.clone());
                let self_term = tape.gemm(hv, wsv)?;
                let neigh = match order {
                    OpOrder::AggregateFirst => {
                        let agg = tape.spmm(raw_adj, hv, Semiring::mean_copy_rhs(), irr)?;
                        tape.gemm(agg, wnv)?
                    }
                    OpOrder::UpdateFirst => {
                        let z = tape.gemm(hv, wnv)?;
                        tape.spmm(raw_adj, z, Semiring::mean_copy_rhs(), irr)?
                    }
                };
                let sum = tape.add(self_term, neigh)?;
                let out = tape.relu(sum)?;
                Ok((out, vec![wsv, wnv]))
            }
            _ => unreachable!("composition/kind pairing validated in step()"),
        }
    }

    fn store_params(&mut self, updated: Vec<DenseMatrix>) {
        let mut it = updated.into_iter();
        match &mut self.params {
            Params::Gcn { w } | Params::Sgc { w } => *w = it.next().expect("one param"),
            Params::Gin { w1, w2 } => {
                *w1 = it.next().expect("w1");
                *w2 = it.next().expect("w2");
            }
            Params::Tagcn { ws } => {
                for w in ws.iter_mut() {
                    *w = it.next().expect("per-hop weight");
                }
            }
            Params::Gat { w, a_l, a_r } => {
                *w = it.next().expect("w");
                *a_l = it.next().expect("a_l");
                *a_r = it.next().expect("a_r");
            }
            Params::Sage { w_self, w_neigh } => {
                *w_self = it.next().expect("w_self");
                *w_neigh = it.next().expect("w_neigh");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granii_graph::generators;
    use granii_matrix::device::{DeviceKind, Engine};

    fn setup() -> (GraphCtx, Engine, DenseMatrix, DenseMatrix) {
        let g = generators::power_law(20, 3, 30).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let engine = Engine::modeled(DeviceKind::Cpu);
        let h = DenseMatrix::random(20, 6, 1.0, 31);
        let y = DenseMatrix::random(20, 4, 1.0, 32);
        (ctx, engine, h, y)
    }

    #[test]
    fn training_reduces_loss_for_every_model_and_composition() {
        let (ctx, engine, h, y) = setup();
        let exec = Exec::real(&engine);
        for kind in [
            ModelKind::Gcn,
            ModelKind::Gin,
            ModelKind::Sgc,
            ModelKind::Tagcn,
            ModelKind::Gat,
            ModelKind::Sage,
        ] {
            for comp in Composition::all_for(kind) {
                let mut trainer = Trainer::new(kind, LayerConfig::new(6, 4), 33, 0.05).unwrap();
                let first = trainer.step(&exec, &ctx, &h, &y, comp).unwrap();
                let mut last = first;
                for _ in 0..15 {
                    last = trainer.step(&exec, &ctx, &h, &y, comp).unwrap();
                }
                assert!(last < first, "{comp}: loss {first} -> {last}");
            }
        }
    }

    #[test]
    fn training_charges_more_than_inference() {
        let (ctx, engine, h, y) = setup();
        let exec = Exec::real(&engine);
        let comp = Composition::all_for(ModelKind::Gcn)[0];

        let layer =
            crate::models::GnnLayer::new(ModelKind::Gcn, LayerConfig::new(6, 4), 1).unwrap();
        let p = layer.prepare(&exec, &ctx, comp).unwrap();
        engine.take_profile();
        layer.forward(&exec, &ctx, &p, &h, comp).unwrap();
        let fwd = engine.take_profile().total_seconds();

        let mut trainer = Trainer::new(ModelKind::Gcn, LayerConfig::new(6, 4), 1, 0.01).unwrap();
        trainer.step(&exec, &ctx, &h, &y, comp).unwrap();
        let train = engine.take_profile().total_seconds();
        assert!(train > fwd, "training {train} must exceed inference {fwd}");
    }

    #[test]
    fn wrong_composition_rejected() {
        let (ctx, engine, h, y) = setup();
        let exec = Exec::real(&engine);
        let mut trainer = Trainer::new(ModelKind::Gcn, LayerConfig::new(6, 4), 1, 0.01).unwrap();
        let gat = Composition::all_for(ModelKind::Gat)[0];
        assert!(trainer.step(&exec, &ctx, &h, &y, gat).is_err());
    }

    #[test]
    fn invalid_learning_rate_rejected() {
        assert!(Trainer::new(ModelKind::Gcn, LayerConfig::new(4, 4), 1, 0.0).is_err());
        assert!(Trainer::new(ModelKind::Gcn, LayerConfig::new(4, 4), 1, -1.0).is_err());
        assert!(Trainer::with_optimizer(
            ModelKind::Gcn,
            LayerConfig::new(4, 4),
            1,
            Optimizer::adam(0.0)
        )
        .is_err());
    }

    #[test]
    fn adam_converges_and_differs_from_sgd() {
        let (ctx, engine, h, y) = setup();
        let exec = Exec::real(&engine);
        let comp = Composition::all_for(ModelKind::Gcn)[0];

        let run = |optimizer: Optimizer| {
            let mut t =
                Trainer::with_optimizer(ModelKind::Gcn, LayerConfig::new(6, 4), 33, optimizer)
                    .unwrap();
            let first = t.step(&exec, &ctx, &h, &y, comp).unwrap();
            let mut last = first;
            for _ in 0..20 {
                last = t.step(&exec, &ctx, &h, &y, comp).unwrap();
            }
            (first, last)
        };
        let (s0, s_last) = run(Optimizer::sgd(0.02));
        let (a0, a_last) = run(Optimizer::adam(0.02));
        assert_eq!(s0, a0, "same init, same first loss");
        assert!(s_last < s0, "sgd converges");
        assert!(a_last < a0, "adam converges");
        assert!((s_last - a_last).abs() > 1e-9, "trajectories differ");
    }

    #[test]
    fn adam_charges_more_update_work_than_sgd() {
        let (ctx, engine, h, y) = setup();
        let exec = Exec::real(&engine);
        let comp = Composition::all_for(ModelKind::Gcn)[0];
        let charge = |optimizer: Optimizer| {
            let mut t =
                Trainer::with_optimizer(ModelKind::Gcn, LayerConfig::new(6, 4), 1, optimizer)
                    .unwrap();
            engine.take_profile();
            t.step(&exec, &ctx, &h, &y, comp).unwrap();
            engine.take_profile().entries.len()
        };
        assert!(charge(Optimizer::adam(0.01)) > charge(Optimizer::sgd(0.01)));
    }
}
