//! GNN models, message passing, autodiff, and baseline-system emulation.
//!
//! This crate is the "GNN framework" substrate of the GRANII reproduction. It
//! plays the role WiseGraph and DGL play in the paper:
//!
//! - [`exec::Exec`] routes every primitive invocation through a
//!   [`granii_matrix::device::Engine`] so runs are profiled (measured on CPU,
//!   modeled for the GPU presets), with a *virtual* mode that propagates
//!   shapes/patterns without computing values — how the benchmark harness
//!   sweeps large configuration grids quickly,
//! - [`ctx::GraphCtx`] caches per-graph state (self-loop form, degrees,
//!   normalizers, irregularity),
//! - [`models`] implements **GCN, GIN, SGC, TAGCN, GAT, and GraphSAGE**, each
//!   with every primitive composition the paper's case study describes
//!   (§III: dynamic-normalization vs precompute for GCN, reuse vs recompute
//!   for GAT, update-first vs aggregate-first orderings),
//! - [`autodiff`] is a reverse-mode tape over the same primitives (gradients
//!   of SpMM/SDDMM/softmax are themselves primitive compositions, as in DGL),
//!   used for the training-mode evaluation (§VI-C),
//! - [`system`] emulates the *default* composition choices of DGL and
//!   WiseGraph, including WiseGraph's binning-based normalization whose atomic
//!   contention makes dense graphs pathological (§VI-C1),
//! - [`train`] runs SGD steps over tape-built models.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod autodiff;
pub mod ctx;
mod error;
pub mod exec;
pub mod models;
pub mod spec;
pub mod system;
pub mod train;

pub use ctx::GraphCtx;
pub use error::GnnError;
pub use exec::Exec;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, GnnError>;
