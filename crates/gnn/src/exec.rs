//! The profiled primitive executor.
//!
//! Every primitive a model runs goes through [`Exec`], which (1) validates
//! shapes, (2) builds the [`WorkStats`] record for the invocation, and
//! (3) charges it to the underlying [`Engine`] — measuring wall time or
//! modeling device latency depending on the engine's policy.
//!
//! `Exec` has two value modes:
//!
//! - **real**: kernels compute actual values (correctness tests, examples,
//!   small-scale runs),
//! - **virtual**: kernels are skipped; outputs are zero-filled with the right
//!   shape/pattern. Latency charges are identical (they depend only on shapes
//!   and sparsity structure), which is what lets the evaluation harness sweep
//!   the paper's full configuration grid in seconds.

use granii_matrix::device::{ChargeSummary, Engine};
use granii_matrix::ops::{self, BroadcastOp};
use granii_matrix::{CsrMatrix, DenseMatrix, MatrixError, Semiring, WorkStats};

use crate::Result;

/// Primitive executor bound to a device engine.
#[derive(Debug, Clone, Copy)]
pub struct Exec<'e> {
    engine: &'e Engine,
    compute: bool,
}

impl<'e> Exec<'e> {
    /// An executor that computes real values.
    pub fn real(engine: &'e Engine) -> Self {
        Self {
            engine,
            compute: true,
        }
    }

    /// An executor that only propagates shapes/patterns (zero values) but
    /// charges the same latencies.
    pub fn virtual_only(engine: &'e Engine) -> Self {
        Self {
            engine,
            compute: false,
        }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &'e Engine {
        self.engine
    }

    /// Whether kernels compute real values.
    pub fn computes_values(&self) -> bool {
        self.compute
    }

    /// Marks the current position in the engine's charge log. Pair with
    /// [`Exec::charged_since`] to attribute the kernels a region dispatched
    /// (e.g. one ExecPlan instruction) without draining the profile.
    pub fn profile_mark(&self) -> usize {
        self.engine.profile_len()
    }

    /// Aggregated charges (kernel count, charged/predicted seconds, flops,
    /// bytes) since `mark`, leaving the engine profile intact.
    pub fn charged_since(&self, mark: usize) -> ChargeSummary {
        self.engine.summarize_since(mark)
    }

    /// Dense matrix multiplication.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors.
    pub fn gemm(&self, a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
        let stats = WorkStats::gemm(a.rows(), a.cols(), b.cols());
        if self.compute {
            Ok(self.engine.run(stats, || ops::gemm(a, b))?)
        } else {
            if a.cols() != b.rows() {
                return Err(MatrixError::ShapeMismatch {
                    op: "gemm",
                    lhs: a.shape(),
                    rhs: b.shape(),
                }
                .into());
            }
            self.engine.charge(stats);
            Ok(DenseMatrix::zeros(a.rows(), b.cols())?)
        }
    }

    /// Generalized SpMM; `irregularity` is the adjacency's degree CV.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors.
    pub fn spmm(
        &self,
        adj: &CsrMatrix,
        x: &DenseMatrix,
        semiring: Semiring,
        irregularity: f64,
    ) -> Result<DenseMatrix> {
        let weighted = semiring.mul.reads_edge() && adj.is_weighted();
        let stats = WorkStats::spmm(adj.rows(), adj.nnz(), x.cols(), weighted, irregularity);
        if self.compute {
            Ok(self.engine.run(stats, || ops::spmm(adj, x, semiring))?)
        } else {
            if adj.cols() != x.rows() {
                return Err(MatrixError::ShapeMismatch {
                    op: "spmm",
                    lhs: adj.shape(),
                    rhs: x.shape(),
                }
                .into());
            }
            self.engine.charge(stats);
            Ok(DenseMatrix::zeros(adj.rows(), x.cols())?)
        }
    }

    /// Generalized SDDMM (`mask ∘ (U · Vᵀ)`).
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors.
    pub fn sddmm(
        &self,
        mask: &CsrMatrix,
        u: &DenseMatrix,
        v: &DenseMatrix,
        irregularity: f64,
    ) -> Result<CsrMatrix> {
        let stats = WorkStats::sddmm(mask.rows(), mask.nnz(), u.cols(), irregularity);
        if self.compute {
            Ok(self.engine.run(stats, || ops::sddmm(mask, u, v))?)
        } else {
            if u.cols() != v.cols() || u.rows() != mask.rows() || v.rows() != mask.cols() {
                return Err(MatrixError::ShapeMismatch {
                    op: "sddmm",
                    lhs: u.shape(),
                    rhs: v.shape(),
                }
                .into());
            }
            self.engine.charge(stats);
            Ok(mask
                .clone()
                .drop_values()
                .with_values(vec![0.0; mask.nnz()])?)
        }
    }

    /// SDDMM with `u_add_v` on per-node scalars (GAT logits).
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors.
    pub fn sddmm_u_add_v(
        &self,
        mask: &CsrMatrix,
        ul: &[f32],
        vr: &[f32],
        irregularity: f64,
    ) -> Result<CsrMatrix> {
        let stats = WorkStats::sddmm(mask.rows(), mask.nnz(), 1, irregularity);
        if self.compute {
            Ok(self
                .engine
                .run(stats, || ops::sddmm_u_add_v(mask, ul, vr))?)
        } else {
            if ul.len() != mask.rows() || vr.len() != mask.cols() {
                return Err(MatrixError::ShapeMismatch {
                    op: "sddmm_u_add_v",
                    lhs: mask.shape(),
                    rhs: (ul.len(), vr.len()),
                }
                .into());
            }
            self.engine.charge(stats);
            Ok(mask
                .clone()
                .drop_values()
                .with_values(vec![0.0; mask.nnz()])?)
        }
    }

    /// `diag(dl) · a · diag(dr)` edge scaling, charged as an SDDMM with k = 1
    /// (it is the sampled product of two rank-1 factors).
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors.
    pub fn scale_csr(
        &self,
        dl: Option<&[f32]>,
        a: &CsrMatrix,
        dr: Option<&[f32]>,
        irregularity: f64,
    ) -> Result<CsrMatrix> {
        let stats = WorkStats::sddmm(a.rows(), a.nnz(), 1, irregularity);
        if self.compute {
            Ok(self.engine.run(stats, || ops::scale_csr(dl, a, dr))?)
        } else {
            if dl.is_some_and(|d| d.len() != a.rows()) || dr.is_some_and(|d| d.len() != a.cols()) {
                return Err(MatrixError::ShapeMismatch {
                    op: "scale_csr",
                    lhs: a.shape(),
                    rhs: (dl.map_or(0, <[f32]>::len), dr.map_or(0, <[f32]>::len)),
                }
                .into());
            }
            self.engine.charge(stats);
            Ok(a.clone().drop_values().with_values(vec![0.0; a.nnz()])?)
        }
    }

    /// Row-broadcast (`d[i] ⊙ row i`).
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors.
    pub fn row_broadcast(
        &self,
        d: &[f32],
        m: &DenseMatrix,
        op: BroadcastOp,
    ) -> Result<DenseMatrix> {
        let stats = WorkStats::row_broadcast(m.rows(), m.cols());
        if self.compute {
            Ok(self.engine.run(stats, || ops::row_broadcast(d, m, op))?)
        } else {
            if d.len() != m.rows() {
                return Err(MatrixError::ShapeMismatch {
                    op: "row_broadcast",
                    lhs: (d.len(), 1),
                    rhs: m.shape(),
                }
                .into());
            }
            self.engine.charge(stats);
            Ok(DenseMatrix::zeros(m.rows(), m.cols())?)
        }
    }

    /// Column-broadcast (`d[j] ⊙ column j`).
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors.
    pub fn col_broadcast(
        &self,
        m: &DenseMatrix,
        d: &[f32],
        op: BroadcastOp,
    ) -> Result<DenseMatrix> {
        let stats = WorkStats::col_broadcast(m.rows(), m.cols());
        if self.compute {
            Ok(self.engine.run(stats, || ops::col_broadcast(m, d, op))?)
        } else {
            if d.len() != m.cols() {
                return Err(MatrixError::ShapeMismatch {
                    op: "col_broadcast",
                    lhs: m.shape(),
                    rhs: (d.len(), 1),
                }
                .into());
            }
            self.engine.charge(stats);
            Ok(DenseMatrix::zeros(m.rows(), m.cols())?)
        }
    }

    /// Element-wise map over a dense matrix (ReLU and friends).
    pub fn map(&self, m: &DenseMatrix, flops_per_elem: u32, f: impl Fn(f32) -> f32) -> DenseMatrix {
        let stats = WorkStats::elementwise(m.rows() * m.cols(), flops_per_elem);
        if self.compute {
            self.engine.run(stats, || m.map(f))
        } else {
            self.engine.charge(stats);
            DenseMatrix::zeros(m.rows(), m.cols()).expect("same shape as input")
        }
    }

    /// Element-wise combination of two dense matrices.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn zip(
        &self,
        a: &DenseMatrix,
        b: &DenseMatrix,
        flops_per_elem: u32,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<DenseMatrix> {
        let stats = WorkStats::elementwise(a.rows() * a.cols(), flops_per_elem);
        if self.compute {
            Ok(self.engine.run(stats, || a.zip_with(b, f))?)
        } else {
            if a.shape() != b.shape() {
                return Err(MatrixError::ShapeMismatch {
                    op: "zip_with",
                    lhs: a.shape(),
                    rhs: b.shape(),
                }
                .into());
            }
            self.engine.charge(stats);
            Ok(DenseMatrix::zeros(a.rows(), a.cols())?)
        }
    }

    /// Element-wise map over sparse values (leaky-ReLU on attention logits).
    ///
    /// # Errors
    ///
    /// Returns an error if the matrix is unweighted.
    pub fn map_csr_values(&self, a: &CsrMatrix, f: impl Fn(f32) -> f32) -> Result<CsrMatrix> {
        let stats = WorkStats::elementwise(a.nnz(), 1);
        let vals = a
            .values()
            .ok_or(MatrixError::MissingValues("map_csr_values"))?;
        if self.compute {
            let out = self
                .engine
                .run(stats, || vals.iter().map(|&v| f(v)).collect::<Vec<_>>());
            Ok(a.clone().drop_values().with_values(out)?)
        } else {
            self.engine.charge(stats);
            Ok(a.clone().drop_values().with_values(vec![0.0; a.nnz()])?)
        }
    }

    /// Edge softmax (attention normalization).
    ///
    /// # Errors
    ///
    /// Returns an error if the matrix is unweighted.
    pub fn edge_softmax(&self, a: &CsrMatrix, irregularity: f64) -> Result<CsrMatrix> {
        let stats = WorkStats::edge_softmax(a.rows(), a.nnz(), irregularity);
        if self.compute {
            Ok(self.engine.run(stats, || ops::edge_softmax(a))?)
        } else {
            if !a.is_weighted() {
                return Err(MatrixError::MissingValues("edge_softmax").into());
            }
            self.engine.charge(stats);
            Ok(a.clone().drop_values().with_values(vec![0.0; a.nnz()])?)
        }
    }

    /// Degree computation by scatter-add binning (WiseGraph's normalization
    /// path; pays atomic contention on dense graphs).
    pub fn degrees_by_binning(&self, a: &CsrMatrix) -> Vec<f32> {
        let stats = WorkStats::binning(a.nnz(), a.cols());
        if self.compute {
            self.engine.run(stats, || ops::degrees_by_binning(a))
        } else {
            self.engine.charge(stats);
            vec![0.0; a.cols()]
        }
    }

    /// Degree computation by a row-pointer scan (the cheap path), charged as
    /// an element-wise pass over the rows.
    pub fn degrees_by_scan(&self, a: &CsrMatrix) -> Vec<f32> {
        let stats = WorkStats::elementwise(a.rows(), 1);
        self.engine.run(stats, || a.out_degrees())
    }

    // ------------------------------------------------------------------
    // `_into` variants: identical latency charges, but results land in
    // caller-provided (workspace-recycled) buffers. These are the kernels the
    // compile-once execution engine drives in steady state — no allocation,
    // no clone, bitwise-equal outputs.
    // ------------------------------------------------------------------

    /// [`Exec::gemm`] writing into `out`; same charge, no allocation.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors (including a mis-shaped `out`).
    pub fn gemm_into(&self, a: &DenseMatrix, b: &DenseMatrix, out: &mut DenseMatrix) -> Result<()> {
        let stats = WorkStats::gemm(a.rows(), a.cols(), b.cols());
        if self.compute {
            self.engine.run(stats, || ops::gemm_into(a, b, out))?;
        } else {
            if a.cols() != b.rows() {
                return Err(MatrixError::ShapeMismatch {
                    op: "gemm",
                    lhs: a.shape(),
                    rhs: b.shape(),
                }
                .into());
            }
            check_dense_out("gemm_into", (a.rows(), b.cols()), out)?;
            self.engine.charge(stats);
            out.as_mut_slice().fill(0.0);
        }
        Ok(())
    }

    /// [`Exec::spmm`] writing into `out`; same charge, no allocation.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors (including a mis-shaped `out`).
    pub fn spmm_into(
        &self,
        adj: &CsrMatrix,
        x: &DenseMatrix,
        semiring: Semiring,
        irregularity: f64,
        out: &mut DenseMatrix,
    ) -> Result<()> {
        let weighted = semiring.mul.reads_edge() && adj.is_weighted();
        let stats = WorkStats::spmm(adj.rows(), adj.nnz(), x.cols(), weighted, irregularity);
        if self.compute {
            self.engine
                .run(stats, || ops::spmm_into(adj, x, semiring, out))?;
        } else {
            if adj.cols() != x.rows() {
                return Err(MatrixError::ShapeMismatch {
                    op: "spmm",
                    lhs: adj.shape(),
                    rhs: x.shape(),
                }
                .into());
            }
            check_dense_out("spmm_into", (adj.rows(), x.cols()), out)?;
            self.engine.charge(stats);
            out.as_mut_slice().fill(0.0);
        }
        Ok(())
    }

    /// [`Exec::sddmm`] writing into `out`; same charge, no allocation.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors (including a mismatched `out` pattern).
    pub fn sddmm_into(
        &self,
        mask: &CsrMatrix,
        u: &DenseMatrix,
        v: &DenseMatrix,
        irregularity: f64,
        out: &mut CsrMatrix,
    ) -> Result<()> {
        let stats = WorkStats::sddmm(mask.rows(), mask.nnz(), u.cols(), irregularity);
        if self.compute {
            self.engine
                .run(stats, || ops::sddmm_into(mask, u, v, out))?;
        } else {
            if u.cols() != v.cols() || u.rows() != mask.rows() || v.rows() != mask.cols() {
                return Err(MatrixError::ShapeMismatch {
                    op: "sddmm",
                    lhs: u.shape(),
                    rhs: v.shape(),
                }
                .into());
            }
            check_csr_out("sddmm_into", mask, out)?;
            self.engine.charge(stats);
            zero_csr(out);
        }
        Ok(())
    }

    /// [`Exec::sddmm_u_add_v`] writing into `out`; same charge, no allocation.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors (including a mismatched `out` pattern).
    pub fn sddmm_u_add_v_into(
        &self,
        mask: &CsrMatrix,
        ul: &[f32],
        vr: &[f32],
        irregularity: f64,
        out: &mut CsrMatrix,
    ) -> Result<()> {
        let stats = WorkStats::sddmm(mask.rows(), mask.nnz(), 1, irregularity);
        if self.compute {
            self.engine
                .run(stats, || ops::sddmm_u_add_v_into(mask, ul, vr, out))?;
        } else {
            if ul.len() != mask.rows() || vr.len() != mask.cols() {
                return Err(MatrixError::ShapeMismatch {
                    op: "sddmm_u_add_v",
                    lhs: mask.shape(),
                    rhs: (ul.len(), vr.len()),
                }
                .into());
            }
            check_csr_out("sddmm_u_add_v_into", mask, out)?;
            self.engine.charge(stats);
            zero_csr(out);
        }
        Ok(())
    }

    /// [`Exec::scale_csr`] writing into `out`; same charge, no allocation.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors (including a mismatched `out` pattern).
    pub fn scale_csr_into(
        &self,
        dl: Option<&[f32]>,
        a: &CsrMatrix,
        dr: Option<&[f32]>,
        irregularity: f64,
        out: &mut CsrMatrix,
    ) -> Result<()> {
        let stats = WorkStats::sddmm(a.rows(), a.nnz(), 1, irregularity);
        if self.compute {
            self.engine
                .run(stats, || ops::scale_csr_into(dl, a, dr, out))?;
        } else {
            if dl.is_some_and(|d| d.len() != a.rows()) || dr.is_some_and(|d| d.len() != a.cols()) {
                return Err(MatrixError::ShapeMismatch {
                    op: "scale_csr",
                    lhs: a.shape(),
                    rhs: (dl.map_or(0, <[f32]>::len), dr.map_or(0, <[f32]>::len)),
                }
                .into());
            }
            check_csr_out("scale_csr_into", a, out)?;
            self.engine.charge(stats);
            zero_csr(out);
        }
        Ok(())
    }

    /// [`Exec::row_broadcast`] writing into `out`; same charge, no allocation.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors (including a mis-shaped `out`).
    pub fn row_broadcast_into(
        &self,
        d: &[f32],
        m: &DenseMatrix,
        op: BroadcastOp,
        out: &mut DenseMatrix,
    ) -> Result<()> {
        let stats = WorkStats::row_broadcast(m.rows(), m.cols());
        if self.compute {
            self.engine
                .run(stats, || ops::row_broadcast_into(d, m, op, out))?;
        } else {
            if d.len() != m.rows() {
                return Err(MatrixError::ShapeMismatch {
                    op: "row_broadcast",
                    lhs: (d.len(), 1),
                    rhs: m.shape(),
                }
                .into());
            }
            check_dense_out("row_broadcast_into", m.shape(), out)?;
            self.engine.charge(stats);
            out.as_mut_slice().fill(0.0);
        }
        Ok(())
    }

    /// [`Exec::col_broadcast`] writing into `out`; same charge, no allocation.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors (including a mis-shaped `out`).
    pub fn col_broadcast_into(
        &self,
        m: &DenseMatrix,
        d: &[f32],
        op: BroadcastOp,
        out: &mut DenseMatrix,
    ) -> Result<()> {
        let stats = WorkStats::col_broadcast(m.rows(), m.cols());
        if self.compute {
            self.engine
                .run(stats, || ops::col_broadcast_into(m, d, op, out))?;
        } else {
            if d.len() != m.cols() {
                return Err(MatrixError::ShapeMismatch {
                    op: "col_broadcast",
                    lhs: m.shape(),
                    rhs: (d.len(), 1),
                }
                .into());
            }
            check_dense_out("col_broadcast_into", m.shape(), out)?;
            self.engine.charge(stats);
            out.as_mut_slice().fill(0.0);
        }
        Ok(())
    }

    /// [`Exec::edge_softmax`] writing into `out`; same charge, no allocation.
    ///
    /// # Errors
    ///
    /// Returns an error if `a` is unweighted or `out`'s pattern mismatches.
    pub fn edge_softmax_into(
        &self,
        a: &CsrMatrix,
        irregularity: f64,
        out: &mut CsrMatrix,
    ) -> Result<()> {
        let stats = WorkStats::edge_softmax(a.rows(), a.nnz(), irregularity);
        if self.compute {
            self.engine.run(stats, || ops::edge_softmax_into(a, out))?;
        } else {
            if !a.is_weighted() {
                return Err(MatrixError::MissingValues("edge_softmax").into());
            }
            check_csr_out("edge_softmax_into", a, out)?;
            self.engine.charge(stats);
            zero_csr(out);
        }
        Ok(())
    }

    /// [`Exec::map`] writing into `out`; same charge, no allocation.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `out` does not match `m`'s shape.
    pub fn map_into(
        &self,
        m: &DenseMatrix,
        flops_per_elem: u32,
        f: impl Fn(f32) -> f32,
        out: &mut DenseMatrix,
    ) -> Result<()> {
        check_dense_out("map_into", m.shape(), out)?;
        let stats = WorkStats::elementwise(m.rows() * m.cols(), flops_per_elem);
        if self.compute {
            self.engine.run(stats, || {
                for (o, &v) in out.as_mut_slice().iter_mut().zip(m.as_slice()) {
                    *o = f(v);
                }
            });
        } else {
            self.engine.charge(stats);
            out.as_mut_slice().fill(0.0);
        }
        Ok(())
    }

    /// [`Exec::map`] applied in place (`m = f(m)` element-wise); same charge.
    pub fn map_assign(&self, m: &mut DenseMatrix, flops_per_elem: u32, f: impl Fn(f32) -> f32) {
        let stats = WorkStats::elementwise(m.rows() * m.cols(), flops_per_elem);
        if self.compute {
            self.engine.run(stats, || m.map_inplace(f));
        } else {
            self.engine.charge(stats);
            m.as_mut_slice().fill(0.0);
        }
    }

    /// [`Exec::zip`] writing into `out`; same charge, no allocation.
    ///
    /// # Errors
    ///
    /// Propagates shape errors (including a mis-shaped `out`).
    pub fn zip_into(
        &self,
        a: &DenseMatrix,
        b: &DenseMatrix,
        flops_per_elem: u32,
        f: impl Fn(f32, f32) -> f32,
        out: &mut DenseMatrix,
    ) -> Result<()> {
        if a.shape() != b.shape() {
            return Err(MatrixError::ShapeMismatch {
                op: "zip_with",
                lhs: a.shape(),
                rhs: b.shape(),
            }
            .into());
        }
        check_dense_out("zip_into", a.shape(), out)?;
        let stats = WorkStats::elementwise(a.rows() * a.cols(), flops_per_elem);
        if self.compute {
            self.engine.run(stats, || {
                for ((o, &x), &y) in out
                    .as_mut_slice()
                    .iter_mut()
                    .zip(a.as_slice())
                    .zip(b.as_slice())
                {
                    *o = f(x, y);
                }
            });
        } else {
            self.engine.charge(stats);
            out.as_mut_slice().fill(0.0);
        }
        Ok(())
    }

    /// [`Exec::zip`] applied in place (`acc = f(acc, b)` element-wise); same
    /// charge, no allocation.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn zip_assign(
        &self,
        acc: &mut DenseMatrix,
        b: &DenseMatrix,
        flops_per_elem: u32,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<()> {
        if acc.shape() != b.shape() {
            return Err(MatrixError::ShapeMismatch {
                op: "zip_with",
                lhs: acc.shape(),
                rhs: b.shape(),
            }
            .into());
        }
        let stats = WorkStats::elementwise(acc.rows() * acc.cols(), flops_per_elem);
        if self.compute {
            self.engine.run(stats, || {
                for (o, &y) in acc.as_mut_slice().iter_mut().zip(b.as_slice()) {
                    *o = f(*o, y);
                }
            });
        } else {
            self.engine.charge(stats);
            acc.as_mut_slice().fill(0.0);
        }
        Ok(())
    }

    /// [`Exec::map_csr_values`] applied in place over `a`'s stored values;
    /// same charge, no allocation.
    ///
    /// # Errors
    ///
    /// Returns an error if the matrix is unweighted.
    pub fn map_csr_assign(&self, a: &mut CsrMatrix, f: impl Fn(f32) -> f32) -> Result<()> {
        let stats = WorkStats::elementwise(a.nnz(), 1);
        let vals = a
            .values_mut()
            .ok_or(MatrixError::MissingValues("map_csr_values"))?;
        if self.compute {
            self.engine.run(stats, || {
                for v in vals.iter_mut() {
                    *v = f(*v);
                }
            });
        } else {
            self.engine.charge(stats);
            vals.fill(0.0);
        }
        Ok(())
    }

    // --- Batched (multi-RHS) variants -----------------------------------
    //
    // One kernel invocation serves `batch` column-stacked requests. The
    // charge contract is "unchanged per-column semantics": the stacked
    // kernel runs under the *single-request* WorkStats, then the same stats
    // are charged `batch - 1` more times — so the total charge equals
    // exactly `batch` serial executions and a per-request share (total /
    // batch) is bitwise the serial per-request charge on the modeled
    // engine.

    /// Charges the single-request `stats` for the `batch - 1` stacked
    /// requests that rode along with the one the kernel ran under.
    fn charge_followers(&self, stats: WorkStats, batch: usize) {
        for _ in 1..batch {
            self.engine.charge(stats);
        }
    }

    /// Batched [`Exec::gemm_into`]: per block `t < batch`,
    /// `out[:, t·k2..) = a[:, t·k1..) · b` (shared `b`), charged as `batch`
    /// serial GEMMs.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors (including narrow buffers).
    pub fn gemm_rhs_blocks_into(
        &self,
        a: &DenseMatrix,
        b: &DenseMatrix,
        batch: usize,
        out: &mut DenseMatrix,
    ) -> Result<()> {
        let stats = WorkStats::gemm(a.rows(), b.rows(), b.cols());
        if self.compute {
            self.engine
                .run(stats, || ops::gemm_rhs_blocks_into(a, b, batch, out))?;
        } else {
            self.engine.charge(stats);
        }
        self.charge_followers(stats, batch);
        Ok(())
    }

    /// Batched [`Exec::spmm_into`]: one adjacency pass over the leading
    /// `batch · k` columns, charged as `batch` serial `k`-column SpMMs.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors (including narrow buffers).
    #[allow(clippy::too_many_arguments)]
    pub fn spmm_cols_into(
        &self,
        adj: &CsrMatrix,
        x: &DenseMatrix,
        block_cols: usize,
        batch: usize,
        semiring: Semiring,
        irregularity: f64,
        out: &mut DenseMatrix,
    ) -> Result<()> {
        let weighted = semiring.mul.reads_edge() && adj.is_weighted();
        let stats = WorkStats::spmm(adj.rows(), adj.nnz(), block_cols, weighted, irregularity);
        if self.compute {
            self.engine.run(stats, || {
                ops::spmm_cols_into(adj, x, batch * block_cols, semiring, out)
            })?;
        } else {
            self.engine.charge(stats);
        }
        self.charge_followers(stats, batch);
        Ok(())
    }

    /// Batched [`Exec::row_broadcast_into`] over the leading `batch ·
    /// block_cols` columns, charged as `batch` serial broadcasts.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors (including narrow buffers).
    pub fn row_broadcast_cols_into(
        &self,
        d: &[f32],
        m: &DenseMatrix,
        block_cols: usize,
        batch: usize,
        op: BroadcastOp,
        out: &mut DenseMatrix,
    ) -> Result<()> {
        let stats = WorkStats::row_broadcast(m.rows(), block_cols);
        if self.compute {
            self.engine.run(stats, || {
                ops::row_broadcast_cols_into(d, m, batch * block_cols, op, out)
            })?;
        } else {
            self.engine.charge(stats);
        }
        self.charge_followers(stats, batch);
        Ok(())
    }

    /// Batched [`Exec::col_broadcast_into`]: applies the shared per-column
    /// vector `d` to each of the `batch` blocks, charged as `batch` serial
    /// broadcasts.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors (including narrow buffers).
    pub fn col_broadcast_blocks_into(
        &self,
        m: &DenseMatrix,
        d: &[f32],
        batch: usize,
        op: BroadcastOp,
        out: &mut DenseMatrix,
    ) -> Result<()> {
        let stats = WorkStats::col_broadcast(m.rows(), d.len());
        if self.compute {
            self.engine.run(stats, || {
                ops::col_broadcast_blocks_into(m, d, batch, op, out)
            })?;
        } else {
            self.engine.charge(stats);
        }
        self.charge_followers(stats, batch);
        Ok(())
    }

    /// Batched [`Exec::map_into`] over the leading `batch · block_cols`
    /// columns, charged as `batch` serial maps.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors (including narrow buffers).
    pub fn map_cols_into(
        &self,
        m: &DenseMatrix,
        block_cols: usize,
        batch: usize,
        flops_per_elem: u32,
        f: impl Fn(f32) -> f32 + Sync,
        out: &mut DenseMatrix,
    ) -> Result<()> {
        let stats = WorkStats::elementwise(m.rows() * block_cols, flops_per_elem);
        if self.compute {
            self.engine
                .run(stats, || ops::map_cols_into(m, batch * block_cols, f, out))?;
        } else {
            self.engine.charge(stats);
        }
        self.charge_followers(stats, batch);
        Ok(())
    }

    /// Batched [`Exec::zip_assign`] over the leading `batch · block_cols`
    /// columns, charged as `batch` serial accumulations.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors (including narrow buffers).
    pub fn zip_cols_assign(
        &self,
        acc: &mut DenseMatrix,
        b: &DenseMatrix,
        block_cols: usize,
        batch: usize,
        flops_per_elem: u32,
        f: impl Fn(f32, f32) -> f32 + Sync,
    ) -> Result<()> {
        let stats = WorkStats::elementwise(acc.rows() * block_cols, flops_per_elem);
        if self.compute {
            self.engine.run(stats, || {
                ops::zip_cols_assign(acc, b, batch * block_cols, f)
            })?;
        } else {
            self.engine.charge(stats);
        }
        self.charge_followers(stats, batch);
        Ok(())
    }
}

/// Validates a dense output buffer's shape for the virtual-mode `_into` paths
/// (real mode validates inside the kernel).
fn check_dense_out(
    op: &'static str,
    want: (usize, usize),
    out: &DenseMatrix,
) -> std::result::Result<(), MatrixError> {
    if out.shape() != want {
        return Err(MatrixError::ShapeMismatch {
            op,
            lhs: want,
            rhs: out.shape(),
        });
    }
    Ok(())
}

/// Validates a CSR output buffer against the pattern source for the
/// virtual-mode `_into` paths.
fn check_csr_out(
    op: &'static str,
    pattern: &CsrMatrix,
    out: &CsrMatrix,
) -> std::result::Result<(), MatrixError> {
    if out.shape() != pattern.shape() || out.nnz() != pattern.nnz() {
        return Err(MatrixError::ShapeMismatch {
            op,
            lhs: pattern.shape(),
            rhs: out.shape(),
        });
    }
    if !out.is_weighted() {
        return Err(MatrixError::MissingValues(op));
    }
    Ok(())
}

/// Zero-fills a weighted CSR's values (virtual-mode output).
fn zero_csr(out: &mut CsrMatrix) {
    if let Some(vals) = out.values_mut() {
        vals.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granii_matrix::device::{DeviceKind, Engine};
    use granii_matrix::CooMatrix;

    fn adj() -> CsrMatrix {
        CooMatrix::from_entries(3, 3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])
            .unwrap()
            .to_csr()
    }

    #[test]
    fn real_and_virtual_charge_identical_stats() {
        let e1 = Engine::modeled(DeviceKind::H100);
        let e2 = Engine::modeled(DeviceKind::H100);
        let a = adj();
        let x = DenseMatrix::random(3, 4, 1.0, 1);
        let w = DenseMatrix::random(4, 2, 1.0, 2);

        let run = |exec: Exec| {
            let agg = exec.spmm(&a, &x, Semiring::plus_mul(), 0.0).unwrap();
            let up = exec.gemm(&agg, &w).unwrap();
            exec.map(&up, 1, |v| v.max(0.0))
        };
        let real_out = run(Exec::real(&e1));
        let virt_out = run(Exec::virtual_only(&e2));

        assert_eq!(real_out.shape(), virt_out.shape());
        let p1 = e1.take_profile();
        let p2 = e2.take_profile();
        assert_eq!(p1.entries.len(), p2.entries.len());
        for (a, b) in p1.entries.iter().zip(&p2.entries) {
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.seconds, b.seconds);
        }
    }

    #[test]
    fn virtual_mode_still_validates_shapes() {
        let e = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::virtual_only(&e);
        let a = DenseMatrix::zeros(2, 3).unwrap();
        let b = DenseMatrix::zeros(4, 2).unwrap();
        assert!(exec.gemm(&a, &b).is_err());
        assert!(exec.spmm(&adj(), &b, Semiring::plus_mul(), 0.0).is_err());
        assert!(exec.row_broadcast(&[1.0], &a, BroadcastOp::Mul).is_err());
    }

    #[test]
    fn unweighted_spmm_charged_as_unweighted() {
        use granii_matrix::PrimitiveKind;
        let e = Engine::modeled(DeviceKind::H100);
        let exec = Exec::virtual_only(&e);
        let x = DenseMatrix::zeros(3, 4).unwrap();
        let unweighted = adj().drop_values();
        exec.spmm(&unweighted, &x, Semiring::plus_copy_rhs(), 0.0)
            .unwrap();
        exec.spmm(&adj(), &x, Semiring::plus_mul(), 0.0).unwrap();
        let p = e.take_profile();
        assert_eq!(p.entries[0].kind, PrimitiveKind::SpmmUnweighted);
        assert_eq!(p.entries[1].kind, PrimitiveKind::SpmmWeighted);
    }

    #[test]
    fn binning_is_costlier_than_scan_on_dense_inputs() {
        let e = Engine::modeled(DeviceKind::A100);
        let exec = Exec::virtual_only(&e);
        let dense_adj = granii_graph::generators::mycielskian(10).unwrap();
        exec.degrees_by_scan(dense_adj.adj());
        let scan_time = e.take_profile().total_seconds();
        exec.degrees_by_binning(dense_adj.adj());
        let bin_time = e.take_profile().total_seconds();
        assert!(
            bin_time > 10.0 * scan_time,
            "binning {bin_time} vs scan {scan_time}"
        );
    }
}
