//! Topology-Adaptive Graph Convolutional Network (Du et al.).
//!
//! `H' = σ( Σ_{k=0}^{K} Ñ^k · H · W_k )` with per-hop weight matrices. The
//! aggregate-first composition propagates at input width `K1` and pays one
//! GEMM per hop; the update-first composition uses a Horner-style evaluation
//! `Ñ·(…Ñ·(H·W_K) + H·W_{K-1}…) + H·W_0` that propagates at output width `K2`
//! — cheaper exactly when `K2 < K1`.

use granii_matrix::ops::BroadcastOp;
use granii_matrix::{DenseMatrix, Semiring, Workspace};

use crate::models::Prepared;
use crate::spec::{LayerConfig, NormStrategy, OpOrder};
use crate::{Exec, GraphCtx, Result};

/// A single TAGCN layer with `cfg.hops + 1` weight matrices.
#[derive(Debug, Clone)]
pub struct Tagcn {
    cfg: LayerConfig,
    ws: Vec<DenseMatrix>,
}

impl Tagcn {
    /// Creates a layer with deterministic random per-hop weights.
    pub fn new(cfg: LayerConfig, seed: u64) -> Self {
        let scale = (2.0 / (cfg.k_in + cfg.k_out) as f32).sqrt();
        let ws = (0..=cfg.hops)
            .map(|k| DenseMatrix::random(cfg.k_in, cfg.k_out, scale, seed + k as u64))
            .collect();
        Self { cfg, ws }
    }

    /// Layer configuration.
    pub fn config(&self) -> LayerConfig {
        self.cfg
    }

    /// One-time preprocessing (precompute strategy builds `Ñ`).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn prepare(&self, exec: &Exec, ctx: &GraphCtx, norm: NormStrategy) -> Result<Prepared> {
        match norm {
            NormStrategy::Dynamic => Ok(Prepared::default()),
            NormStrategy::Precompute => {
                let d = ctx.deg_inv_sqrt();
                let norm_adj = exec.scale_csr(Some(d), ctx.adj(), Some(d), ctx.irregularity())?;
                Ok(Prepared {
                    norm_adj: Some(norm_adj),
                })
            }
        }
    }

    /// One `Ñ · x` propagation step into a workspace buffer.
    fn hop_ws(
        &self,
        exec: &Exec,
        ctx: &GraphCtx,
        prepared: &Prepared,
        norm: NormStrategy,
        x: &DenseMatrix,
        ws: &mut Workspace,
    ) -> Result<DenseMatrix> {
        let n = x.rows();
        match norm {
            NormStrategy::Dynamic => {
                let d = ctx.deg_inv_sqrt();
                let mut t = ws.take_dense(n, x.cols())?;
                exec.row_broadcast_into(d, x, BroadcastOp::Mul, &mut t)?;
                let mut u = ws.take_dense(n, x.cols())?;
                exec.spmm_into(
                    ctx.adj(),
                    &t,
                    ctx.sum_semiring(),
                    ctx.irregularity(),
                    &mut u,
                )?;
                exec.row_broadcast_into(d, &u, BroadcastOp::Mul, &mut t)?;
                ws.give_dense(u);
                Ok(t)
            }
            NormStrategy::Precompute => {
                let norm_adj = prepared
                    .norm_adj
                    .as_ref()
                    .expect("precompute composition requires prepared adjacency");
                let mut t = ws.take_dense(n, x.cols())?;
                exec.spmm_into(
                    norm_adj,
                    x,
                    Semiring::plus_mul(),
                    ctx.irregularity(),
                    &mut t,
                )?;
                Ok(t)
            }
        }
    }

    /// One forward pass.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn forward(
        &self,
        exec: &Exec,
        ctx: &GraphCtx,
        prepared: &Prepared,
        h: &DenseMatrix,
        norm: NormStrategy,
        order: OpOrder,
    ) -> Result<DenseMatrix> {
        let mut ws = Workspace::new();
        self.forward_ws(exec, ctx, prepared, h, norm, order, &mut ws)
    }

    /// [`Tagcn::forward`] with all intermediates drawn from (and recycled
    /// into) the caller's workspace; identical charges, bitwise-identical
    /// output.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_ws(
        &self,
        exec: &Exec,
        ctx: &GraphCtx,
        prepared: &Prepared,
        h: &DenseMatrix,
        norm: NormStrategy,
        order: OpOrder,
        ws: &mut Workspace,
    ) -> Result<DenseMatrix> {
        let n = h.rows();
        let mut acc = match order {
            OpOrder::AggregateFirst => {
                // acc = Σ_k (Ñ^k H) W_k, propagating at width K1.
                let mut acc = ws.take_dense(n, self.cfg.k_out)?;
                exec.gemm_into(h, &self.ws[0], &mut acc)?;
                let mut cur: Option<DenseMatrix> = None;
                for wk in &self.ws[1..] {
                    let next =
                        self.hop_ws(exec, ctx, prepared, norm, cur.as_ref().unwrap_or(h), ws)?;
                    if let Some(old) = cur.replace(next) {
                        ws.give_dense(old);
                    }
                    let mut term = ws.take_dense(n, self.cfg.k_out)?;
                    exec.gemm_into(cur.as_ref().expect("just propagated"), wk, &mut term)?;
                    exec.zip_assign(&mut acc, &term, 1, |a, b| a + b)?;
                    ws.give_dense(term);
                }
                if let Some(old) = cur {
                    ws.give_dense(old);
                }
                acc
            }
            OpOrder::UpdateFirst => {
                // Horner: acc = H·W_K; for k = K-1..0: acc = Ñ·acc + H·W_k.
                let mut acc = ws.take_dense(n, self.cfg.k_out)?;
                exec.gemm_into(h, &self.ws[self.cfg.hops], &mut acc)?;
                for k in (0..self.cfg.hops).rev() {
                    let prop = self.hop_ws(exec, ctx, prepared, norm, &acc, ws)?;
                    let mut term = ws.take_dense(n, self.cfg.k_out)?;
                    exec.gemm_into(h, &self.ws[k], &mut term)?;
                    exec.zip_into(&prop, &term, 1, |a, b| a + b, &mut acc)?;
                    ws.give_dense(prop);
                    ws.give_dense(term);
                }
                acc
            }
        };
        exec.map_assign(&mut acc, 1, |v| v.max(0.0));
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granii_graph::generators;
    use granii_matrix::device::{DeviceKind, Engine};
    use granii_matrix::PrimitiveKind;

    #[test]
    fn all_four_compositions_agree() {
        let g = generators::power_law(25, 3, 10).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let h = DenseMatrix::random(25, 5, 1.0, 11);
        let layer = Tagcn::new(
            LayerConfig {
                k_in: 5,
                k_out: 4,
                hops: 2,
            },
            12,
        );
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);
        let mut outs = Vec::new();
        for norm in [NormStrategy::Dynamic, NormStrategy::Precompute] {
            for order in [OpOrder::AggregateFirst, OpOrder::UpdateFirst] {
                let p = layer.prepare(&exec, &ctx, norm).unwrap();
                outs.push(layer.forward(&exec, &ctx, &p, &h, norm, order).unwrap());
            }
        }
        for o in &outs[1..] {
            assert!(o.max_abs_diff(&outs[0]).unwrap() < 1e-3);
        }
    }

    #[test]
    fn update_first_propagates_at_output_width() {
        let g = generators::ring(16).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let h = DenseMatrix::random(16, 8, 1.0, 1);
        let layer = Tagcn::new(
            LayerConfig {
                k_in: 8,
                k_out: 2,
                hops: 2,
            },
            2,
        );
        let engine = Engine::modeled(DeviceKind::H100);
        let exec = Exec::real(&engine);
        let p = layer
            .prepare(&exec, &ctx, NormStrategy::Precompute)
            .unwrap();
        engine.take_profile();
        layer
            .forward(
                &exec,
                &ctx,
                &p,
                &h,
                NormStrategy::Precompute,
                OpOrder::UpdateFirst,
            )
            .unwrap();
        for e in engine.take_profile().entries {
            if e.kind == PrimitiveKind::SpmmWeighted {
                assert_eq!(e.stats.bytes_written, (16 * 2 * 4) as u64);
            }
        }
    }

    #[test]
    fn hops_zero_is_a_pure_update() {
        let g = generators::ring(8).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let h = DenseMatrix::random(8, 3, 1.0, 1);
        let layer = Tagcn::new(
            LayerConfig {
                k_in: 3,
                k_out: 3,
                hops: 1,
            },
            2,
        );
        // hops = 1 still aggregates once; verify the weight count.
        assert_eq!(layer.ws.len(), 2);
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);
        let p = layer.prepare(&exec, &ctx, NormStrategy::Dynamic).unwrap();
        let out = layer
            .forward(
                &exec,
                &ctx,
                &p,
                &h,
                NormStrategy::Dynamic,
                OpOrder::AggregateFirst,
            )
            .unwrap();
        assert_eq!(out.shape(), (8, 3));
    }
}
