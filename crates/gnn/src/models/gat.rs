//! Graph Attention Network (paper §III-B), single head.
//!
//! Attention stage (Eq. 4): `Θ = H·W`, per-node logits `ul = Θ·a_l`,
//! `vr = Θ·a_r`, per-edge score `e_ij = LeakyReLU(ul_i + vr_j)` (an SDDMM),
//! normalized by edge softmax into `α`.
//!
//! Aggregation stage: either **reuse** the already-computed `Θ` (Eq. 5,
//! aggregation at width `K2`) or **recompute** the update after aggregating
//! the raw features (Eq. 6, aggregation at width `K1` plus an extra GEMM) —
//! the two compositions whose crossover the paper analyzes.

use granii_matrix::{CsrMatrix, DenseMatrix, Semiring, Workspace};

use crate::spec::{GatStrategy, LayerConfig};
use crate::{Exec, GraphCtx, Result};

/// Negative slope of the attention LeakyReLU (GAT's standard 0.2).
pub const GAT_SLOPE: f32 = 0.2;

/// A single-head GAT layer.
#[derive(Debug, Clone)]
pub struct Gat {
    cfg: LayerConfig,
    w: DenseMatrix,
    a_l: DenseMatrix,
    a_r: DenseMatrix,
}

impl Gat {
    /// Creates a layer with deterministic random weights.
    pub fn new(cfg: LayerConfig, seed: u64) -> Self {
        let scale = (2.0 / (cfg.k_in + cfg.k_out) as f32).sqrt();
        let a_scale = (1.0 / cfg.k_out as f32).sqrt();
        Self {
            cfg,
            w: DenseMatrix::random(cfg.k_in, cfg.k_out, scale, seed),
            a_l: DenseMatrix::random(cfg.k_out, 1, a_scale, seed + 1),
            a_r: DenseMatrix::random(cfg.k_out, 1, a_scale, seed + 2),
        }
    }

    /// Layer configuration.
    pub fn config(&self) -> LayerConfig {
        self.cfg
    }

    /// The attention stage: returns `(Θ, α)` (Eq. 4).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn attention(
        &self,
        exec: &Exec,
        ctx: &GraphCtx,
        h: &DenseMatrix,
    ) -> Result<(DenseMatrix, CsrMatrix)> {
        let mut ws = Workspace::new();
        self.attention_ws(exec, ctx, h, &mut ws)
    }

    /// [`Gat::attention`] with all intermediates drawn from (and recycled
    /// into) the caller's workspace. The returned `(Θ, α)` buffers are owned
    /// by the caller; hand them back with [`Workspace::give_dense`] /
    /// [`Workspace::give_csr`] to keep the steady state allocation-free.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn attention_ws(
        &self,
        exec: &Exec,
        ctx: &GraphCtx,
        h: &DenseMatrix,
        ws: &mut Workspace,
    ) -> Result<(DenseMatrix, CsrMatrix)> {
        let irr = ctx.irregularity();
        let n = h.rows();
        let mut theta = ws.take_dense(n, self.cfg.k_out)?;
        exec.gemm_into(h, &self.w, &mut theta)?;
        let mut ul = ws.take_dense(n, 1)?;
        exec.gemm_into(&theta, &self.a_l, &mut ul)?;
        let mut vr = ws.take_dense(n, 1)?;
        exec.gemm_into(&theta, &self.a_r, &mut vr)?;
        let mut logits = ws.take_csr_like(ctx.adj())?;
        exec.sddmm_u_add_v_into(ctx.adj(), ul.as_slice(), vr.as_slice(), irr, &mut logits)?;
        ws.give_dense(ul);
        ws.give_dense(vr);
        exec.map_csr_assign(&mut logits, |v| if v >= 0.0 { v } else { GAT_SLOPE * v })?;
        let mut alpha = ws.take_csr_like(ctx.adj())?;
        exec.edge_softmax_into(&logits, irr, &mut alpha)?;
        ws.give_csr(logits);
        Ok((theta, alpha))
    }

    /// One forward pass.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn forward(
        &self,
        exec: &Exec,
        ctx: &GraphCtx,
        h: &DenseMatrix,
        strategy: GatStrategy,
    ) -> Result<DenseMatrix> {
        let mut ws = Workspace::new();
        self.forward_ws(exec, ctx, h, strategy, &mut ws)
    }

    /// [`Gat::forward`] with all intermediates drawn from (and recycled into)
    /// the caller's workspace; identical charges, bitwise-identical output.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn forward_ws(
        &self,
        exec: &Exec,
        ctx: &GraphCtx,
        h: &DenseMatrix,
        strategy: GatStrategy,
        ws: &mut Workspace,
    ) -> Result<DenseMatrix> {
        let irr = ctx.irregularity();
        let n = h.rows();
        let (theta, alpha) = self.attention_ws(exec, ctx, h, ws)?;
        let mut z = match strategy {
            GatStrategy::Reuse => {
                // Eq. 5: α · Θ, width K2.
                let mut z = ws.take_dense(n, self.cfg.k_out)?;
                exec.spmm_into(&alpha, &theta, Semiring::plus_mul(), irr, &mut z)?;
                z
            }
            GatStrategy::Recompute => {
                // Eq. 6: (α · H) · W, width K1 + one extra GEMM.
                let mut agg = ws.take_dense(n, h.cols())?;
                exec.spmm_into(&alpha, h, Semiring::plus_mul(), irr, &mut agg)?;
                let mut z = ws.take_dense(n, self.cfg.k_out)?;
                exec.gemm_into(&agg, &self.w, &mut z)?;
                ws.give_dense(agg);
                z
            }
        };
        ws.give_dense(theta);
        ws.give_csr(alpha);
        exec.map_assign(&mut z, 1, |v| v.max(0.0));
        Ok(z)
    }
}

/// A multi-head GAT layer (the standard GAT formulation; the paper's
/// evaluation uses a single head, so this is an extension feature). Each head
/// runs the full attention + aggregation pipeline at width
/// `k_out / num_heads`; head outputs are concatenated.
#[derive(Debug, Clone)]
pub struct MultiHeadGat {
    cfg: LayerConfig,
    heads: Vec<Gat>,
}

impl MultiHeadGat {
    /// Creates a layer with `num_heads` independent heads.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GnnError::InvalidConfig`] if `num_heads` is zero or
    /// does not divide `k_out`.
    pub fn new(cfg: LayerConfig, num_heads: usize, seed: u64) -> Result<Self> {
        if num_heads == 0 || !cfg.k_out.is_multiple_of(num_heads) {
            return Err(crate::GnnError::InvalidConfig(format!(
                "num_heads {num_heads} must divide k_out {}",
                cfg.k_out
            )));
        }
        let head_cfg = LayerConfig {
            k_out: cfg.k_out / num_heads,
            ..cfg
        };
        let heads = (0..num_heads)
            .map(|i| Gat::new(head_cfg, seed + 101 * i as u64))
            .collect();
        Ok(Self { cfg, heads })
    }

    /// Layer configuration (full concatenated output width).
    pub fn config(&self) -> LayerConfig {
        self.cfg
    }

    /// Number of attention heads.
    pub fn num_heads(&self) -> usize {
        self.heads.len()
    }

    /// One forward pass; every head uses the same aggregation strategy (a
    /// per-head strategy choice would be a straightforward extension of the
    /// plan compiler).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn forward(
        &self,
        exec: &Exec,
        ctx: &GraphCtx,
        h: &DenseMatrix,
        strategy: GatStrategy,
    ) -> Result<DenseMatrix> {
        let mut out: Option<DenseMatrix> = None;
        for head in &self.heads {
            let part = head.forward(exec, ctx, h, strategy)?;
            out = Some(match out {
                None => part,
                Some(acc) => acc.hstack(&part)?,
            });
        }
        Ok(out.expect("at least one head"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granii_graph::generators;
    use granii_matrix::device::{DeviceKind, Engine};
    use granii_matrix::PrimitiveKind;

    #[test]
    fn reuse_and_recompute_agree() {
        let g = generators::power_law(30, 3, 15).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let h = DenseMatrix::random(30, 4, 1.0, 16);
        let layer = Gat::new(LayerConfig::new(4, 6), 17);
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);
        let a = layer.forward(&exec, &ctx, &h, GatStrategy::Reuse).unwrap();
        let b = layer
            .forward(&exec, &ctx, &h, GatStrategy::Recompute)
            .unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
    }

    #[test]
    fn attention_rows_are_stochastic() {
        let g = generators::ring(10).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let h = DenseMatrix::random(10, 4, 1.0, 3);
        let layer = Gat::new(LayerConfig::new(4, 4), 5);
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);
        let (_, alpha) = layer.attention(&exec, &ctx, &h).unwrap();
        for i in 0..10 {
            let sum: f32 = alpha.row_values(i).unwrap().iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn multi_head_concatenates_heads() {
        let g = generators::power_law(20, 3, 1).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let h = DenseMatrix::random(20, 6, 1.0, 2);
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);
        let layer = MultiHeadGat::new(LayerConfig::new(6, 8), 4, 3).unwrap();
        assert_eq!(layer.num_heads(), 4);
        let out = layer.forward(&exec, &ctx, &h, GatStrategy::Reuse).unwrap();
        assert_eq!(out.shape(), (20, 8));
        // Strategies agree for multi-head too.
        let out2 = layer
            .forward(&exec, &ctx, &h, GatStrategy::Recompute)
            .unwrap();
        assert!(out.max_abs_diff(&out2).unwrap() < 1e-4);
    }

    #[test]
    fn single_head_matches_plain_gat() {
        let g = generators::ring(15).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let h = DenseMatrix::random(15, 4, 1.0, 2);
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);
        let multi = MultiHeadGat::new(LayerConfig::new(4, 6), 1, 9).unwrap();
        let single = Gat::new(LayerConfig::new(4, 6), 9);
        let a = multi.forward(&exec, &ctx, &h, GatStrategy::Reuse).unwrap();
        let b = single.forward(&exec, &ctx, &h, GatStrategy::Reuse).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-6);
    }

    #[test]
    fn multi_head_validates_divisibility() {
        assert!(MultiHeadGat::new(LayerConfig::new(4, 7), 2, 1).is_err());
        assert!(MultiHeadGat::new(LayerConfig::new(4, 8), 0, 1).is_err());
    }

    #[test]
    fn recompute_pays_extra_gemm_but_narrow_aggregation() {
        let g = generators::ring(20).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let h = DenseMatrix::random(20, 2, 1.0, 3);
        let layer = Gat::new(LayerConfig::new(2, 16), 5);
        let engine = Engine::modeled(DeviceKind::H100);
        let exec = Exec::real(&engine);

        let count = |strategy| {
            layer.forward(&exec, &ctx, &h, strategy).unwrap();
            let p = engine.take_profile();
            let gemms = p
                .entries
                .iter()
                .filter(|e| e.kind == PrimitiveKind::Gemm)
                .count();
            let spmm_width = p
                .entries
                .iter()
                .find(|e| e.kind == PrimitiveKind::SpmmWeighted)
                .map(|e| e.stats.bytes_written / (20 * 4))
                .unwrap();
            (gemms, spmm_width)
        };
        let (reuse_gemms, reuse_width) = count(GatStrategy::Reuse);
        let (rec_gemms, rec_width) = count(GatStrategy::Recompute);
        assert_eq!(rec_gemms, reuse_gemms + 1);
        assert_eq!(reuse_width, 16);
        assert_eq!(rec_width, 2);
    }
}
