//! Graph Convolutional Network (paper §III-A).
//!
//! `H' = σ( D̃^{-1/2} Ã D̃^{-1/2} · H · W )`, with two normalization strategies
//! (Eq. 2 dynamic broadcasts vs Eq. 3 precomputed edge scaling) and two
//! operator orders (update before or after aggregation), giving the four
//! promoted compositions GRANII selects among.

use granii_matrix::ops::BroadcastOp;
use granii_matrix::{DenseMatrix, Semiring, Workspace};

use crate::models::Prepared;
use crate::spec::{LayerConfig, NormStrategy, OpOrder};
use crate::{Exec, GraphCtx, Result};

/// A single GCN layer.
#[derive(Debug, Clone)]
pub struct Gcn {
    cfg: LayerConfig,
    w: DenseMatrix,
}

impl Gcn {
    /// Creates a layer with Xavier-style random weights.
    pub fn new(cfg: LayerConfig, seed: u64) -> Self {
        let scale = (2.0 / (cfg.k_in + cfg.k_out) as f32).sqrt();
        Self {
            cfg,
            w: DenseMatrix::random(cfg.k_in, cfg.k_out, scale, seed),
        }
    }

    /// Layer configuration.
    pub fn config(&self) -> LayerConfig {
        self.cfg
    }

    /// The weight matrix.
    pub fn weight(&self) -> &DenseMatrix {
        &self.w
    }

    /// One-time preprocessing: the precompute strategy builds
    /// `Ñ = D^{-1/2} Ã D^{-1/2}` with an SDDMM-style edge scaling.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn prepare(&self, exec: &Exec, ctx: &GraphCtx, norm: NormStrategy) -> Result<Prepared> {
        match norm {
            NormStrategy::Dynamic => Ok(Prepared::default()),
            NormStrategy::Precompute => {
                let d = ctx.deg_inv_sqrt();
                let norm_adj = exec.scale_csr(Some(d), ctx.adj(), Some(d), ctx.irregularity())?;
                Ok(Prepared {
                    norm_adj: Some(norm_adj),
                })
            }
        }
    }

    /// One forward pass.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors; `prepared` must come from
    /// [`Gcn::prepare`] with the same `norm`.
    pub fn forward(
        &self,
        exec: &Exec,
        ctx: &GraphCtx,
        prepared: &Prepared,
        h: &DenseMatrix,
        norm: NormStrategy,
        order: OpOrder,
    ) -> Result<DenseMatrix> {
        let mut ws = Workspace::new();
        self.forward_ws(exec, ctx, prepared, h, norm, order, &mut ws)
    }

    /// [`Gcn::forward`] with all intermediates drawn from (and recycled into)
    /// the caller's workspace. Identical charges and bitwise-identical output;
    /// after warm-up a steady-state call performs no heap allocation.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_ws(
        &self,
        exec: &Exec,
        ctx: &GraphCtx,
        prepared: &Prepared,
        h: &DenseMatrix,
        norm: NormStrategy,
        order: OpOrder,
        ws: &mut Workspace,
    ) -> Result<DenseMatrix> {
        let n = h.rows();
        let mut z = match norm {
            NormStrategy::Dynamic => {
                let d = ctx.deg_inv_sqrt();
                // D^{-1/2} · A · D^{-1/2} · x with a two-buffer ping-pong:
                // the spmm output buffer goes back to the pool, the broadcast
                // buffer carries the result out.
                let propagate = |x: &DenseMatrix, ws: &mut Workspace| -> Result<DenseMatrix> {
                    let mut t = ws.take_dense(n, x.cols())?;
                    exec.row_broadcast_into(d, x, BroadcastOp::Mul, &mut t)?;
                    let mut u = ws.take_dense(n, x.cols())?;
                    // Unweighted graphs use the cheap copy_u aggregation;
                    // weighted graphs must read edge values.
                    exec.spmm_into(
                        ctx.adj(),
                        &t,
                        ctx.sum_semiring(),
                        ctx.irregularity(),
                        &mut u,
                    )?;
                    exec.row_broadcast_into(d, &u, BroadcastOp::Mul, &mut t)?;
                    ws.give_dense(u);
                    Ok(t)
                };
                match order {
                    OpOrder::AggregateFirst => {
                        let agg = propagate(h, ws)?;
                        let mut out = ws.take_dense(n, self.cfg.k_out)?;
                        exec.gemm_into(&agg, &self.w, &mut out)?;
                        ws.give_dense(agg);
                        out
                    }
                    OpOrder::UpdateFirst => {
                        let mut up = ws.take_dense(n, self.cfg.k_out)?;
                        exec.gemm_into(h, &self.w, &mut up)?;
                        let out = propagate(&up, ws)?;
                        ws.give_dense(up);
                        out
                    }
                }
            }
            NormStrategy::Precompute => {
                let norm_adj = prepared
                    .norm_adj
                    .as_ref()
                    .expect("precompute composition requires prepared normalized adjacency");
                match order {
                    OpOrder::AggregateFirst => {
                        let mut agg = ws.take_dense(n, h.cols())?;
                        exec.spmm_into(
                            norm_adj,
                            h,
                            Semiring::plus_mul(),
                            ctx.irregularity(),
                            &mut agg,
                        )?;
                        let mut out = ws.take_dense(n, self.cfg.k_out)?;
                        exec.gemm_into(&agg, &self.w, &mut out)?;
                        ws.give_dense(agg);
                        out
                    }
                    OpOrder::UpdateFirst => {
                        let mut up = ws.take_dense(n, self.cfg.k_out)?;
                        exec.gemm_into(h, &self.w, &mut up)?;
                        let mut out = ws.take_dense(n, self.cfg.k_out)?;
                        exec.spmm_into(
                            norm_adj,
                            &up,
                            Semiring::plus_mul(),
                            ctx.irregularity(),
                            &mut out,
                        )?;
                        ws.give_dense(up);
                        out
                    }
                }
            }
        };
        exec.map_assign(&mut z, 1, |v| v.max(0.0));
        Ok(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granii_graph::generators;
    use granii_matrix::device::{DeviceKind, Engine};
    use granii_matrix::PrimitiveKind;

    #[test]
    fn dynamic_avoids_sddmm_and_precompute_avoids_broadcasts() {
        let g = generators::power_law(30, 3, 1).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let h = DenseMatrix::random(30, 4, 1.0, 2);
        let layer = Gcn::new(LayerConfig::new(4, 4), 3);

        let engine = Engine::modeled(DeviceKind::H100);
        let exec = Exec::real(&engine);
        let p = layer.prepare(&exec, &ctx, NormStrategy::Dynamic).unwrap();
        layer
            .forward(
                &exec,
                &ctx,
                &p,
                &h,
                NormStrategy::Dynamic,
                OpOrder::AggregateFirst,
            )
            .unwrap();
        let kinds: Vec<_> = engine
            .take_profile()
            .entries
            .iter()
            .map(|e| e.kind)
            .collect();
        assert!(kinds.contains(&PrimitiveKind::RowBroadcast));
        assert!(!kinds.contains(&PrimitiveKind::Sddmm));
        assert!(kinds.contains(&PrimitiveKind::SpmmUnweighted));

        let p = layer
            .prepare(&exec, &ctx, NormStrategy::Precompute)
            .unwrap();
        layer
            .forward(
                &exec,
                &ctx,
                &p,
                &h,
                NormStrategy::Precompute,
                OpOrder::UpdateFirst,
            )
            .unwrap();
        let kinds: Vec<_> = engine
            .take_profile()
            .entries
            .iter()
            .map(|e| e.kind)
            .collect();
        assert!(kinds.contains(&PrimitiveKind::Sddmm)); // prepare's edge scaling
        assert!(!kinds.contains(&PrimitiveKind::RowBroadcast));
        assert!(kinds.contains(&PrimitiveKind::SpmmWeighted));
    }

    /// Weighted input graphs must use the edge values: the dynamic
    /// composition's aggregation switches to the weighted semiring and the
    /// result matches a dense reference.
    #[test]
    fn weighted_graphs_respect_edge_values() {
        use granii_matrix::{ops, CooMatrix};
        // A weighted triangle with asymmetric weights.
        let coo = CooMatrix::from_entries(
            3,
            3,
            &[
                (0, 1, 2.0),
                (1, 0, 2.0),
                (1, 2, 0.5),
                (2, 1, 0.5),
                (0, 2, 3.0),
                (2, 0, 3.0),
            ],
        )
        .unwrap();
        let g = granii_graph::Graph::from_csr(coo.to_csr()).unwrap();
        assert!(g.is_weighted());
        let ctx = GraphCtx::new(&g).unwrap();
        let h = DenseMatrix::random(3, 2, 1.0, 5);
        let layer = Gcn::new(LayerConfig::new(2, 2), 6);
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);

        // Dense reference: relu(D^-1/2 Ã D^-1/2 H W) with real edge values.
        let d = ctx.deg_inv_sqrt().to_vec();
        let norm = ops::scale_csr(Some(&d), ctx.adj(), Some(&d)).unwrap();
        let reference = ops::gemm(
            &norm.to_dense().unwrap(),
            &ops::gemm(&h, layer.weight()).unwrap(),
        )
        .unwrap()
        .relu();

        for norm_s in [NormStrategy::Dynamic, NormStrategy::Precompute] {
            let p = layer.prepare(&exec, &ctx, norm_s).unwrap();
            let out = layer
                .forward(&exec, &ctx, &p, &h, norm_s, OpOrder::AggregateFirst)
                .unwrap();
            assert!(
                out.max_abs_diff(&reference).unwrap() < 1e-4,
                "{norm_s:?} ignores edge weights"
            );
        }
    }

    #[test]
    fn update_first_runs_gemm_before_aggregation() {
        let g = generators::ring(10).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let h = DenseMatrix::random(10, 6, 1.0, 2);
        let layer = Gcn::new(LayerConfig::new(6, 2), 3);
        let engine = Engine::modeled(DeviceKind::H100);
        let exec = Exec::real(&engine);
        let p = layer
            .prepare(&exec, &ctx, NormStrategy::Precompute)
            .unwrap();
        engine.take_profile();
        layer
            .forward(
                &exec,
                &ctx,
                &p,
                &h,
                NormStrategy::Precompute,
                OpOrder::UpdateFirst,
            )
            .unwrap();
        let entries = engine.take_profile().entries;
        let gemm_pos = entries
            .iter()
            .position(|e| e.kind == PrimitiveKind::Gemm)
            .unwrap();
        let spmm_pos = entries
            .iter()
            .position(|e| e.kind == PrimitiveKind::SpmmWeighted)
            .unwrap();
        assert!(gemm_pos < spmm_pos);
        // Aggregation runs at the *output* width 2 under update-first.
        assert_eq!(entries[spmm_pos].stats.bytes_written, (10 * 2 * 4) as u64);
    }
}
