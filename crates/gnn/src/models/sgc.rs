//! Simple Graph Convolution (Wu et al.).
//!
//! `H' = Ñ^k · H · W` with no intermediate nonlinearity. SGC inherits GCN's
//! normalization choice and, because every factor is linear, the single GEMM
//! can move to either end of the `k`-hop propagation chain.

use granii_matrix::ops::BroadcastOp;
use granii_matrix::{DenseMatrix, Semiring, Workspace};

use crate::models::Prepared;
use crate::spec::{LayerConfig, NormStrategy, OpOrder};
use crate::{Exec, GraphCtx, Result};

/// A single SGC layer (`cfg.hops` propagation steps, one weight).
#[derive(Debug, Clone)]
pub struct Sgc {
    cfg: LayerConfig,
    w: DenseMatrix,
}

impl Sgc {
    /// Creates a layer with deterministic random weights.
    pub fn new(cfg: LayerConfig, seed: u64) -> Self {
        let scale = (2.0 / (cfg.k_in + cfg.k_out) as f32).sqrt();
        Self {
            cfg,
            w: DenseMatrix::random(cfg.k_in, cfg.k_out, scale, seed),
        }
    }

    /// Layer configuration.
    pub fn config(&self) -> LayerConfig {
        self.cfg
    }

    /// One-time preprocessing (precompute strategy builds `Ñ`).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn prepare(&self, exec: &Exec, ctx: &GraphCtx, norm: NormStrategy) -> Result<Prepared> {
        match norm {
            NormStrategy::Dynamic => Ok(Prepared::default()),
            NormStrategy::Precompute => {
                let d = ctx.deg_inv_sqrt();
                let norm_adj = exec.scale_csr(Some(d), ctx.adj(), Some(d), ctx.irregularity())?;
                Ok(Prepared {
                    norm_adj: Some(norm_adj),
                })
            }
        }
    }

    /// One forward pass.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn forward(
        &self,
        exec: &Exec,
        ctx: &GraphCtx,
        prepared: &Prepared,
        h: &DenseMatrix,
        norm: NormStrategy,
        order: OpOrder,
    ) -> Result<DenseMatrix> {
        let mut ws = Workspace::new();
        self.forward_ws(exec, ctx, prepared, h, norm, order, &mut ws)
    }

    /// One `Ñ · src` propagation step into a workspace buffer.
    fn hop_ws(
        &self,
        exec: &Exec,
        ctx: &GraphCtx,
        prepared: &Prepared,
        norm: NormStrategy,
        src: &DenseMatrix,
        ws: &mut Workspace,
    ) -> Result<DenseMatrix> {
        let n = src.rows();
        match norm {
            NormStrategy::Dynamic => {
                let d = ctx.deg_inv_sqrt();
                let mut t = ws.take_dense(n, src.cols())?;
                exec.row_broadcast_into(d, src, BroadcastOp::Mul, &mut t)?;
                let mut u = ws.take_dense(n, src.cols())?;
                exec.spmm_into(
                    ctx.adj(),
                    &t,
                    ctx.sum_semiring(),
                    ctx.irregularity(),
                    &mut u,
                )?;
                exec.row_broadcast_into(d, &u, BroadcastOp::Mul, &mut t)?;
                ws.give_dense(u);
                Ok(t)
            }
            NormStrategy::Precompute => {
                let norm_adj = prepared
                    .norm_adj
                    .as_ref()
                    .expect("precompute composition requires prepared adjacency");
                let mut t = ws.take_dense(n, src.cols())?;
                exec.spmm_into(
                    norm_adj,
                    src,
                    Semiring::plus_mul(),
                    ctx.irregularity(),
                    &mut t,
                )?;
                Ok(t)
            }
        }
    }

    /// [`Sgc::forward`] with all intermediates drawn from (and recycled into)
    /// the caller's workspace; identical charges, bitwise-identical output.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_ws(
        &self,
        exec: &Exec,
        ctx: &GraphCtx,
        prepared: &Prepared,
        h: &DenseMatrix,
        norm: NormStrategy,
        order: OpOrder,
        ws: &mut Workspace,
    ) -> Result<DenseMatrix> {
        let n = h.rows();
        match order {
            OpOrder::AggregateFirst => {
                let mut cur: Option<DenseMatrix> = None;
                for _ in 0..self.cfg.hops {
                    let next =
                        self.hop_ws(exec, ctx, prepared, norm, cur.as_ref().unwrap_or(h), ws)?;
                    if let Some(old) = cur.replace(next) {
                        ws.give_dense(old);
                    }
                }
                let mut out = ws.take_dense(n, self.cfg.k_out)?;
                exec.gemm_into(cur.as_ref().unwrap_or(h), &self.w, &mut out)?;
                if let Some(old) = cur {
                    ws.give_dense(old);
                }
                Ok(out)
            }
            OpOrder::UpdateFirst => {
                let mut cur = ws.take_dense(n, self.cfg.k_out)?;
                exec.gemm_into(h, &self.w, &mut cur)?;
                for _ in 0..self.cfg.hops {
                    let next = self.hop_ws(exec, ctx, prepared, norm, &cur, ws)?;
                    ws.give_dense(std::mem::replace(&mut cur, next));
                }
                Ok(cur)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granii_graph::generators;
    use granii_matrix::device::{DeviceKind, Engine};
    use granii_matrix::PrimitiveKind;

    #[test]
    fn hop_count_controls_spmm_count() {
        let g = generators::ring(10).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let h = DenseMatrix::random(10, 4, 1.0, 1);
        let engine = Engine::modeled(DeviceKind::H100);
        let exec = Exec::real(&engine);
        for hops in [1usize, 2, 3] {
            let layer = Sgc::new(
                LayerConfig {
                    k_in: 4,
                    k_out: 4,
                    hops,
                },
                2,
            );
            let p = layer
                .prepare(&exec, &ctx, NormStrategy::Precompute)
                .unwrap();
            engine.take_profile();
            layer
                .forward(
                    &exec,
                    &ctx,
                    &p,
                    &h,
                    NormStrategy::Precompute,
                    OpOrder::AggregateFirst,
                )
                .unwrap();
            let spmms = engine
                .take_profile()
                .entries
                .iter()
                .filter(|e| e.kind == PrimitiveKind::SpmmWeighted)
                .count();
            assert_eq!(spmms, hops);
        }
    }

    #[test]
    fn all_four_compositions_agree() {
        let g = generators::power_law(30, 3, 4).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let h = DenseMatrix::random(30, 5, 1.0, 6);
        let layer = Sgc::new(
            LayerConfig {
                k_in: 5,
                k_out: 3,
                hops: 2,
            },
            7,
        );
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);
        let mut outs = Vec::new();
        for norm in [NormStrategy::Dynamic, NormStrategy::Precompute] {
            for order in [OpOrder::AggregateFirst, OpOrder::UpdateFirst] {
                let p = layer.prepare(&exec, &ctx, norm).unwrap();
                outs.push(layer.forward(&exec, &ctx, &p, &h, norm, order).unwrap());
            }
        }
        for o in &outs[1..] {
            assert!(o.max_abs_diff(&outs[0]).unwrap() < 1e-4);
        }
    }
}
