//! Multi-layer GNN models (paper §VI-F).
//!
//! "For a multi-layer GNN, GRANII can simply select the best composition for
//! each layer using its lightweight cost models" — a [`Model`] is a stack of
//! same-kind layers, each forwarded under its own composition.

use granii_matrix::{DenseMatrix, Workspace};

use crate::models::{GnnLayer, Prepared};
use crate::spec::{Composition, LayerConfig, ModelKind};
use crate::{Exec, GnnError, GraphCtx, Result};

/// A stack of [`GnnLayer`]s of one model kind.
///
/// # Example
///
/// ```
/// use granii_gnn::models::Model;
/// use granii_gnn::spec::{Composition, ModelKind};
/// use granii_gnn::{Exec, GraphCtx};
/// use granii_graph::generators;
/// use granii_matrix::device::{DeviceKind, Engine};
/// use granii_matrix::DenseMatrix;
///
/// # fn main() -> Result<(), granii_gnn::GnnError> {
/// let graph = generators::ring(16)?;
/// let ctx = GraphCtx::new(&graph)?;
/// let engine = Engine::modeled(DeviceKind::H100);
/// let exec = Exec::real(&engine);
/// // 2-layer GCN: 8 -> 16 -> 4.
/// let model = Model::new(ModelKind::Gcn, &[8, 16, 4], 42)?;
/// let comps: Vec<_> = model
///     .layer_configs()
///     .iter()
///     .map(|_| Composition::all_for(ModelKind::Gcn)[0])
///     .collect();
/// let h = DenseMatrix::random(16, 8, 1.0, 1);
/// let out = model.forward(&exec, &ctx, &h, &comps)?;
/// assert_eq!(out.shape(), (16, 4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Model {
    kind: ModelKind,
    layers: Vec<GnnLayer>,
}

impl Model {
    /// Builds a model from the embedding-size chain `dims` (`dims.len() - 1`
    /// layers; `dims[0]` is the input feature width).
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidConfig`] if fewer than two dims are given or
    /// any layer configuration is invalid.
    pub fn new(kind: ModelKind, dims: &[usize], seed: u64) -> Result<Self> {
        if dims.len() < 2 {
            return Err(GnnError::InvalidConfig(
                "a model needs at least one layer".into(),
            ));
        }
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| GnnLayer::new(kind, LayerConfig::new(w[0], w[1]), seed + i as u64))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { kind, layers })
    }

    /// The model kind.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Per-layer configurations, in forward order.
    pub fn layer_configs(&self) -> Vec<LayerConfig> {
        self.layers.iter().map(GnnLayer::config).collect()
    }

    /// The layers themselves.
    pub fn layers(&self) -> &[GnnLayer] {
        &self.layers
    }

    /// Runs the per-layer preparation for a composition assignment.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidConfig`] if `comps.len() != num_layers()` or
    /// a composition belongs to a different model kind.
    pub fn prepare(
        &self,
        exec: &Exec,
        ctx: &GraphCtx,
        comps: &[Composition],
    ) -> Result<Vec<Prepared>> {
        self.check_assignment(comps)?;
        self.layers
            .iter()
            .zip(comps)
            .map(|(layer, &comp)| layer.prepare(exec, ctx, comp))
            .collect()
    }

    /// Full forward pass: each layer under its assigned composition (layers
    /// are prepared internally; use [`Model::forward_prepared`] to amortize
    /// preparation across iterations).
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn forward(
        &self,
        exec: &Exec,
        ctx: &GraphCtx,
        h: &DenseMatrix,
        comps: &[Composition],
    ) -> Result<DenseMatrix> {
        let prepared = self.prepare(exec, ctx, comps)?;
        self.forward_prepared(exec, ctx, &prepared, h, comps)
    }

    /// Forward pass with preparation artifacts from [`Model::prepare`].
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn forward_prepared(
        &self,
        exec: &Exec,
        ctx: &GraphCtx,
        prepared: &[Prepared],
        h: &DenseMatrix,
        comps: &[Composition],
    ) -> Result<DenseMatrix> {
        let mut ws = Workspace::new();
        self.forward_ws(exec, ctx, prepared, h, comps, &mut ws)
    }

    /// [`Model::forward_prepared`] with every layer's intermediates (and the
    /// inter-layer activations) drawn from and recycled into the caller's
    /// workspace; after warm-up, steady-state iterations allocate nothing.
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn forward_ws(
        &self,
        exec: &Exec,
        ctx: &GraphCtx,
        prepared: &[Prepared],
        h: &DenseMatrix,
        comps: &[Composition],
        ws: &mut Workspace,
    ) -> Result<DenseMatrix> {
        self.check_assignment(comps)?;
        let mut cur: Option<DenseMatrix> = None;
        for ((layer, prep), &comp) in self.layers.iter().zip(prepared).zip(comps) {
            let out = layer.forward_ws(exec, ctx, prep, cur.as_ref().unwrap_or(h), comp, ws)?;
            if let Some(old) = cur.replace(out) {
                ws.give_dense(old);
            }
        }
        Ok(cur.expect("a model has at least one layer"))
    }

    fn check_assignment(&self, comps: &[Composition]) -> Result<()> {
        if comps.len() != self.layers.len() {
            return Err(GnnError::InvalidConfig(format!(
                "{} compositions for {} layers",
                comps.len(),
                self.layers.len()
            )));
        }
        for &c in comps {
            if c.model() != self.kind {
                return Err(GnnError::InvalidConfig(format!(
                    "composition {c} does not belong to model {}",
                    self.kind
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granii_graph::generators;
    use granii_matrix::device::{DeviceKind, Engine};

    #[test]
    fn multi_layer_forward_chains_shapes() {
        let g = generators::power_law(30, 3, 1).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let engine = Engine::modeled(DeviceKind::H100);
        let exec = Exec::real(&engine);
        let model = Model::new(ModelKind::Gcn, &[6, 12, 8, 3], 9).unwrap();
        assert_eq!(model.num_layers(), 3);
        let comps: Vec<_> = model
            .layer_configs()
            .iter()
            .map(|_| Composition::all_for(ModelKind::Gcn)[2])
            .collect();
        let h = DenseMatrix::random(30, 6, 1.0, 2);
        let out = model.forward(&exec, &ctx, &h, &comps).unwrap();
        assert_eq!(out.shape(), (30, 3));
    }

    #[test]
    fn per_layer_compositions_can_differ_without_changing_output() {
        let g = generators::power_law(25, 4, 2).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);
        let model = Model::new(ModelKind::Gcn, &[5, 7, 4], 3).unwrap();
        let all = Composition::all_for(ModelKind::Gcn);
        let h = DenseMatrix::random(25, 5, 1.0, 4);
        let a = model.forward(&exec, &ctx, &h, &[all[0], all[3]]).unwrap();
        let b = model.forward(&exec, &ctx, &h, &[all[2], all[1]]).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-3);
    }

    #[test]
    fn assignment_validation() {
        let g = generators::ring(10).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);
        let model = Model::new(ModelKind::Gcn, &[4, 4], 1).unwrap();
        let h = DenseMatrix::zeros(10, 4).unwrap();
        // Wrong count.
        assert!(model.forward(&exec, &ctx, &h, &[]).is_err());
        // Wrong model.
        let gat = Composition::all_for(ModelKind::Gat)[0];
        assert!(model.forward(&exec, &ctx, &h, &[gat]).is_err());
        // Too few dims.
        assert!(Model::new(ModelKind::Gcn, &[4], 1).is_err());
    }
}
