//! GraphSAGE with mean aggregation (Hamilton et al.).
//!
//! `H' = σ( H·W_self + mean_{neighbors}(H)·W_neigh )`. The paper evaluates
//! GraphSAGE through neighborhood sampling (§VI-E: "through sampling, we can
//! support GraphSAGE with GCN aggregation"); here the layer runs on whatever
//! (possibly sampled) graph the context holds. Mean aggregation commutes with
//! the linear update, giving the two operator orders.

use granii_matrix::{DenseMatrix, Semiring, Workspace};

use crate::spec::{LayerConfig, OpOrder};
use crate::{Exec, GraphCtx, Result};

/// A single GraphSAGE (mean) layer.
#[derive(Debug, Clone)]
pub struct Sage {
    cfg: LayerConfig,
    w_self: DenseMatrix,
    w_neigh: DenseMatrix,
}

impl Sage {
    /// Creates a layer with deterministic random weights.
    pub fn new(cfg: LayerConfig, seed: u64) -> Self {
        let scale = (2.0 / (cfg.k_in + cfg.k_out) as f32).sqrt();
        Self {
            cfg,
            w_self: DenseMatrix::random(cfg.k_in, cfg.k_out, scale, seed),
            w_neigh: DenseMatrix::random(cfg.k_in, cfg.k_out, scale, seed + 1),
        }
    }

    /// Layer configuration.
    pub fn config(&self) -> LayerConfig {
        self.cfg
    }

    /// One forward pass.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn forward(
        &self,
        exec: &Exec,
        ctx: &GraphCtx,
        h: &DenseMatrix,
        order: OpOrder,
    ) -> Result<DenseMatrix> {
        let mut ws = Workspace::new();
        self.forward_ws(exec, ctx, h, order, &mut ws)
    }

    /// [`Sage::forward`] with all intermediates drawn from (and recycled
    /// into) the caller's workspace; identical charges, bitwise-identical
    /// output.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn forward_ws(
        &self,
        exec: &Exec,
        ctx: &GraphCtx,
        h: &DenseMatrix,
        order: OpOrder,
        ws: &mut Workspace,
    ) -> Result<DenseMatrix> {
        let adj = ctx.graph().adj();
        let irr = ctx.irregularity();
        let n = h.rows();
        let mut self_term = ws.take_dense(n, self.cfg.k_out)?;
        exec.gemm_into(h, &self.w_self, &mut self_term)?;
        let neigh_term = match order {
            OpOrder::AggregateFirst => {
                let mut agg = ws.take_dense(n, h.cols())?;
                exec.spmm_into(adj, h, Semiring::mean_copy_rhs(), irr, &mut agg)?;
                let mut neigh = ws.take_dense(n, self.cfg.k_out)?;
                exec.gemm_into(&agg, &self.w_neigh, &mut neigh)?;
                ws.give_dense(agg);
                neigh
            }
            OpOrder::UpdateFirst => {
                let mut z = ws.take_dense(n, self.cfg.k_out)?;
                exec.gemm_into(h, &self.w_neigh, &mut z)?;
                let mut neigh = ws.take_dense(n, self.cfg.k_out)?;
                exec.spmm_into(adj, &z, Semiring::mean_copy_rhs(), irr, &mut neigh)?;
                ws.give_dense(z);
                neigh
            }
        };
        exec.zip_assign(&mut self_term, &neigh_term, 1, |a, b| a + b)?;
        ws.give_dense(neigh_term);
        exec.map_assign(&mut self_term, 1, |v| v.max(0.0));
        Ok(self_term)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granii_graph::{generators, sampling};
    use granii_matrix::device::{DeviceKind, Engine};

    #[test]
    fn orders_agree_numerically() {
        let g = generators::power_law(30, 4, 20).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let h = DenseMatrix::random(30, 5, 1.0, 21);
        let layer = Sage::new(LayerConfig::new(5, 3), 22);
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);
        let a = layer
            .forward(&exec, &ctx, &h, OpOrder::AggregateFirst)
            .unwrap();
        let b = layer
            .forward(&exec, &ctx, &h, OpOrder::UpdateFirst)
            .unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
    }

    #[test]
    fn runs_on_sampled_graphs() {
        let g = generators::power_law(100, 8, 23).unwrap();
        let sampled = sampling::sample_neighbors(&g, 3, 7).unwrap();
        let ctx = GraphCtx::new(&sampled).unwrap();
        let h = DenseMatrix::random(100, 4, 1.0, 24);
        let layer = Sage::new(LayerConfig::new(4, 4), 25);
        let engine = Engine::modeled(DeviceKind::H100);
        let exec = Exec::real(&engine);
        let out = layer
            .forward(&exec, &ctx, &h, OpOrder::AggregateFirst)
            .unwrap();
        assert_eq!(out.shape(), (100, 4));
    }

    #[test]
    fn isolated_node_keeps_only_self_term() {
        let g = granii_graph::Graph::from_edges(2, &[(0, 1)]).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let layer = Sage::new(LayerConfig::new(2, 2), 1);
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);
        let h = DenseMatrix::from_rows(&[[1.0, 2.0].as_slice(), [3.0, 4.0].as_slice()]).unwrap();
        let out = layer
            .forward(&exec, &ctx, &h, OpOrder::AggregateFirst)
            .unwrap();
        // Node 1 has no out-neighbors: output = relu(h1 · w_self).
        let expected = granii_matrix::ops::gemm(&h, &layer.w_self).unwrap().relu();
        for j in 0..2 {
            assert!((out.get(1, j) - expected.get(1, j)).abs() < 1e-5);
        }
    }
}
