//! Executable GNN layers, one module per model, each implementing every
//! primitive composition of the paper's case study (§III).
//!
//! All compositions of a model compute the same function (up to fp rounding);
//! the integration tests assert this equivalence. The cost differences between
//! them — which GRANII's runtime selects on — come entirely from which
//! primitives run and at which widths.

mod gat;
mod gcn;
mod gin;
mod model;
mod sage;
mod sgc;
mod tagcn;

pub use gat::{Gat, MultiHeadGat, GAT_SLOPE};
pub use gcn::Gcn;
pub use gin::{Gin, GIN_EPS};
pub use model::Model;
pub use sage::Sage;
pub use sgc::Sgc;
pub use tagcn::Tagcn;

use granii_matrix::{CsrMatrix, DenseMatrix, Workspace};

use crate::spec::{Composition, LayerConfig, ModelKind};
use crate::{Exec, GnnError, GraphCtx, Result};

/// Composition-specific preprocessing artifacts, produced once per
/// (graph, composition) and reused across iterations.
///
/// The paper's precompute composition (Eq. 3) pays an SDDMM once to build the
/// normalized adjacency; that artifact lives here so the per-iteration loop
/// does not re-pay it.
#[derive(Debug, Clone, Default)]
pub struct Prepared {
    /// Precomputed normalized adjacency `Ñ = D^{-1/2} Ã D^{-1/2}`, when the
    /// composition uses [`crate::spec::NormStrategy::Precompute`].
    pub norm_adj: Option<CsrMatrix>,
}

/// A single-layer GNN model with its learned parameters.
///
/// The same parameters serve every composition of the model, so outputs are
/// comparable across compositions.
///
/// # Example
///
/// ```
/// use granii_gnn::models::GnnLayer;
/// use granii_gnn::spec::{Composition, LayerConfig, ModelKind};
/// use granii_gnn::{Exec, GraphCtx};
/// use granii_matrix::device::{DeviceKind, Engine};
/// use granii_matrix::DenseMatrix;
/// use granii_graph::generators;
///
/// # fn main() -> Result<(), granii_gnn::GnnError> {
/// let graph = generators::ring(12)?;
/// let ctx = GraphCtx::new(&graph)?;
/// let engine = Engine::modeled(DeviceKind::H100);
/// let exec = Exec::real(&engine);
/// let layer = GnnLayer::new(ModelKind::Gcn, LayerConfig::new(8, 4), 42)?;
/// let h = DenseMatrix::random(12, 8, 1.0, 7);
/// let comp = Composition::all_for(ModelKind::Gcn)[0];
/// let prepared = layer.prepare(&exec, &ctx, comp)?;
/// let out = layer.forward(&exec, &ctx, &prepared, &h, comp)?;
/// assert_eq!(out.shape(), (12, 4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub enum GnnLayer {
    /// Graph Convolutional Network layer.
    Gcn(Gcn),
    /// Graph Isomorphism Network layer.
    Gin(Gin),
    /// Simple Graph Convolution layer.
    Sgc(Sgc),
    /// Topology-Adaptive GCN layer.
    Tagcn(Tagcn),
    /// Graph Attention Network layer.
    Gat(Gat),
    /// GraphSAGE (mean) layer.
    Sage(Sage),
}

impl GnnLayer {
    /// Creates a layer of the given kind with deterministic random parameters.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidConfig`] for invalid layer configurations.
    pub fn new(kind: ModelKind, cfg: LayerConfig, seed: u64) -> Result<Self> {
        cfg.validate()?;
        Ok(match kind {
            ModelKind::Gcn => GnnLayer::Gcn(Gcn::new(cfg, seed)),
            ModelKind::Gin => GnnLayer::Gin(Gin::new(cfg, seed)),
            ModelKind::Sgc => GnnLayer::Sgc(Sgc::new(cfg, seed)),
            ModelKind::Tagcn => GnnLayer::Tagcn(Tagcn::new(cfg, seed)),
            ModelKind::Gat => GnnLayer::Gat(Gat::new(cfg, seed)),
            ModelKind::Sage => GnnLayer::Sage(Sage::new(cfg, seed)),
        })
    }

    /// The model kind.
    pub fn kind(&self) -> ModelKind {
        match self {
            GnnLayer::Gcn(_) => ModelKind::Gcn,
            GnnLayer::Gin(_) => ModelKind::Gin,
            GnnLayer::Sgc(_) => ModelKind::Sgc,
            GnnLayer::Tagcn(_) => ModelKind::Tagcn,
            GnnLayer::Gat(_) => ModelKind::Gat,
            GnnLayer::Sage(_) => ModelKind::Sage,
        }
    }

    /// The layer configuration.
    pub fn config(&self) -> LayerConfig {
        match self {
            GnnLayer::Gcn(m) => m.config(),
            GnnLayer::Gin(m) => m.config(),
            GnnLayer::Sgc(m) => m.config(),
            GnnLayer::Tagcn(m) => m.config(),
            GnnLayer::Gat(m) => m.config(),
            GnnLayer::Sage(m) => m.config(),
        }
    }

    /// Runs composition-specific one-time preprocessing (charged to the
    /// executor's engine).
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidConfig`] if `comp` belongs to a different
    /// model, and propagates kernel errors.
    pub fn prepare(&self, exec: &Exec, ctx: &GraphCtx, comp: Composition) -> Result<Prepared> {
        self.check_composition(comp)?;
        match (self, comp) {
            (GnnLayer::Gcn(m), Composition::Gcn(norm, _)) => m.prepare(exec, ctx, norm),
            (GnnLayer::Sgc(m), Composition::Sgc(norm, _)) => m.prepare(exec, ctx, norm),
            (GnnLayer::Tagcn(m), Composition::Tagcn(norm, _)) => m.prepare(exec, ctx, norm),
            _ => Ok(Prepared::default()),
        }
    }

    /// Runs one forward pass under the given composition.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::FeatureMismatch`] / [`GnnError::DimensionMismatch`]
    /// for shape problems, [`GnnError::InvalidConfig`] for a composition of
    /// the wrong model, and propagates kernel errors.
    pub fn forward(
        &self,
        exec: &Exec,
        ctx: &GraphCtx,
        prepared: &Prepared,
        h: &DenseMatrix,
        comp: Composition,
    ) -> Result<DenseMatrix> {
        let mut ws = Workspace::new();
        self.forward_ws(exec, ctx, prepared, h, comp, &mut ws)
    }

    /// [`GnnLayer::forward`] with all intermediates drawn from (and recycled
    /// into) the caller's workspace. Charges and outputs are identical to
    /// [`GnnLayer::forward`]'s; after a warm-up iteration fills the pool,
    /// steady-state calls perform no dense-intermediate heap allocation.
    ///
    /// # Errors
    ///
    /// Same contract as [`GnnLayer::forward`].
    pub fn forward_ws(
        &self,
        exec: &Exec,
        ctx: &GraphCtx,
        prepared: &Prepared,
        h: &DenseMatrix,
        comp: Composition,
        ws: &mut Workspace,
    ) -> Result<DenseMatrix> {
        self.check_composition(comp)?;
        check_input(ctx, h, self.config())?;
        match (self, comp) {
            (GnnLayer::Gcn(m), Composition::Gcn(norm, order)) => {
                m.forward_ws(exec, ctx, prepared, h, norm, order, ws)
            }
            (GnnLayer::Gin(m), Composition::Gin(order)) => m.forward_ws(exec, ctx, h, order, ws),
            (GnnLayer::Sgc(m), Composition::Sgc(norm, order)) => {
                m.forward_ws(exec, ctx, prepared, h, norm, order, ws)
            }
            (GnnLayer::Tagcn(m), Composition::Tagcn(norm, order)) => {
                m.forward_ws(exec, ctx, prepared, h, norm, order, ws)
            }
            (GnnLayer::Gat(m), Composition::Gat(strategy)) => {
                m.forward_ws(exec, ctx, h, strategy, ws)
            }
            (GnnLayer::Sage(m), Composition::Sage(order)) => m.forward_ws(exec, ctx, h, order, ws),
            _ => unreachable!("check_composition validated the pairing"),
        }
    }

    fn check_composition(&self, comp: Composition) -> Result<()> {
        if comp.model() != self.kind() {
            return Err(GnnError::InvalidConfig(format!(
                "composition {comp} does not belong to model {}",
                self.kind()
            )));
        }
        Ok(())
    }
}

/// Validates the feature matrix against the graph and layer config.
pub(crate) fn check_input(ctx: &GraphCtx, h: &DenseMatrix, cfg: LayerConfig) -> Result<()> {
    if h.rows() != ctx.num_nodes() {
        return Err(GnnError::FeatureMismatch {
            nodes: ctx.num_nodes(),
            rows: h.rows(),
        });
    }
    if h.cols() != cfg.k_in {
        return Err(GnnError::DimensionMismatch {
            expected: cfg.k_in,
            got: h.cols(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use granii_graph::generators;
    use granii_matrix::device::{DeviceKind, Engine};

    fn setup() -> (GraphCtx, Engine, DenseMatrix) {
        let g = generators::power_law(40, 3, 5).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let engine = Engine::modeled(DeviceKind::H100);
        let h = DenseMatrix::random(40, 8, 1.0, 3);
        (ctx, engine, h)
    }

    #[test]
    fn every_model_and_composition_runs() {
        let (ctx, engine, h) = setup();
        let exec = Exec::real(&engine);
        for kind in [
            ModelKind::Gcn,
            ModelKind::Gin,
            ModelKind::Sgc,
            ModelKind::Tagcn,
            ModelKind::Gat,
            ModelKind::Sage,
        ] {
            let layer = GnnLayer::new(kind, LayerConfig::new(8, 6), 1).unwrap();
            for comp in Composition::all_for(kind) {
                let prepared = layer.prepare(&exec, &ctx, comp).unwrap();
                let out = layer.forward(&exec, &ctx, &prepared, &h, comp).unwrap();
                assert_eq!(out.shape(), (40, 6), "{comp}");
                assert!(out.as_slice().iter().all(|v| v.is_finite()), "{comp}");
            }
        }
    }

    /// The core correctness property GRANII relies on: every composition of a
    /// model computes the same function.
    #[test]
    fn compositions_are_numerically_equivalent() {
        let (ctx, engine, h) = setup();
        let exec = Exec::real(&engine);
        for kind in [
            ModelKind::Gcn,
            ModelKind::Gin,
            ModelKind::Sgc,
            ModelKind::Tagcn,
            ModelKind::Gat,
            ModelKind::Sage,
        ] {
            let layer = GnnLayer::new(kind, LayerConfig::new(8, 6), 2).unwrap();
            let comps = Composition::all_for(kind);
            let reference = {
                let p = layer.prepare(&exec, &ctx, comps[0]).unwrap();
                layer.forward(&exec, &ctx, &p, &h, comps[0]).unwrap()
            };
            for &comp in &comps[1..] {
                let p = layer.prepare(&exec, &ctx, comp).unwrap();
                let out = layer.forward(&exec, &ctx, &p, &h, comp).unwrap();
                let diff = out.max_abs_diff(&reference).unwrap();
                assert!(diff < 1e-3, "{comp} differs from {} by {diff}", comps[0]);
            }
        }
    }

    #[test]
    fn wrong_composition_is_rejected() {
        let (ctx, engine, h) = setup();
        let exec = Exec::real(&engine);
        let layer = GnnLayer::new(ModelKind::Gcn, LayerConfig::new(8, 6), 1).unwrap();
        let gat_comp = Composition::all_for(ModelKind::Gat)[0];
        assert!(layer.prepare(&exec, &ctx, gat_comp).is_err());
        assert!(layer
            .forward(&exec, &ctx, &Prepared::default(), &h, gat_comp)
            .is_err());
    }

    #[test]
    fn input_shape_is_validated() {
        let (ctx, engine, _) = setup();
        let exec = Exec::real(&engine);
        let layer = GnnLayer::new(ModelKind::Gcn, LayerConfig::new(8, 6), 1).unwrap();
        let comp = Composition::all_for(ModelKind::Gcn)[0];
        let p = layer.prepare(&exec, &ctx, comp).unwrap();
        let wrong_nodes = DenseMatrix::zeros(10, 8).unwrap();
        assert!(matches!(
            layer.forward(&exec, &ctx, &p, &wrong_nodes, comp),
            Err(GnnError::FeatureMismatch { .. })
        ));
        let wrong_width = DenseMatrix::zeros(40, 5).unwrap();
        assert!(matches!(
            layer.forward(&exec, &ctx, &p, &wrong_width, comp),
            Err(GnnError::DimensionMismatch {
                expected: 8,
                got: 5
            })
        ));
    }

    #[test]
    fn virtual_execution_produces_shapes_without_values() {
        let (ctx, engine, h) = setup();
        let exec = Exec::virtual_only(&engine);
        for kind in ModelKind::EVAL {
            let layer = GnnLayer::new(kind, LayerConfig::new(8, 6), 1).unwrap();
            for comp in Composition::all_for(kind) {
                let p = layer.prepare(&exec, &ctx, comp).unwrap();
                let out = layer.forward(&exec, &ctx, &p, &h, comp).unwrap();
                assert_eq!(out.shape(), (40, 6));
            }
        }
        assert!(engine.elapsed_seconds() > 0.0);
    }
}
