//! Graph Isomorphism Network.
//!
//! `H' = MLP( (1 + ε)·H + A·H )` with a two-layer MLP. Because the first MLP
//! layer is linear and sum-aggregation commutes with it,
//! `((1+ε)H + A·H)·W₁ = (1+ε)(H·W₁) + A·(H·W₁)` — the update-first reordering
//! GRANII discovers for GIN on DGL (paper §VI-C1: "the default implementation
//! for these models does not reorder the placement of the update operation").

use granii_matrix::{DenseMatrix, Workspace};

use crate::spec::{LayerConfig, OpOrder};
use crate::{Exec, GraphCtx, Result};

/// Fixed epsilon of the `(1 + ε)` self-term (DGL's default is 0; we use a
/// small nonzero value so the term is exercised).
pub const GIN_EPS: f32 = 0.1;

/// A single GIN layer with a 2-layer MLP (`k_in → k_out → k_out`).
#[derive(Debug, Clone)]
pub struct Gin {
    cfg: LayerConfig,
    w1: DenseMatrix,
    w2: DenseMatrix,
}

impl Gin {
    /// Creates a layer with deterministic random MLP weights.
    pub fn new(cfg: LayerConfig, seed: u64) -> Self {
        let s1 = (2.0 / (cfg.k_in + cfg.k_out) as f32).sqrt();
        let s2 = (1.0 / cfg.k_out as f32).sqrt();
        Self {
            cfg,
            w1: DenseMatrix::random(cfg.k_in, cfg.k_out, s1, seed),
            w2: DenseMatrix::random(cfg.k_out, cfg.k_out, s2, seed + 1),
        }
    }

    /// Layer configuration.
    pub fn config(&self) -> LayerConfig {
        self.cfg
    }

    /// One forward pass. GIN aggregates over the raw adjacency (no
    /// self-loops — the `(1+ε)H` term plays that role).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn forward(
        &self,
        exec: &Exec,
        ctx: &GraphCtx,
        h: &DenseMatrix,
        order: OpOrder,
    ) -> Result<DenseMatrix> {
        let mut ws = Workspace::new();
        self.forward_ws(exec, ctx, h, order, &mut ws)
    }

    /// [`Gin::forward`] with all intermediates drawn from (and recycled into)
    /// the caller's workspace; identical charges, bitwise-identical output.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn forward_ws(
        &self,
        exec: &Exec,
        ctx: &GraphCtx,
        h: &DenseMatrix,
        order: OpOrder,
        ws: &mut Workspace,
    ) -> Result<DenseMatrix> {
        let adj = ctx.graph().adj();
        let irr = ctx.irregularity();
        let n = h.rows();
        let mut hidden = match order {
            OpOrder::AggregateFirst => {
                // ((1+ε)H + A·H) · W₁
                let mut agg = ws.take_dense(n, h.cols())?;
                exec.spmm_into(adj, h, ctx.raw_sum_semiring(), irr, &mut agg)?;
                let mut selfed = ws.take_dense(n, h.cols())?;
                exec.map_into(h, 1, |v| (1.0 + GIN_EPS) * v, &mut selfed)?;
                exec.zip_assign(&mut selfed, &agg, 1, |a, b| a + b)?;
                ws.give_dense(agg);
                let mut hidden = ws.take_dense(n, self.cfg.k_out)?;
                exec.gemm_into(&selfed, &self.w1, &mut hidden)?;
                ws.give_dense(selfed);
                hidden
            }
            OpOrder::UpdateFirst => {
                // (1+ε)(H·W₁) + A·(H·W₁)
                let mut z = ws.take_dense(n, self.cfg.k_out)?;
                exec.gemm_into(h, &self.w1, &mut z)?;
                let mut agg = ws.take_dense(n, self.cfg.k_out)?;
                exec.spmm_into(adj, &z, ctx.raw_sum_semiring(), irr, &mut agg)?;
                let mut selfed = ws.take_dense(n, self.cfg.k_out)?;
                exec.map_into(&z, 1, |v| (1.0 + GIN_EPS) * v, &mut selfed)?;
                ws.give_dense(z);
                exec.zip_assign(&mut selfed, &agg, 1, |a, b| a + b)?;
                ws.give_dense(agg);
                selfed
            }
        };
        exec.map_assign(&mut hidden, 1, |v| v.max(0.0));
        let mut out = ws.take_dense(n, self.cfg.k_out)?;
        exec.gemm_into(&hidden, &self.w2, &mut out)?;
        ws.give_dense(hidden);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granii_graph::generators;
    use granii_matrix::device::{DeviceKind, Engine};
    use granii_matrix::PrimitiveKind;

    #[test]
    fn orders_agree_numerically() {
        let g = generators::power_law(25, 3, 9).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let h = DenseMatrix::random(25, 6, 1.0, 4);
        let layer = Gin::new(LayerConfig::new(6, 3), 8);
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);
        let a = layer
            .forward(&exec, &ctx, &h, OpOrder::AggregateFirst)
            .unwrap();
        let b = layer
            .forward(&exec, &ctx, &h, OpOrder::UpdateFirst)
            .unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
    }

    #[test]
    fn update_first_aggregates_at_output_width() {
        let g = generators::ring(12).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let h = DenseMatrix::random(12, 8, 1.0, 4);
        let layer = Gin::new(LayerConfig::new(8, 2), 8);
        let engine = Engine::modeled(DeviceKind::H100);
        let exec = Exec::real(&engine);
        layer
            .forward(&exec, &ctx, &h, OpOrder::UpdateFirst)
            .unwrap();
        let spmm = engine
            .take_profile()
            .entries
            .into_iter()
            .find(|e| e.kind == PrimitiveKind::SpmmUnweighted)
            .unwrap();
        assert_eq!(spmm.stats.bytes_written, (12 * 2 * 4) as u64);
    }

    #[test]
    fn gin_ignores_self_loops_graph() {
        // GIN aggregates over the raw adjacency: an isolated node's output
        // depends only on its own features.
        let g = granii_graph::Graph::from_edges(3, &[(0, 1), (1, 0)]).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let layer = Gin::new(LayerConfig::new(2, 2), 1);
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);
        let h1 = DenseMatrix::from_rows(&[
            [1.0, 0.0].as_slice(),
            [0.0, 1.0].as_slice(),
            [5.0, 5.0].as_slice(),
        ])
        .unwrap();
        let mut h2 = h1.clone();
        h2.set(0, 0, 9.0); // change node 0; node 2 must be unaffected
        let o1 = layer
            .forward(&exec, &ctx, &h1, OpOrder::AggregateFirst)
            .unwrap();
        let o2 = layer
            .forward(&exec, &ctx, &h2, OpOrder::AggregateFirst)
            .unwrap();
        assert_eq!(o1.row(2), o2.row(2));
        assert_ne!(o1.row(1), o2.row(1));
    }
}
