//! Baseline-system emulation: the *default* primitive compositions of
//! WiseGraph and DGL (paper §VI-B "Baseline Systems").
//!
//! The baselines matter to the evaluation only through which composition they
//! run and what per-iteration bookkeeping they pay:
//!
//! - **WiseGraph** applies the config-based (embedding-size) reordering of
//!   ref.\[17\] to every model, always recomputes GAT's update for increasing
//!   embedding sizes, and computes normalization degrees with a *binning*
//!   scatter-add whose atomic contention is pathological on dense graphs
//!   (§VI-C1) — every iteration.
//! - **DGL** uses dynamic normalization for the GCN family (recomputing
//!   degrees by a cheap scan every forward call, as `dgl.nn.GraphConv` really
//!   does), applies config-based reordering only to GCN, keeps GIN/SGC/TAGCN
//!   at aggregate-first, and always reuses GAT's updated embeddings.

use serde::{Deserialize, Serialize};

use granii_matrix::DenseMatrix;

use crate::models::{GnnLayer, Prepared};
use crate::spec::{Composition, GatStrategy, LayerConfig, ModelKind, NormStrategy, OpOrder};
use crate::{Exec, GraphCtx, Result};

/// The baseline GNN systems of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum System {
    /// WiseGraph (EuroSys '24) — the state-of-the-art baseline.
    WiseGraph,
    /// DGL v2.4 (PyTorch backend).
    Dgl,
}

impl System {
    /// Both systems, in the paper's presentation order.
    pub const ALL: [System; 2] = [System::WiseGraph, System::Dgl];

    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            System::WiseGraph => "wisegraph",
            System::Dgl => "dgl",
        }
    }

    /// The composition this system's available implementation runs by default
    /// for a model and layer configuration.
    pub fn default_composition(self, kind: ModelKind, cfg: LayerConfig) -> Composition {
        let config_order = if cfg.k_in > cfg.k_out {
            OpOrder::UpdateFirst
        } else {
            OpOrder::AggregateFirst
        };
        match (self, kind) {
            (System::WiseGraph, ModelKind::Gcn) => {
                Composition::Gcn(NormStrategy::Dynamic, config_order)
            }
            (System::WiseGraph, ModelKind::Sgc) => {
                Composition::Sgc(NormStrategy::Dynamic, config_order)
            }
            (System::WiseGraph, ModelKind::Tagcn) => {
                Composition::Tagcn(NormStrategy::Dynamic, config_order)
            }
            (System::WiseGraph, ModelKind::Gin) => Composition::Gin(config_order),
            (System::WiseGraph, ModelKind::Gat) => Composition::Gat(if cfg.k_in < cfg.k_out {
                GatStrategy::Recompute
            } else {
                GatStrategy::Reuse
            }),
            (System::WiseGraph, ModelKind::Sage) => Composition::Sage(config_order),
            (System::Dgl, ModelKind::Gcn) => Composition::Gcn(NormStrategy::Dynamic, config_order),
            (System::Dgl, ModelKind::Gin) => Composition::Gin(OpOrder::AggregateFirst),
            (System::Dgl, ModelKind::Sgc) => {
                Composition::Sgc(NormStrategy::Dynamic, OpOrder::AggregateFirst)
            }
            (System::Dgl, ModelKind::Tagcn) => {
                Composition::Tagcn(NormStrategy::Dynamic, OpOrder::AggregateFirst)
            }
            (System::Dgl, ModelKind::Gat) => Composition::Gat(GatStrategy::Reuse),
            (System::Dgl, ModelKind::Sage) => Composition::Sage(OpOrder::AggregateFirst),
        }
    }

    /// Whether the model's implementation in this system recomputes degree
    /// normalization every forward call, and how.
    fn normalization_path(self, kind: ModelKind) -> Option<NormPath> {
        let uses_norm = matches!(kind, ModelKind::Gcn | ModelKind::Sgc | ModelKind::Tagcn);
        if !uses_norm {
            return None;
        }
        Some(match self {
            System::WiseGraph => NormPath::Binning,
            System::Dgl => NormPath::Scan,
        })
    }
}

impl std::fmt::Display for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How a baseline computes normalization degrees each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NormPath {
    /// WiseGraph's scatter-add binning (atomics; §VI-C1).
    Binning,
    /// DGL's row-pointer scan.
    Scan,
}

/// A model running under a baseline system's default choices.
///
/// # Example
///
/// ```
/// use granii_gnn::system::{BaselineRunner, System};
/// use granii_gnn::spec::{LayerConfig, ModelKind};
/// use granii_gnn::{Exec, GraphCtx};
/// use granii_graph::generators;
/// use granii_matrix::device::{DeviceKind, Engine};
/// use granii_matrix::DenseMatrix;
///
/// # fn main() -> Result<(), granii_gnn::GnnError> {
/// let graph = generators::ring(10)?;
/// let ctx = GraphCtx::new(&graph)?;
/// let engine = Engine::modeled(DeviceKind::H100);
/// let exec = Exec::real(&engine);
/// let runner = BaselineRunner::new(System::Dgl, ModelKind::Gcn, LayerConfig::new(8, 4), 1, &exec, &ctx)?;
/// let h = DenseMatrix::random(10, 8, 1.0, 2);
/// let out = runner.iterate(&exec, &ctx, &h)?;
/// assert_eq!(out.shape(), (10, 4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BaselineRunner {
    system: System,
    layer: GnnLayer,
    comp: Composition,
    prepared: Prepared,
}

impl BaselineRunner {
    /// Builds the baseline: instantiates the layer, picks the system's default
    /// composition, and runs its preparation.
    ///
    /// # Errors
    ///
    /// Propagates layer construction/preparation errors.
    pub fn new(
        system: System,
        kind: ModelKind,
        cfg: LayerConfig,
        seed: u64,
        exec: &Exec,
        ctx: &GraphCtx,
    ) -> Result<Self> {
        let layer = GnnLayer::new(kind, cfg, seed)?;
        let comp = system.default_composition(kind, cfg);
        let prepared = layer.prepare(exec, ctx, comp)?;
        Ok(Self {
            system,
            layer,
            comp,
            prepared,
        })
    }

    /// The composition the baseline runs.
    pub fn composition(&self) -> Composition {
        self.comp
    }

    /// The wrapped layer (same parameters GRANII's runner uses, for output
    /// comparison).
    pub fn layer(&self) -> &GnnLayer {
        &self.layer
    }

    /// One baseline iteration: per-iteration normalization bookkeeping (the
    /// binning/scan degree computation plus the `d^{-1/2}` map) followed by
    /// the forward pass under the default composition.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn iterate(&self, exec: &Exec, ctx: &GraphCtx, h: &DenseMatrix) -> Result<DenseMatrix> {
        let _span = granii_telemetry::span!(
            "baseline.iterate",
            system = self.system.name(),
            model = self.layer.kind().name(),
            nodes = ctx.graph().num_nodes(),
        );
        granii_telemetry::counter_add("baseline.iterations", 1);
        self.charge_normalization(exec, ctx);
        self.layer.forward(exec, ctx, &self.prepared, h, self.comp)
    }

    /// Charges the per-iteration normalization work without running a forward
    /// (used by the training harness, which forwards through the tape).
    pub fn charge_normalization(&self, exec: &Exec, ctx: &GraphCtx) {
        if let Some(path) = self.system.normalization_path(self.layer.kind()) {
            let degs = match path {
                NormPath::Binning => exec.degrees_by_binning(ctx.adj()),
                NormPath::Scan => exec.degrees_by_scan(ctx.adj()),
            };
            // d^{-1/2} map over the nodes.
            let dm = DenseMatrix::from_vec(degs.len(), 1, degs).expect("length matches");
            let _ = exec.map(&dm, 2, |v| if v > 0.0 { 1.0 / v.sqrt() } else { 0.0 });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granii_graph::{datasets::Dataset, datasets::Scale, generators};
    use granii_matrix::device::{DeviceKind, Engine};
    use granii_matrix::PrimitiveKind;

    #[test]
    fn config_based_reordering_follows_embedding_sizes() {
        let shrink = LayerConfig::new(256, 32);
        let grow = LayerConfig::new(32, 256);
        assert_eq!(
            System::WiseGraph.default_composition(ModelKind::Gcn, shrink),
            Composition::Gcn(NormStrategy::Dynamic, OpOrder::UpdateFirst)
        );
        assert_eq!(
            System::WiseGraph.default_composition(ModelKind::Gcn, grow),
            Composition::Gcn(NormStrategy::Dynamic, OpOrder::AggregateFirst)
        );
        // DGL does not reorder GIN/SGC.
        assert_eq!(
            System::Dgl.default_composition(ModelKind::Gin, shrink),
            Composition::Gin(OpOrder::AggregateFirst)
        );
        assert_eq!(
            System::Dgl.default_composition(ModelKind::Sgc, shrink),
            Composition::Sgc(NormStrategy::Dynamic, OpOrder::AggregateFirst)
        );
    }

    #[test]
    fn gat_defaults_differ_between_systems() {
        let grow = LayerConfig::new(32, 256);
        assert_eq!(
            System::WiseGraph.default_composition(ModelKind::Gat, grow),
            Composition::Gat(GatStrategy::Recompute)
        );
        assert_eq!(
            System::Dgl.default_composition(ModelKind::Gat, grow),
            Composition::Gat(GatStrategy::Reuse)
        );
    }

    #[test]
    fn wisegraph_charges_binning_every_iteration() {
        let g = generators::power_law(50, 4, 1).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let engine = Engine::modeled(DeviceKind::A100);
        let exec = Exec::real(&engine);
        let runner = BaselineRunner::new(
            System::WiseGraph,
            ModelKind::Gcn,
            LayerConfig::new(8, 8),
            1,
            &exec,
            &ctx,
        )
        .unwrap();
        engine.take_profile();
        let h = DenseMatrix::random(50, 8, 1.0, 2);
        runner.iterate(&exec, &ctx, &h).unwrap();
        runner.iterate(&exec, &ctx, &h).unwrap();
        let binnings = engine
            .take_profile()
            .entries
            .iter()
            .filter(|e| e.kind == PrimitiveKind::Binning)
            .count();
        assert_eq!(binnings, 2);
    }

    #[test]
    fn dgl_scans_instead_of_binning() {
        let g = generators::power_law(50, 4, 1).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let engine = Engine::modeled(DeviceKind::A100);
        let exec = Exec::real(&engine);
        let runner = BaselineRunner::new(
            System::Dgl,
            ModelKind::Gcn,
            LayerConfig::new(8, 8),
            1,
            &exec,
            &ctx,
        )
        .unwrap();
        engine.take_profile();
        let h = DenseMatrix::random(50, 8, 1.0, 2);
        runner.iterate(&exec, &ctx, &h).unwrap();
        let kinds: Vec<_> = engine
            .take_profile()
            .entries
            .iter()
            .map(|e| e.kind)
            .collect();
        assert!(!kinds.contains(&PrimitiveKind::Binning));
    }

    #[test]
    fn gin_pays_no_normalization() {
        let g = generators::ring(20).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let engine = Engine::modeled(DeviceKind::H100);
        let exec = Exec::real(&engine);
        let runner = BaselineRunner::new(
            System::WiseGraph,
            ModelKind::Gin,
            LayerConfig::new(4, 4),
            1,
            &exec,
            &ctx,
        )
        .unwrap();
        engine.take_profile();
        let h = DenseMatrix::random(20, 4, 1.0, 2);
        runner.iterate(&exec, &ctx, &h).unwrap();
        let kinds: Vec<_> = engine
            .take_profile()
            .entries
            .iter()
            .map(|e| e.kind)
            .collect();
        assert!(!kinds.contains(&PrimitiveKind::Binning));
    }

    /// The §VI-C1 observation end-to-end: on a dense graph, WiseGraph's GCN
    /// iteration is dominated by binning on the A100, and a precompute
    /// composition that avoids it is much faster.
    #[test]
    fn binning_dominates_on_dense_graphs_a100() {
        let g = Dataset::Mycielskian17.load(Scale::Tiny).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let engine = Engine::modeled(DeviceKind::A100);
        let exec = Exec::virtual_only(&engine);
        let cfg = LayerConfig::new(32, 32);
        let h = DenseMatrix::zeros(ctx.num_nodes(), 32).unwrap();

        let runner =
            BaselineRunner::new(System::WiseGraph, ModelKind::Gcn, cfg, 1, &exec, &ctx).unwrap();
        engine.take_profile();
        runner.iterate(&exec, &ctx, &h).unwrap();
        let baseline = engine.take_profile().total_seconds();

        let layer = GnnLayer::new(ModelKind::Gcn, cfg, 1).unwrap();
        let comp = Composition::Gcn(NormStrategy::Precompute, OpOrder::AggregateFirst);
        let p = layer.prepare(&exec, &ctx, comp).unwrap();
        engine.take_profile();
        layer.forward(&exec, &ctx, &p, &h, comp).unwrap();
        let granii = engine.take_profile().total_seconds();
        assert!(
            baseline > 2.0 * granii,
            "baseline {baseline} vs granii {granii}"
        );
    }
}
