//! Model kinds, layer configuration, and the primitive-composition taxonomy.
//!
//! A *composition* is a particular selection and ordering of sparse/dense
//! matrix primitives implementing a GNN layer (the paper's §III case study).
//! Every composition of a model computes the same function; they differ only
//! in cost, and which is cheapest depends on the input — that is the
//! optimization space GRANII searches.

use serde::{Deserialize, Serialize};

use crate::{GnnError, Result};

/// The GNN models of the paper's evaluation (§VI-B), plus GraphSAGE (§VI-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ModelKind {
    /// Graph Convolutional Network (Kipf & Welling).
    Gcn,
    /// Graph Isomorphism Network (Xu et al.).
    Gin,
    /// Simple Graph Convolution (Wu et al.) — `k`-hop propagation, no
    /// intermediate nonlinearity.
    Sgc,
    /// Topology-Adaptive GCN (Du et al.) — per-hop weights.
    Tagcn,
    /// Graph Attention Network (Veličković et al.), single head.
    Gat,
    /// GraphSAGE (Hamilton et al.) with mean aggregation; evaluated with
    /// neighborhood sampling.
    Sage,
}

impl ModelKind {
    /// The five models of the main evaluation (Table III order).
    pub const EVAL: [ModelKind; 5] = [
        ModelKind::Gcn,
        ModelKind::Gin,
        ModelKind::Sgc,
        ModelKind::Tagcn,
        ModelKind::Gat,
    ];

    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Gcn => "gcn",
            ModelKind::Gin => "gin",
            ModelKind::Sgc => "sgc",
            ModelKind::Tagcn => "tagcn",
            ModelKind::Gat => "gat",
            ModelKind::Sage => "sage",
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of one GNN layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerConfig {
    /// Input embedding size (`K1` in the paper's complexity tables).
    pub k_in: usize,
    /// Output embedding size (`K2`).
    pub k_out: usize,
    /// Propagation hops for SGC/TAGCN (ignored by other models).
    pub hops: usize,
}

impl LayerConfig {
    /// A layer configuration with the default hop count (2).
    pub fn new(k_in: usize, k_out: usize) -> Self {
        Self {
            k_in,
            k_out,
            hops: 2,
        }
    }

    /// Validates embedding sizes and hops.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidConfig`] for zero sizes or zero hops.
    pub fn validate(&self) -> Result<()> {
        if self.k_in == 0 || self.k_out == 0 {
            return Err(GnnError::InvalidConfig(format!(
                "embedding sizes must be > 0 (got {} -> {})",
                self.k_in, self.k_out
            )));
        }
        if self.hops == 0 {
            return Err(GnnError::InvalidConfig("hops must be > 0".into()));
        }
        Ok(())
    }
}

/// How GCN-family layers handle degree normalization (paper §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NormStrategy {
    /// Eq. 2: normalization folded into the features with two row-broadcasts
    /// every iteration. Cheaper on dense graphs (aggregation dominates and can
    /// stay unweighted).
    Dynamic,
    /// Eq. 3: normalized adjacency `Ñ = D^{-1/2} Ã D^{-1/2}` precomputed once
    /// via an SDDMM-style edge scaling; aggregation becomes weighted. Cheaper
    /// on sparse graphs (no per-node broadcast passes).
    Precompute,
}

/// Where the dense update (GEMM with the weight matrix) is placed relative to
/// aggregation — the config-based reordering of ref.\[17\] the paper's baselines use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpOrder {
    /// Aggregate at width `K1`, then update (`(A·H)·W`). Better when
    /// `K1 <= K2`.
    AggregateFirst,
    /// Update to width `K2` first, then aggregate (`A·(H·W)`). Better when
    /// `K1 > K2`.
    UpdateFirst,
}

/// Whether GAT reuses the updated embeddings `Θ = H·W` from the attention
/// stage for aggregation, or recomputes the update after aggregating the raw
/// features (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GatStrategy {
    /// `H' = σ(α · Θ)`: aggregation runs at width `K2`.
    Reuse,
    /// `H' = σ((α · H) · W)`: aggregation runs at width `K1` plus an extra
    /// GEMM. Only sensible when `K1 < K2`.
    Recompute,
}

/// A concrete, executable primitive composition for one model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Composition {
    /// GCN: normalization strategy × operator order.
    Gcn(NormStrategy, OpOrder),
    /// GIN: operator order (the linear MLP layer commutes with sum
    /// aggregation).
    Gin(OpOrder),
    /// SGC: normalization strategy × operator order.
    Sgc(NormStrategy, OpOrder),
    /// TAGCN: normalization strategy × operator order.
    Tagcn(NormStrategy, OpOrder),
    /// GAT: reuse vs recompute.
    Gat(GatStrategy),
    /// GraphSAGE: operator order of the neighbor branch.
    Sage(OpOrder),
}

impl Composition {
    /// Which model this composition belongs to.
    pub fn model(self) -> ModelKind {
        match self {
            Composition::Gcn(..) => ModelKind::Gcn,
            Composition::Gin(..) => ModelKind::Gin,
            Composition::Sgc(..) => ModelKind::Sgc,
            Composition::Tagcn(..) => ModelKind::Tagcn,
            Composition::Gat(..) => ModelKind::Gat,
            Composition::Sage(..) => ModelKind::Sage,
        }
    }

    /// All executable compositions of a model, in a stable order.
    ///
    /// These are the *promoted* candidates GRANII's offline stage hands to the
    /// online selector (the full enumerated forests, before pruning, are
    /// produced by `granii-core`'s association-tree machinery).
    pub fn all_for(model: ModelKind) -> Vec<Composition> {
        use GatStrategy::*;
        use NormStrategy::*;
        use OpOrder::*;
        match model {
            ModelKind::Gcn => vec![
                Composition::Gcn(Dynamic, AggregateFirst),
                Composition::Gcn(Dynamic, UpdateFirst),
                Composition::Gcn(Precompute, AggregateFirst),
                Composition::Gcn(Precompute, UpdateFirst),
            ],
            ModelKind::Gin => {
                vec![
                    Composition::Gin(AggregateFirst),
                    Composition::Gin(UpdateFirst),
                ]
            }
            ModelKind::Sgc => vec![
                Composition::Sgc(Dynamic, AggregateFirst),
                Composition::Sgc(Dynamic, UpdateFirst),
                Composition::Sgc(Precompute, AggregateFirst),
                Composition::Sgc(Precompute, UpdateFirst),
            ],
            ModelKind::Tagcn => vec![
                Composition::Tagcn(Dynamic, AggregateFirst),
                Composition::Tagcn(Dynamic, UpdateFirst),
                Composition::Tagcn(Precompute, AggregateFirst),
                Composition::Tagcn(Precompute, UpdateFirst),
            ],
            ModelKind::Gat => vec![Composition::Gat(Reuse), Composition::Gat(Recompute)],
            ModelKind::Sage => {
                vec![
                    Composition::Sage(AggregateFirst),
                    Composition::Sage(UpdateFirst),
                ]
            }
        }
    }

    /// A stable short name (used in reports).
    pub fn name(self) -> String {
        match self {
            Composition::Gcn(n, o) | Composition::Sgc(n, o) | Composition::Tagcn(n, o) => {
                format!(
                    "{}/{}+{}",
                    self.model(),
                    match n {
                        NormStrategy::Dynamic => "dynamic",
                        NormStrategy::Precompute => "precompute",
                    },
                    order_name(o)
                )
            }
            Composition::Gin(o) | Composition::Sage(o) => {
                format!("{}/{}", self.model(), order_name(o))
            }
            Composition::Gat(s) => format!(
                "gat/{}",
                match s {
                    GatStrategy::Reuse => "reuse",
                    GatStrategy::Recompute => "recompute",
                }
            ),
        }
    }
}

fn order_name(o: OpOrder) -> &'static str {
    match o {
        OpOrder::AggregateFirst => "agg-first",
        OpOrder::UpdateFirst => "update-first",
    }
}

impl std::fmt::Display for Composition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_counts_per_model() {
        assert_eq!(Composition::all_for(ModelKind::Gcn).len(), 4);
        assert_eq!(Composition::all_for(ModelKind::Gin).len(), 2);
        assert_eq!(Composition::all_for(ModelKind::Sgc).len(), 4);
        assert_eq!(Composition::all_for(ModelKind::Tagcn).len(), 4);
        assert_eq!(Composition::all_for(ModelKind::Gat).len(), 2);
        assert_eq!(Composition::all_for(ModelKind::Sage).len(), 2);
    }

    #[test]
    fn compositions_belong_to_their_model() {
        for kind in [
            ModelKind::Gcn,
            ModelKind::Gin,
            ModelKind::Sgc,
            ModelKind::Tagcn,
            ModelKind::Gat,
            ModelKind::Sage,
        ] {
            for comp in Composition::all_for(kind) {
                assert_eq!(comp.model(), kind);
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = ModelKind::EVAL
            .iter()
            .flat_map(|&k| Composition::all_for(k))
            .map(|c| c.name())
            .collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn layer_config_validation() {
        assert!(LayerConfig::new(32, 32).validate().is_ok());
        assert!(LayerConfig::new(0, 32).validate().is_err());
        assert!(LayerConfig::new(32, 0).validate().is_err());
        assert!(LayerConfig {
            k_in: 8,
            k_out: 8,
            hops: 0
        }
        .validate()
        .is_err());
    }
}
