use std::fmt;

use granii_graph::GraphError;
use granii_matrix::MatrixError;

/// Errors produced by GNN model construction and execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum GnnError {
    /// Node-feature matrix rows did not match the graph's node count.
    FeatureMismatch {
        /// Nodes in the graph.
        nodes: usize,
        /// Rows in the feature matrix.
        rows: usize,
    },
    /// Layer input width did not match the layer's configured input size.
    DimensionMismatch {
        /// Expected input embedding size.
        expected: usize,
        /// Observed input embedding size.
        got: usize,
    },
    /// A model configuration was invalid (e.g. zero embedding size).
    InvalidConfig(String),
    /// An underlying matrix kernel failed.
    Matrix(MatrixError),
    /// An underlying graph operation failed.
    Graph(GraphError),
}

impl fmt::Display for GnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GnnError::FeatureMismatch { nodes, rows } => {
                write!(
                    f,
                    "feature matrix has {rows} rows but the graph has {nodes} nodes"
                )
            }
            GnnError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "layer expects input embedding size {expected}, got {got}"
                )
            }
            GnnError::InvalidConfig(msg) => write!(f, "invalid model configuration: {msg}"),
            GnnError::Matrix(e) => write!(f, "matrix error: {e}"),
            GnnError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for GnnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GnnError::Matrix(e) => Some(e),
            GnnError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MatrixError> for GnnError {
    fn from(e: MatrixError) -> Self {
        GnnError::Matrix(e)
    }
}

impl From<GraphError> for GnnError {
    fn from(e: GraphError) -> Self {
        GnnError::Graph(e)
    }
}
