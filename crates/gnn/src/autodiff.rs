//! Reverse-mode autodiff over the GNN primitive set.
//!
//! The paper's training measurements (§VI-C) include the backward pass, which
//! GRANII deliberately does *not* optimize ("GRANII does not perform operator
//! selection for the backward pass"). This module reproduces that situation
//! faithfully: a small tape records the forward primitives, and each op's
//! gradient is itself a composition of the same primitives — the gradient of
//! SpMM is an SpMM over the transposed adjacency (plus an SDDMM for edge-value
//! gradients), exactly as in DGL's implementation. Every forward *and*
//! backward primitive is charged through the [`Exec`], so training latencies
//! include both passes.

use std::sync::Arc;

use granii_matrix::ops::BroadcastOp;
use granii_matrix::{CsrMatrix, DenseMatrix, MatrixError, Semiring, WorkStats};

use crate::{Exec, GnnError, Result};

/// Handle to a tape value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

/// A tape value: dense matrix or the value vector of a fixed sparse pattern.
#[derive(Debug, Clone)]
enum Value {
    Dense(DenseMatrix),
    /// Values attached to `pattern` (attention scores, etc.).
    Sparse {
        pattern: Arc<CsrMatrix>,
        values: Vec<f32>,
    },
}

/// Gradient accumulated for a tape value.
#[derive(Debug, Clone)]
pub enum Grad {
    /// Gradient of a dense value.
    Dense(DenseMatrix),
    /// Gradient of a sparse value's entries.
    Sparse(Vec<f32>),
}

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    Gemm {
        a: usize,
        b: usize,
    },
    /// `adj · x` with a constant (non-differentiable) adjacency.
    SpmmConst {
        adj: Arc<CsrMatrix>,
        x: usize,
        semiring: Semiring,
        irr: f64,
    },
    /// `A(s) · x` where the adjacency *values* are the sparse var `s`.
    SpmmVar {
        s: usize,
        x: usize,
        irr: f64,
    },
    RowBroadcast {
        d: Arc<Vec<f32>>,
        x: usize,
    },
    Relu {
        x: usize,
    },
    Scale {
        x: usize,
        c: f32,
    },
    Add {
        a: usize,
        b: usize,
    },
    /// Per-edge `ul_i + vr_j` over a constant mask (GAT logits).
    SddmmUAddV {
        mask: Arc<CsrMatrix>,
        ul: usize,
        vr: usize,
        irr: f64,
    },
    /// Leaky ReLU over sparse values.
    SparseLeakyRelu {
        x: usize,
        slope: f32,
    },
    /// Row-wise softmax over sparse values.
    EdgeSoftmax {
        x: usize,
        irr: f64,
    },
}

struct Node {
    value: Value,
    op: Op,
    needs_grad: bool,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("op", &self.op)
            .field("needs_grad", &self.needs_grad)
            .finish()
    }
}

/// The autodiff tape. Build the forward computation through its methods, then
/// call [`Tape::backward_mse`] to get gradients for every parameter.
///
/// # Example
///
/// ```
/// use granii_gnn::autodiff::Tape;
/// use granii_gnn::Exec;
/// use granii_matrix::device::{DeviceKind, Engine};
/// use granii_matrix::DenseMatrix;
///
/// # fn main() -> Result<(), granii_gnn::GnnError> {
/// let engine = Engine::modeled(DeviceKind::Cpu);
/// let exec = Exec::real(&engine);
/// let mut tape = Tape::new(exec);
/// let x = tape.input(DenseMatrix::from_rows(&[[1.0, 2.0].as_slice()])?);
/// let w = tape.param(DenseMatrix::from_rows(&[[1.0].as_slice(), [1.0].as_slice()])?);
/// let y = tape.gemm(x, w)?;
/// let target = DenseMatrix::from_rows(&[[5.0].as_slice()])?;
/// let (loss, grads) = tape.backward_mse(y, &target)?;
/// assert!((loss - 4.0).abs() < 1e-6); // (3 - 5)^2
/// assert!(grads[&w].is_some());
/// # Ok(())
/// # }
/// ```
pub struct Tape<'e> {
    exec: Exec<'e>,
    nodes: Vec<Node>,
}

impl std::fmt::Debug for Tape<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tape")
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

/// Map from parameter [`Var`]s to their gradients after a backward pass.
#[derive(Debug, Default)]
pub struct Grads {
    by_node: Vec<Option<Grad>>,
}

impl std::ops::Index<&Var> for Grads {
    type Output = Option<Grad>;
    fn index(&self, v: &Var) -> &Self::Output {
        &self.by_node[v.0]
    }
}

impl Grads {
    /// Dense gradient of a parameter, if one was accumulated.
    pub fn dense(&self, v: Var) -> Option<&DenseMatrix> {
        match self.by_node.get(v.0)?.as_ref()? {
            Grad::Dense(m) => Some(m),
            Grad::Sparse(_) => None,
        }
    }
}

impl<'e> Tape<'e> {
    /// Creates an empty tape over the given executor.
    pub fn new(exec: Exec<'e>) -> Self {
        Self {
            exec,
            nodes: Vec::new(),
        }
    }

    /// Registers a non-differentiable input.
    pub fn input(&mut self, m: DenseMatrix) -> Var {
        self.push(Value::Dense(m), Op::Leaf, false)
    }

    /// Registers a trainable parameter (gradient will be produced).
    pub fn param(&mut self, m: DenseMatrix) -> Var {
        self.push(Value::Dense(m), Op::Leaf, true)
    }

    fn push(&mut self, value: Value, op: Op, needs_grad: bool) -> Var {
        self.nodes.push(Node {
            value,
            op,
            needs_grad,
        });
        Var(self.nodes.len() - 1)
    }

    fn dense(&self, v: Var) -> Result<&DenseMatrix> {
        match &self.nodes[v.0].value {
            Value::Dense(m) => Ok(m),
            Value::Sparse { .. } => Err(GnnError::InvalidConfig(
                "expected a dense tape value".into(),
            )),
        }
    }

    fn sparse(&self, v: Var) -> Result<(&Arc<CsrMatrix>, &[f32])> {
        match &self.nodes[v.0].value {
            Value::Sparse { pattern, values } => Ok((pattern, values)),
            Value::Dense(_) => Err(GnnError::InvalidConfig(
                "expected a sparse tape value".into(),
            )),
        }
    }

    /// The dense value of a var (e.g. the final prediction).
    ///
    /// # Errors
    ///
    /// Returns an error if the var is sparse.
    pub fn value(&self, v: Var) -> Result<&DenseMatrix> {
        self.dense(v)
    }

    /// Dense matrix multiplication.
    ///
    /// # Errors
    ///
    /// Propagates kernel/shape errors.
    pub fn gemm(&mut self, a: Var, b: Var) -> Result<Var> {
        let out = self.exec.gemm(self.dense(a)?, self.dense(b)?)?;
        let needs = self.nodes[a.0].needs_grad || self.nodes[b.0].needs_grad;
        Ok(self.push(Value::Dense(out), Op::Gemm { a: a.0, b: b.0 }, needs))
    }

    /// `adj · x` with a constant adjacency.
    ///
    /// # Errors
    ///
    /// Propagates kernel/shape errors. Max/min semirings are rejected (their
    /// subgradients are not implemented; no evaluated model trains with them).
    pub fn spmm(
        &mut self,
        adj: Arc<CsrMatrix>,
        x: Var,
        semiring: Semiring,
        irr: f64,
    ) -> Result<Var> {
        use granii_matrix::ReduceOp;
        if matches!(semiring.reduce, ReduceOp::Max | ReduceOp::Min) {
            return Err(GnnError::InvalidConfig(
                "max/min aggregation is not differentiable on the tape".into(),
            ));
        }
        let out = self.exec.spmm(&adj, self.dense(x)?, semiring, irr)?;
        let needs = self.nodes[x.0].needs_grad;
        Ok(self.push(
            Value::Dense(out),
            Op::SpmmConst {
                adj,
                x: x.0,
                semiring,
                irr,
            },
            needs,
        ))
    }

    /// `A(s) · x` where `s` is a sparse var carrying the edge values
    /// (GAT's `α · Θ`).
    ///
    /// # Errors
    ///
    /// Propagates kernel/shape errors.
    pub fn spmm_var(&mut self, s: Var, x: Var, irr: f64) -> Result<Var> {
        let (pattern, values) = self.sparse(s)?;
        let weighted = pattern
            .clone()
            .as_ref()
            .clone()
            .with_values(values.to_vec())?;
        let out = self
            .exec
            .spmm(&weighted, self.dense(x)?, Semiring::plus_mul(), irr)?;
        let needs = self.nodes[s.0].needs_grad || self.nodes[x.0].needs_grad;
        Ok(self.push(
            Value::Dense(out),
            Op::SpmmVar {
                s: s.0,
                x: x.0,
                irr,
            },
            needs,
        ))
    }

    /// Row-broadcast by a constant vector.
    ///
    /// # Errors
    ///
    /// Propagates kernel/shape errors.
    pub fn row_broadcast(&mut self, d: Arc<Vec<f32>>, x: Var) -> Result<Var> {
        let out = self
            .exec
            .row_broadcast(&d, self.dense(x)?, BroadcastOp::Mul)?;
        let needs = self.nodes[x.0].needs_grad;
        Ok(self.push(Value::Dense(out), Op::RowBroadcast { d, x: x.0 }, needs))
    }

    /// Element-wise ReLU.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn relu(&mut self, x: Var) -> Result<Var> {
        let out = self.exec.map(self.dense(x)?, 1, |v| v.max(0.0));
        let needs = self.nodes[x.0].needs_grad;
        Ok(self.push(Value::Dense(out), Op::Relu { x: x.0 }, needs))
    }

    /// Element-wise scaling by a constant.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn scale(&mut self, x: Var, c: f32) -> Result<Var> {
        let out = self.exec.map(self.dense(x)?, 1, move |v| c * v);
        let needs = self.nodes[x.0].needs_grad;
        Ok(self.push(Value::Dense(out), Op::Scale { x: x.0, c }, needs))
    }

    /// Element-wise sum of two dense vars.
    ///
    /// # Errors
    ///
    /// Propagates kernel/shape errors.
    pub fn add(&mut self, a: Var, b: Var) -> Result<Var> {
        let out = self
            .exec
            .zip(self.dense(a)?, self.dense(b)?, 1, |x, y| x + y)?;
        let needs = self.nodes[a.0].needs_grad || self.nodes[b.0].needs_grad;
        Ok(self.push(Value::Dense(out), Op::Add { a: a.0, b: b.0 }, needs))
    }

    /// GAT logits: per-edge `ul_i + vr_j` over a constant mask. `ul` and `vr`
    /// are `n x 1` dense vars.
    ///
    /// # Errors
    ///
    /// Propagates kernel/shape errors.
    pub fn sddmm_u_add_v(
        &mut self,
        mask: Arc<CsrMatrix>,
        ul: Var,
        vr: Var,
        irr: f64,
    ) -> Result<Var> {
        let ul_m = self.dense(ul)?;
        let vr_m = self.dense(vr)?;
        if ul_m.cols() != 1 || vr_m.cols() != 1 {
            return Err(GnnError::Matrix(MatrixError::ShapeMismatch {
                op: "sddmm_u_add_v",
                lhs: ul_m.shape(),
                rhs: vr_m.shape(),
            }));
        }
        let out = self
            .exec
            .sddmm_u_add_v(&mask, ul_m.as_slice(), vr_m.as_slice(), irr)?;
        let values = out.values().expect("sddmm output is weighted").to_vec();
        let needs = self.nodes[ul.0].needs_grad || self.nodes[vr.0].needs_grad;
        Ok(self.push(
            Value::Sparse {
                pattern: mask.clone(),
                values,
            },
            Op::SddmmUAddV {
                mask,
                ul: ul.0,
                vr: vr.0,
                irr,
            },
            needs,
        ))
    }

    /// Leaky ReLU over a sparse var's values.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn sparse_leaky_relu(&mut self, x: Var, slope: f32) -> Result<Var> {
        let (pattern, values) = self.sparse(x)?;
        let pattern = pattern.clone();
        let weighted = pattern.as_ref().clone().with_values(values.to_vec())?;
        let out = self
            .exec
            .map_csr_values(&weighted, move |v| if v >= 0.0 { v } else { slope * v })?;
        let values = out.values().expect("weighted").to_vec();
        let needs = self.nodes[x.0].needs_grad;
        Ok(self.push(
            Value::Sparse { pattern, values },
            Op::SparseLeakyRelu { x: x.0, slope },
            needs,
        ))
    }

    /// Edge softmax over a sparse var's values.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn edge_softmax(&mut self, x: Var, irr: f64) -> Result<Var> {
        let (pattern, values) = self.sparse(x)?;
        let pattern = pattern.clone();
        let weighted = pattern.as_ref().clone().with_values(values.to_vec())?;
        let out = self.exec.edge_softmax(&weighted, irr)?;
        let values = out.values().expect("weighted").to_vec();
        let needs = self.nodes[x.0].needs_grad;
        Ok(self.push(
            Value::Sparse { pattern, values },
            Op::EdgeSoftmax { x: x.0, irr },
            needs,
        ))
    }

    /// Mean-squared-error loss against `target`, followed by a full backward
    /// pass. Returns the loss and the accumulated gradients.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn backward_mse(&mut self, pred: Var, target: &DenseMatrix) -> Result<(f64, Grads)> {
        let p = self.dense(pred)?;
        if p.shape() != target.shape() {
            return Err(GnnError::Matrix(MatrixError::ShapeMismatch {
                op: "mse_loss",
                lhs: p.shape(),
                rhs: target.shape(),
            }));
        }
        let n = (p.rows() * p.cols()).max(1) as f32;
        // Loss + seed gradient, charged as one elementwise pass.
        let diff = self.exec.zip(p, target, 2, |a, b| a - b)?;
        let loss = if self.exec.computes_values() {
            diff.as_slice().iter().map(|v| (v * v) as f64).sum::<f64>() / n as f64
        } else {
            0.0
        };
        let seed = self.exec.map(&diff, 1, move |v| 2.0 * v / n);
        let grads = self.backward(pred, Grad::Dense(seed))?;
        Ok((loss, grads))
    }

    /// Backward pass from `output` with an explicit seed gradient.
    ///
    /// # Errors
    ///
    /// Propagates kernel/shape errors encountered while building gradient
    /// computations.
    pub fn backward(&mut self, output: Var, seed: Grad) -> Result<Grads> {
        let mut grads: Vec<Option<Grad>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[output.0] = Some(seed);

        for idx in (0..=output.0).rev() {
            let Some(grad) = grads[idx].take() else {
                continue;
            };
            // Re-store for the caller before propagating (params read it back).
            let op = self.nodes[idx].op.clone();
            match (&op, &grad) {
                (Op::Leaf, _) => {
                    grads[idx] = Some(grad);
                    continue;
                }
                (Op::Gemm { a, b }, Grad::Dense(g)) => {
                    let (av, bv) = (self.dense(Var(*a))?.clone(), self.dense(Var(*b))?.clone());
                    if self.nodes[*a].needs_grad || grad_needed(&self.nodes, *a) {
                        let bt = self.transpose(&bv);
                        let ga = self.exec.gemm(g, &bt)?;
                        accumulate(&self.exec, &mut grads[*a], Grad::Dense(ga))?;
                    }
                    if self.nodes[*b].needs_grad || grad_needed(&self.nodes, *b) {
                        let at = self.transpose(&av);
                        let gb = self.exec.gemm(&at, g)?;
                        accumulate(&self.exec, &mut grads[*b], Grad::Dense(gb))?;
                    }
                }
                (
                    Op::SpmmConst {
                        adj,
                        x,
                        semiring,
                        irr,
                    },
                    Grad::Dense(g),
                ) => {
                    if grad_needed(&self.nodes, *x) {
                        let back_adj = self.backward_adjacency(adj, *semiring);
                        let gx =
                            self.exec
                                .spmm(&back_adj, g, backward_semiring(*semiring), *irr)?;
                        accumulate(&self.exec, &mut grads[*x], Grad::Dense(gx))?;
                    }
                }
                (Op::SpmmVar { s, x, irr }, Grad::Dense(g)) => {
                    let (pattern, values) = {
                        let (p, v) = self.sparse(Var(*s))?;
                        (p.clone(), v.to_vec())
                    };
                    if grad_needed(&self.nodes, *x) {
                        let weighted = pattern.as_ref().clone().with_values(values)?;
                        let t = self.transpose_csr(&weighted);
                        let gx = self.exec.spmm(&t, g, Semiring::plus_mul(), *irr)?;
                        accumulate(&self.exec, &mut grads[*x], Grad::Dense(gx))?;
                    }
                    if grad_needed(&self.nodes, *s) {
                        // dL/ds_ij = g_i · x_j : an SDDMM of (g, x).
                        let xv = self.dense(Var(*x))?.clone();
                        let gs = self.exec.sddmm(
                            &pattern.clone().as_ref().clone().drop_values(),
                            g,
                            &xv,
                            *irr,
                        )?;
                        let gvals = gs.values().expect("weighted").to_vec();
                        accumulate(&self.exec, &mut grads[*s], Grad::Sparse(gvals))?;
                    }
                }
                (Op::RowBroadcast { d, x }, Grad::Dense(g)) => {
                    if grad_needed(&self.nodes, *x) {
                        let gx = self.exec.row_broadcast(d, g, BroadcastOp::Mul)?;
                        accumulate(&self.exec, &mut grads[*x], Grad::Dense(gx))?;
                    }
                }
                (Op::Relu { x }, Grad::Dense(g)) => {
                    if grad_needed(&self.nodes, *x) {
                        let xv = self.dense(Var(*x))?.clone();
                        let gx =
                            self.exec
                                .zip(g, &xv, 1, |gv, v| if v > 0.0 { gv } else { 0.0 })?;
                        accumulate(&self.exec, &mut grads[*x], Grad::Dense(gx))?;
                    }
                }
                (Op::Scale { x, c }, Grad::Dense(g)) => {
                    if grad_needed(&self.nodes, *x) {
                        let c = *c;
                        let gx = self.exec.map(g, 1, move |v| c * v);
                        accumulate(&self.exec, &mut grads[*x], Grad::Dense(gx))?;
                    }
                }
                (Op::Add { a, b }, Grad::Dense(g)) => {
                    if grad_needed(&self.nodes, *a) {
                        accumulate(&self.exec, &mut grads[*a], Grad::Dense(g.clone()))?;
                    }
                    if grad_needed(&self.nodes, *b) {
                        accumulate(&self.exec, &mut grads[*b], Grad::Dense(g.clone()))?;
                    }
                }
                (Op::SddmmUAddV { mask, ul, vr, irr }, Grad::Sparse(g)) => {
                    let gcsr = mask.as_ref().clone().drop_values().with_values(g.clone())?;
                    let n = mask.rows();
                    let ones = DenseMatrix::from_vec(mask.cols(), 1, vec![1.0; mask.cols()])?;
                    if grad_needed(&self.nodes, *ul) {
                        // Row sums of the sparse gradient.
                        let gul = self.exec.spmm(&gcsr, &ones, Semiring::plus_mul(), *irr)?;
                        accumulate(&self.exec, &mut grads[*ul], Grad::Dense(gul))?;
                    }
                    if grad_needed(&self.nodes, *vr) {
                        let t = self.transpose_csr(&gcsr);
                        let ones_n = DenseMatrix::from_vec(n, 1, vec![1.0; n])?;
                        let gvr = self.exec.spmm(&t, &ones_n, Semiring::plus_mul(), *irr)?;
                        accumulate(&self.exec, &mut grads[*vr], Grad::Dense(gvr))?;
                    }
                }
                (Op::SparseLeakyRelu { x, slope }, Grad::Sparse(g)) => {
                    if grad_needed(&self.nodes, *x) {
                        let (_, xv) = self.sparse(Var(*x))?;
                        let slope = *slope;
                        let stats = WorkStats::elementwise(g.len(), 1);
                        let gx: Vec<f32> = if self.exec.computes_values() {
                            self.exec.engine().run(stats, || {
                                g.iter()
                                    .zip(xv)
                                    .map(|(&gv, &v)| if v >= 0.0 { gv } else { slope * gv })
                                    .collect()
                            })
                        } else {
                            self.exec.engine().charge(stats);
                            vec![0.0; g.len()]
                        };
                        accumulate(&self.exec, &mut grads[*x], Grad::Sparse(gx))?;
                    }
                }
                (Op::EdgeSoftmax { x, irr }, Grad::Sparse(g)) => {
                    if grad_needed(&self.nodes, *x) {
                        let (pattern, alpha) = {
                            let (p, v) = self.sparse(Var(idx))?;
                            (p.clone(), v.to_vec())
                        };
                        let stats = WorkStats::edge_softmax(pattern.rows(), pattern.nnz(), *irr);
                        let gx: Vec<f32> = if self.exec.computes_values() {
                            self.exec.engine().run(stats, || {
                                // d logit_e = α_e (g_e − Σ_{e'∈row} g_{e'} α_{e'})
                                let mut out = vec![0f32; g.len()];
                                for r in 0..pattern.rows() {
                                    let (s, e) = (
                                        pattern.indptr()[r] as usize,
                                        pattern.indptr()[r + 1] as usize,
                                    );
                                    let dot: f32 = (s..e).map(|k| g[k] * alpha[k]).sum();
                                    for k in s..e {
                                        out[k] = alpha[k] * (g[k] - dot);
                                    }
                                }
                                out
                            })
                        } else {
                            self.exec.engine().charge(stats);
                            vec![0.0; g.len()]
                        };
                        accumulate(&self.exec, &mut grads[*x], Grad::Sparse(gx))?;
                    }
                }
                (op, grad) => {
                    // Grad kind mismatch is an internal invariant violation.
                    unreachable!("gradient kind mismatch for {op:?} with {grad:?}");
                }
            }
        }
        Ok(Grads { by_node: grads })
    }

    /// Dense transpose, charged as an elementwise pass.
    fn transpose(&self, m: &DenseMatrix) -> DenseMatrix {
        let stats = WorkStats::elementwise(m.rows() * m.cols(), 0);
        if self.exec.computes_values() {
            self.exec.engine().run(stats, || m.transpose())
        } else {
            self.exec.engine().charge(stats);
            DenseMatrix::zeros(m.cols(), m.rows()).expect("transpose shape")
        }
    }

    /// Sparse transpose, charged as an elementwise pass over the nonzeros.
    fn transpose_csr(&self, m: &CsrMatrix) -> CsrMatrix {
        let stats = WorkStats::elementwise(m.nnz().max(1), 0);
        if self.exec.computes_values() {
            self.exec.engine().run(stats, || m.transpose())
        } else {
            self.exec.engine().charge(stats);
            m.transpose()
        }
    }

    /// The adjacency to aggregate with in the backward direction, including
    /// mean-degree rescaling for the mean semiring.
    fn backward_adjacency(&self, adj: &CsrMatrix, semiring: Semiring) -> CsrMatrix {
        use granii_matrix::ReduceOp;
        match semiring.reduce {
            ReduceOp::Mean => {
                // out_i = (1/d_i) Σ_j x_j ⇒ backward edge weight 1/d_src.
                let deg = adj.out_degrees();
                let inv: Vec<f32> = deg
                    .iter()
                    .map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 })
                    .collect();
                let scaled = granii_matrix::ops::scale_csr(Some(&inv), adj, None)
                    .expect("degree vector matches adjacency");
                self.transpose_csr(&scaled)
            }
            _ => self.transpose_csr(adj),
        }
    }
}

/// Backward aggregation keeps the forward's weighting (mean handled by
/// pre-scaling the transposed adjacency).
fn backward_semiring(forward: Semiring) -> Semiring {
    use granii_matrix::{MulOp, ReduceOp};
    match (forward.reduce, forward.mul) {
        (ReduceOp::Mean, _) => Semiring::plus_mul(),
        (_, MulOp::CopyRhs) => Semiring::plus_copy_rhs(),
        _ => Semiring::plus_mul(),
    }
}

/// Whether node `i` or anything upstream of it needs a gradient. A node on
/// the tape needs a gradient if it is a parameter or was marked as needing
/// one when created (transitively from parameters).
fn grad_needed(nodes: &[Node], i: usize) -> bool {
    nodes[i].needs_grad
}

/// Accumulates `incoming` into `slot`, charging the addition.
fn accumulate(exec: &Exec, slot: &mut Option<Grad>, incoming: Grad) -> Result<()> {
    match (slot.take(), incoming) {
        (None, g) => *slot = Some(g),
        (Some(Grad::Dense(a)), Grad::Dense(b)) => {
            *slot = Some(Grad::Dense(exec.zip(&a, &b, 1, |x, y| x + y)?));
        }
        (Some(Grad::Sparse(a)), Grad::Sparse(b)) => {
            let stats = WorkStats::elementwise(a.len(), 1);
            let sum: Vec<f32> = if exec.computes_values() {
                exec.engine()
                    .run(stats, || a.iter().zip(&b).map(|(x, y)| x + y).collect())
            } else {
                exec.engine().charge(stats);
                vec![0.0; a.len()]
            };
            *slot = Some(Grad::Sparse(sum));
        }
        _ => {
            return Err(GnnError::InvalidConfig(
                "mixed dense/sparse gradient accumulation".into(),
            ))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use granii_matrix::device::{DeviceKind, Engine};

    fn engine() -> Engine {
        Engine::modeled(DeviceKind::Cpu)
    }

    /// Finite-difference check of a scalar-valued function of one parameter.
    fn finite_diff_check(
        build: impl Fn(&mut Tape, Var) -> Var,
        w0: DenseMatrix,
        target: DenseMatrix,
    ) {
        let e = engine();
        // Analytic gradient.
        let (_, grads, w_var) = {
            let exec = Exec::real(&e);
            let mut tape = Tape::new(exec);
            let w = tape.param(w0.clone());
            let out = build(&mut tape, w);
            let (loss, grads) = tape.backward_mse(out, &target).unwrap();
            (loss, grads, w)
        };
        let analytic = grads.dense(w_var).expect("param grad").clone();

        // Numeric gradient, entry by entry.
        let eps = 1e-3f32;
        let loss_at = |w: &DenseMatrix| -> f64 {
            let exec = Exec::real(&e);
            let mut tape = Tape::new(exec);
            let wv = tape.param(w.clone());
            let out = build(&mut tape, wv);
            let p = tape.value(out).unwrap();
            let n = (p.rows() * p.cols()) as f64;
            p.as_slice()
                .iter()
                .zip(target.as_slice())
                .map(|(a, b)| ((a - b) * (a - b)) as f64)
                .sum::<f64>()
                / n
        };
        for i in 0..w0.rows() {
            for j in 0..w0.cols() {
                let mut wp = w0.clone();
                wp.set(i, j, w0.get(i, j) + eps);
                let mut wm = w0.clone();
                wm.set(i, j, w0.get(i, j) - eps);
                let numeric = (loss_at(&wp) - loss_at(&wm)) / (2.0 * eps as f64);
                let got = analytic.get(i, j) as f64;
                assert!(
                    (numeric - got).abs() < 2e-2 * (1.0 + numeric.abs()),
                    "grad[{i},{j}]: numeric {numeric} vs analytic {got}"
                );
            }
        }
    }

    #[test]
    fn gemm_gradient_matches_finite_differences() {
        let g = granii_graph::generators::ring(4).unwrap();
        let adj = Arc::new(g.adj().clone());
        let x0 = DenseMatrix::random(4, 3, 1.0, 1);
        let w0 = DenseMatrix::random(3, 2, 0.7, 2);
        let target = DenseMatrix::random(4, 2, 1.0, 3);
        finite_diff_check(
            move |tape, w| {
                let x = tape.input(x0.clone());
                let z = tape.gemm(x, w).unwrap();
                tape.spmm(adj.clone(), z, Semiring::plus_copy_rhs(), 0.0)
                    .unwrap()
            },
            w0,
            target,
        );
    }

    #[test]
    fn relu_and_broadcast_gradients_match_finite_differences() {
        let d = Arc::new(vec![0.5f32, 2.0, 1.0, 0.25]);
        let x0 = DenseMatrix::random(4, 3, 1.0, 5);
        let w0 = DenseMatrix::random(3, 2, 0.8, 6);
        let target = DenseMatrix::random(4, 2, 1.0, 7);
        finite_diff_check(
            move |tape, w| {
                let x = tape.input(x0.clone());
                let z = tape.gemm(x, w).unwrap();
                let z = tape.row_broadcast(d.clone(), z).unwrap();
                tape.relu(z).unwrap()
            },
            w0,
            target,
        );
    }

    #[test]
    fn gat_attention_gradient_matches_finite_differences() {
        let g = granii_graph::generators::ring(5).unwrap();
        let ctx = crate::GraphCtx::new(&g).unwrap();
        let adj = Arc::new(ctx.adj().clone());
        let h0 = DenseMatrix::random(5, 3, 1.0, 8);
        let al0 = DenseMatrix::random(2, 1, 0.6, 9);
        let ar0 = DenseMatrix::random(2, 1, 0.6, 10);
        let w0 = DenseMatrix::random(3, 2, 0.8, 11);
        let target = DenseMatrix::random(5, 2, 1.0, 12);
        finite_diff_check(
            move |tape, w| {
                let h = tape.input(h0.clone());
                let al = tape.input(al0.clone());
                let ar = tape.input(ar0.clone());
                let theta = tape.gemm(h, w).unwrap();
                let ul = tape.gemm(theta, al).unwrap();
                let vr = tape.gemm(theta, ar).unwrap();
                let logits = tape.sddmm_u_add_v(adj.clone(), ul, vr, 0.0).unwrap();
                let scored = tape.sparse_leaky_relu(logits, 0.2).unwrap();
                let alpha = tape.edge_softmax(scored, 0.0).unwrap();
                tape.spmm_var(alpha, theta, 0.0).unwrap()
            },
            w0,
            target,
        );
    }

    #[test]
    fn mean_aggregation_gradient_matches_finite_differences() {
        let g = granii_graph::generators::power_law(6, 2, 13).unwrap();
        let adj = Arc::new(g.adj().clone());
        let x0 = DenseMatrix::random(6, 3, 1.0, 14);
        let w0 = DenseMatrix::random(3, 2, 0.7, 15);
        let target = DenseMatrix::random(6, 2, 1.0, 16);
        finite_diff_check(
            move |tape, w| {
                let x = tape.input(x0.clone());
                let z = tape.gemm(x, w).unwrap();
                tape.spmm(adj.clone(), z, Semiring::mean_copy_rhs(), 0.0)
                    .unwrap()
            },
            w0,
            target,
        );
    }

    #[test]
    fn backward_charges_primitives() {
        let e = engine();
        let exec = Exec::real(&e);
        let mut tape = Tape::new(exec);
        let x = tape.input(DenseMatrix::random(4, 3, 1.0, 1));
        let w = tape.param(DenseMatrix::random(3, 2, 1.0, 2));
        let z = tape.gemm(x, w).unwrap();
        let forward_entries = e.take_profile().entries.len();
        let target = DenseMatrix::zeros(4, 2).unwrap();
        tape.backward_mse(z, &target).unwrap();
        let backward_entries = e.take_profile().entries.len();
        assert!(forward_entries >= 1);
        assert!(
            backward_entries > forward_entries,
            "backward must charge more work"
        );
    }

    #[test]
    fn max_aggregation_rejected_on_tape() {
        let e = engine();
        let exec = Exec::real(&e);
        let mut tape = Tape::new(exec);
        let g = granii_graph::generators::ring(4).unwrap();
        let x = tape.input(DenseMatrix::random(4, 2, 1.0, 1));
        assert!(tape
            .spmm(Arc::new(g.adj().clone()), x, Semiring::max_copy_rhs(), 0.0)
            .is_err());
    }

    #[test]
    fn virtual_tape_charges_without_values() {
        let e = engine();
        let exec = Exec::virtual_only(&e);
        let mut tape = Tape::new(exec);
        let x = tape.input(DenseMatrix::zeros(4, 3).unwrap());
        let w = tape.param(DenseMatrix::zeros(3, 2).unwrap());
        let z = tape.gemm(x, w).unwrap();
        let (loss, grads) = tape
            .backward_mse(z, &DenseMatrix::zeros(4, 2).unwrap())
            .unwrap();
        assert_eq!(loss, 0.0);
        assert!(grads.dense(w).is_some());
        assert!(e.elapsed_seconds() > 0.0);
    }
}
