//! Per-graph execution context shared by all compositions of a model.

use granii_graph::Graph;
use granii_matrix::{CsrMatrix, Semiring};

use crate::{GnnError, Result};

/// Cached per-graph state used by GNN layers.
///
/// Building the context performs the graph-level preprocessing every
/// composition shares (self-loop insertion, degree extraction, structural
/// statistics). Composition-specific preprocessing — e.g. the precomputed
/// normalized adjacency of GCN's Eq. 3 — is *not* cached here; it is charged
/// to whichever composition performs it.
///
/// # Example
///
/// ```
/// use granii_gnn::GraphCtx;
/// use granii_graph::generators;
///
/// # fn main() -> Result<(), granii_gnn::GnnError> {
/// let g = generators::ring(10)?;
/// let ctx = GraphCtx::new(&g)?;
/// assert_eq!(ctx.num_nodes(), 10);
/// assert!(ctx.irregularity() < 0.1); // rings are uniform
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GraphCtx {
    graph: Graph,
    with_loops: Graph,
    deg_inv_sqrt: Vec<f32>,
    irregularity: f64,
}

impl GraphCtx {
    /// Builds the context for a graph.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidConfig`] for an empty graph.
    pub fn new(graph: &Graph) -> Result<Self> {
        if graph.num_nodes() == 0 {
            return Err(GnnError::InvalidConfig("graph has no nodes".into()));
        }
        let with_loops = graph.add_self_loops();
        let deg_inv_sqrt = with_loops.deg_inv_sqrt().into_vec();
        let irregularity = with_loops.row_stats().cv;
        Ok(Self {
            graph: graph.clone(),
            with_loops,
            deg_inv_sqrt,
            irregularity,
        })
    }

    /// The original graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The graph with self-loops (`Ã`).
    pub fn with_loops(&self) -> &Graph {
        &self.with_loops
    }

    /// Adjacency of `Ã` (the matrix GNN aggregations run over).
    pub fn adj(&self) -> &CsrMatrix {
        self.with_loops.adj()
    }

    /// `D̃^{-1/2}` of the self-loop graph.
    pub fn deg_inv_sqrt(&self) -> &[f32] {
        &self.deg_inv_sqrt
    }

    /// Degree coefficient of variation — the irregularity input to the device
    /// models and the featurizer.
    pub fn irregularity(&self) -> f64 {
        self.irregularity
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Number of directed edges in `Ã`.
    pub fn num_edges_with_loops(&self) -> usize {
        self.with_loops.num_edges()
    }

    /// The sum-aggregation semiring for `Ã`: the cheap `copy_u` form when the
    /// adjacency is unweighted, the full `(+, ×)` form when edge weights are
    /// present — the Table I weighted/unweighted sub-attribute distinction
    /// (§III-A: the cheaper aggregation applies only to unweighted graphs).
    pub fn sum_semiring(&self) -> Semiring {
        if self.with_loops.is_weighted() {
            Semiring::plus_mul()
        } else {
            Semiring::plus_copy_rhs()
        }
    }

    /// The sum-aggregation semiring for the raw (no-self-loop) adjacency,
    /// used by models that aggregate without `Ã` (GIN, GraphSAGE).
    pub fn raw_sum_semiring(&self) -> Semiring {
        if self.graph.is_weighted() {
            Semiring::plus_mul()
        } else {
            Semiring::plus_copy_rhs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granii_graph::generators;

    #[test]
    fn context_adds_self_loops() {
        let g = generators::ring(5).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        assert_eq!(ctx.num_edges_with_loops(), g.num_edges() + 5);
        for i in 0..5 {
            assert_ne!(ctx.adj().get(i, i), 0.0);
        }
    }

    #[test]
    fn normalizer_uses_self_loop_degrees() {
        let g = generators::ring(4).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        // Ring degree 2 + self-loop = 3.
        for &v in ctx.deg_inv_sqrt() {
            assert!((v - 1.0 / 3.0f32.sqrt()).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_graph_rejected() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert!(GraphCtx::new(&g).is_err());
    }

    #[test]
    fn irregularity_reflects_skew() {
        let star = GraphCtx::new(&generators::star(50).unwrap()).unwrap();
        let ring = GraphCtx::new(&generators::ring(50).unwrap()).unwrap();
        assert!(star.irregularity() > ring.irregularity());
    }
}
