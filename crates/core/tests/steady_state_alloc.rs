//! The compile-once contract: after warm-up, steady-state iterations of every
//! built-in model's candidates perform **zero** dense/sparse heap allocations.
//!
//! This file deliberately contains a single `#[test]`: the telemetry
//! allocation counters are process-global, so the assertion must run in a
//! test binary where no other test can allocate matrices concurrently.

use granii_core::execplan::{ExecPlan, PlanInputs};
use granii_core::plan::CompiledModel;
use granii_core::runtime::allocation_counter_total;
use granii_gnn::spec::{LayerConfig, ModelKind};
use granii_gnn::{Exec, GraphCtx};
use granii_graph::generators;
use granii_matrix::device::{DeviceKind, Engine};
use granii_matrix::DenseMatrix;

#[test]
fn steady_state_iterations_do_not_allocate() {
    let g = generators::power_law(50, 4, 41).unwrap();
    let ctx = GraphCtx::new(&g).unwrap();
    let engine = Engine::modeled(DeviceKind::Cpu);
    let exec = Exec::real(&engine);

    granii_telemetry::reset();
    granii_telemetry::enable();
    let models = [
        ModelKind::Gcn,
        ModelKind::Gin,
        ModelKind::Sgc,
        ModelKind::Tagcn,
        ModelKind::Gat,
        ModelKind::Sage,
    ];
    for model in models {
        for (k_in, k_out) in [(6usize, 4usize), (4, 6)] {
            let cfg = LayerConfig::new(k_in, k_out);
            let plan = CompiledModel::compile(model, cfg).unwrap();
            let h = DenseMatrix::random(50, k_in, 1.0, 43);
            let inputs = PlanInputs::for_model(model, cfg, &ctx, h, 47);
            for cand in &plan.candidates {
                let exec_plan = ExecPlan::build(&cand.program).unwrap();
                let mut bound = exec_plan.bind(&exec, &inputs.as_program_inputs()).unwrap();
                // Warm-up (bind already allocated everything; the first
                // iteration must also be clean, but we assert only the
                // steady phase, matching the acceptance criterion).
                bound.iterate(&exec).unwrap();
                let before = allocation_counter_total();
                for _ in 0..5 {
                    bound.iterate(&exec).unwrap();
                }
                let after = allocation_counter_total();
                assert_eq!(
                    after - before,
                    0,
                    "{model}/{}: steady-state iterations allocated",
                    exec_plan.expr()
                );
            }
        }
    }
    granii_telemetry::disable();
}
