//! Property-based tests for the program interpreter: every promoted
//! association tree of a model computes the same function on arbitrary
//! graphs, features, and embedding sizes.

use std::collections::BTreeMap;

use granii_core::interp::{self, ProgramInputs};
use granii_core::plan::CompiledModel;
use granii_gnn::spec::{LayerConfig, ModelKind};
use granii_gnn::{Exec, GraphCtx};
use granii_graph::Graph;
use granii_matrix::device::{DeviceKind, Engine};
use granii_matrix::DenseMatrix;
use proptest::prelude::*;

fn weights(model: ModelKind, cfg: LayerConfig, seed: u64) -> BTreeMap<String, DenseMatrix> {
    let mut w = BTreeMap::new();
    match model {
        ModelKind::Gin => {
            w.insert(
                "W1".into(),
                DenseMatrix::random(cfg.k_in, cfg.k_out, 0.6, seed),
            );
            w.insert(
                "W2".into(),
                DenseMatrix::random(cfg.k_out, cfg.k_out, 0.6, seed + 1),
            );
        }
        ModelKind::Tagcn => {
            for k in 0..=cfg.hops {
                w.insert(
                    format!("W{k}"),
                    DenseMatrix::random(cfg.k_in, cfg.k_out, 0.6, seed + 2 + k as u64),
                );
            }
        }
        ModelKind::Sage => {
            w.insert(
                "W_self".into(),
                DenseMatrix::random(cfg.k_in, cfg.k_out, 0.6, seed + 7),
            );
            w.insert(
                "W_neigh".into(),
                DenseMatrix::random(cfg.k_in, cfg.k_out, 0.6, seed + 8),
            );
        }
        _ => {
            w.insert(
                "W".into(),
                DenseMatrix::random(cfg.k_in, cfg.k_out, 0.6, seed + 9),
            );
            w.insert(
                "a_l".into(),
                DenseMatrix::random(cfg.k_out, 1, 0.6, seed + 10),
            );
            w.insert(
                "a_r".into(),
                DenseMatrix::random(cfg.k_out, 1, 0.6, seed + 11),
            );
        }
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Interpreted promoted programs agree pairwise on random inputs, for
    /// every model.
    #[test]
    fn promoted_programs_agree_on_random_inputs(
        n in 4usize..25,
        edges in proptest::collection::vec((0usize..25, 0usize..25), 2..50),
        k_in in 1usize..7,
        k_out in 1usize..7,
        seed in 0u64..500,
        model_idx in 0usize..6,
    ) {
        let models = [ModelKind::Gcn, ModelKind::Gin, ModelKind::Sgc, ModelKind::Tagcn, ModelKind::Gat, ModelKind::Sage];
        let model = models[model_idx];
        let edges: Vec<_> = edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
        let graph = Graph::undirected_from_edges(n, &edges).unwrap();
        let ctx = GraphCtx::new(&graph).unwrap();
        let cfg = LayerConfig::new(k_in, k_out);
        let h = DenseMatrix::random(n, k_in, 1.0, seed);
        let w = weights(model, cfg, seed);
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);
        let deg_inv: Vec<f32> = ctx
            .graph()
            .out_degrees()
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 })
            .collect();
        let raw = matches!(model, ModelKind::Gin | ModelKind::Sage);
        let adj = if raw { ctx.graph().adj().clone() } else { ctx.adj().clone() };
        let inputs = ProgramInputs {
            adj: &adj,
            deg_inv_sqrt: ctx.deg_inv_sqrt(),
            deg_inv: &deg_inv,
            h: &h,
            weights: &w,
            eps: 0.1,
            irregularity: ctx.irregularity(),
        };
        let plan = CompiledModel::compile(model, cfg).unwrap();
        let mut reference: Option<DenseMatrix> = None;
        for cand in &plan.candidates {
            let out = interp::execute(&exec, &cand.program, &inputs).unwrap();
            prop_assert_eq!(out.shape(), (n, k_out));
            match &reference {
                None => reference = Some(out),
                Some(r) => {
                    let diff = out.max_abs_diff(r).unwrap();
                    let tol = 1e-3 * (1.0 + r.frobenius_norm());
                    prop_assert!(diff < tol, "{}/{}: diff {diff}", model, cand.program.expr);
                }
            }
        }
    }
}
