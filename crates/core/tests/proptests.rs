//! Property-based tests for the GRANII compiler pipeline.

use granii_core::assoc;
use granii_core::ir::{builder, rewrite};
use granii_core::plan::CompiledModel;
use granii_gnn::spec::{LayerConfig, ModelKind};
use proptest::prelude::*;

const MODELS: [ModelKind; 6] = [
    ModelKind::Gcn,
    ModelKind::Gin,
    ModelKind::Sgc,
    ModelKind::Tagcn,
    ModelKind::Gat,
    ModelKind::Sage,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Compilation succeeds for every model over arbitrary valid configs, and
    /// pruning bookkeeping is consistent. Hops are capped at 2: Algorithm 1's
    /// forest grows exponentially with the hop count, and deeper TAGCN chains
    /// trip the enumeration budget (tested separately).
    #[test]
    fn compilation_is_total_and_consistent(
        k_in in 1usize..2048,
        k_out in 1usize..2048,
        hops in 1usize..3,
        model_idx in 0usize..6,
    ) {
        let model = MODELS[model_idx];
        let cfg = LayerConfig { k_in, k_out, hops };
        let plan = CompiledModel::compile(model, cfg).unwrap();
        prop_assert!(plan.enumerated >= plan.candidates.len());
        prop_assert!(plan.pruned < plan.enumerated);
        // Every candidate must be eligible in at least one scenario.
        for c in &plan.candidates {
            prop_assert!(c.shrink || c.grow);
            prop_assert_eq!(c.composition.model(), model);
        }
        // Both scenarios must have at least one eligible candidate.
        prop_assert!(!plan.eligible(k_in.max(k_out), k_in.min(k_out).max(1)).is_empty());
        prop_assert!(!plan.eligible(k_in.min(k_out), k_in.max(k_out)).is_empty());
    }

    /// Enumeration is deterministic and independent of the embedding sizes
    /// (sizes are symbolic at this stage).
    #[test]
    fn enumeration_is_config_independent(
        k_a in 1usize..512,
        k_b in 1usize..512,
        model_idx in 0usize..6,
    ) {
        let model = MODELS[model_idx];
        let a = CompiledModel::compile(model, LayerConfig::new(k_a, k_b)).unwrap();
        let b = CompiledModel::compile(model, LayerConfig::new(k_b, k_a)).unwrap();
        prop_assert_eq!(a.enumerated, b.enumerated);
        prop_assert_eq!(a.pruned, b.pruned);
        prop_assert_eq!(a.candidates.len(), b.candidates.len());
    }

    /// Every enumerated tree of every model variant reduces to a complete
    /// program whose flattened operand multiset matches the IR's leaves —
    /// re-association must not drop or duplicate matrices.
    #[test]
    fn trees_preserve_leaf_multiset(model_idx in 0usize..6, hops in 1usize..3) {
        let model = MODELS[model_idx];
        // GAT's attention sub-program renders as the opaque `α` operand in
        // candidate expressions, so the leaf-count property does not apply.
        prop_assume!(model != ModelKind::Gat);
        let ir = builder::build(model, LayerConfig { k_in: 8, k_out: 4, hops });
        for variant in rewrite::variants(&ir) {
            let leaves = count_names(&variant.render());
            for cand in assoc::enumerate(&variant).unwrap() {
                // The candidate expression contains exactly the same leaf
                // names (CSE may drop *steps* but never operands).
                prop_assert_eq!(count_names(&cand.expr), leaves.clone(), "{}", cand.expr);
            }
        }
    }
}

/// Multiset of leaf names (A, H, W, D, ...) appearing in a rendered
/// expression.
fn count_names(s: &str) -> std::collections::BTreeMap<String, usize> {
    let mut out = std::collections::BTreeMap::new();
    for token in s
        .split(|c: char| "()·+⊗ ".contains(c) || c == 'σ')
        .filter(|t| !t.is_empty())
    {
        *out.entry(token.to_string()).or_insert(0) += 1;
    }
    out
}
