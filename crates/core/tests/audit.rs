//! Selection-quality audit tests (ISSUE 3): the audit log must expose
//! per-candidate predictions, `audit::verify` must report regret ≈ 0 for
//! healthy cost models on the Table II synthetic graphs, and a deliberately
//! corrupted cost model must produce non-zero regret while the report still
//! identifies the true oracle candidate.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use granii_boost::{Dataset as BoostDataset, GbtParams, GbtRegressor};
use granii_core::audit;
use granii_core::cost::{CostModelSet, FeaturizedInput};
use granii_core::{Granii, GraniiOptions};
use granii_gnn::spec::{LayerConfig, ModelKind};
use granii_graph::datasets::{Dataset, Scale};
use granii_matrix::device::DeviceKind;

/// The §VI embedding-size grid the non-GAT tables sweep.
const GCN_GRID: [(usize, usize); 5] = [(32, 32), (256, 64), (64, 512), (1024, 1024), (2048, 256)];

/// One fast-trained H100 instance shared by every test in this binary —
/// training is the expensive part and the models are deterministic.
fn granii() -> &'static Granii {
    static GRANII: OnceLock<Granii> = OnceLock::new();
    GRANII.get_or_init(|| {
        Granii::train_for_device(DeviceKind::H100, GraniiOptions::fast())
            .expect("fast offline training")
    })
}

#[test]
fn audit_log_records_per_candidate_predictions() {
    let granii = granii();
    let g = Dataset::CoAuthorsCiteseer.load(Scale::Tiny).unwrap();

    audit::enable();
    let selection = granii.select(ModelKind::Gcn, &g, 48, 96).unwrap();
    let audits = audit::take_audits();
    audit::disable();

    // The sink is global; other tests may have contributed records. Ours is
    // identifiable by its unique embedding sizes.
    let audit = audits
        .iter()
        .find(|a| a.model == ModelKind::Gcn && a.k1 == 48 && a.k2 == 96)
        .expect("selection under audit::enable() must be recorded");

    assert_eq!(audit.chosen, selection.composition);
    assert!(audit.used_cost_models, "GCN at 48x96 has rival candidates");
    assert!(audit.input.is_some(), "featurized input must be captured");
    assert!(audit.candidates.len() >= 2);
    let predicted: Vec<_> = audit
        .candidates
        .iter()
        .filter(|c| c.eligible && c.predicted_seconds.is_some())
        .collect();
    assert!(
        predicted.len() >= 2,
        "every eligible candidate must carry a prediction"
    );
    for cand in &predicted {
        let secs = cand.predicted_seconds.unwrap();
        assert!(secs > 0.0 && secs.is_finite());
        let ln = cand.predicted_ln_latency.unwrap();
        assert!(
            (ln - secs.ln()).abs() < 1e-12,
            "ln-latency must be the log of the predicted seconds"
        );
    }
    // The chosen candidate is the predicted-cheapest among eligible ones.
    let chosen_pred = predicted
        .iter()
        .find(|c| c.composition == audit.chosen)
        .expect("chosen candidate must appear in the audit")
        .predicted_seconds
        .unwrap();
    for cand in &predicted {
        assert!(chosen_pred <= cand.predicted_seconds.unwrap() + 1e-15);
    }

    // Disabled sink stays silent.
    granii.select(ModelKind::Gcn, &g, 48, 96).unwrap();
    assert!(
        audit::take_audits()
            .iter()
            .all(|a| !(a.k1 == 48 && a.k2 == 96)),
        "no records while disabled"
    );
}

/// Rebuilds the model set with the `inflate`d primitives retrained on the
/// clean model's own predictions shifted by `+ln(10^6)` — those primitives
/// now look a million times slower, so any candidate relying on them loses
/// the argmin it deserved to win. Every other primitive keeps its clean
/// model.
fn corrupt(
    clean: &CostModelSet,
    feature_rows: &BTreeMap<granii_matrix::PrimitiveKind, Vec<Vec<f64>>>,
    inflate: &[granii_matrix::PrimitiveKind],
) -> CostModelSet {
    let params = GbtParams {
        num_rounds: 60,
        ..GbtParams::default()
    };
    let shift = 1e6f64.ln();
    let mut corrupted = BTreeMap::new();
    for (&kind, model) in clean.models() {
        if !inflate.contains(&kind) {
            corrupted.insert(kind, model.clone());
            continue;
        }
        let rows = &feature_rows[&kind];
        let labels: Vec<f64> = rows.iter().map(|r| model.predict(r) + shift).collect();
        let train = BoostDataset::from_rows(rows, &labels).unwrap();
        corrupted.insert(kind, GbtRegressor::fit(&train, &params).unwrap());
    }
    CostModelSet::new(clean.device(), corrupted, clean.validation.clone())
}

#[test]
fn corrupted_cost_model_reports_regret_and_identifies_oracle() {
    let clean = granii();
    let g = Dataset::Mycielskian17.load(Scale::Tiny).unwrap();
    // A shrink cell (k1 > k2): projecting before aggregating is genuinely
    // cheaper, so the two orderings have distinct measured costs — a flip is
    // observable (at k1 == k2 both orders cost the same and regret is
    // structurally zero).
    let cfg = LayerConfig::new(2048, 256);

    let clean_report = clean.verify(ModelKind::Gcn, &g, cfg, 100).unwrap();
    assert_eq!(
        clean_report.chosen, clean_report.oracle,
        "healthy models must pick the measured-best candidate here"
    );
    assert!(clean_report.regret_seconds().abs() < 1e-15);

    // Build the corrupted set from features the audited plan actually uses:
    // every step of every GCN candidate, featurized on all six Table II
    // graphs under a few embedding configurations.
    let plan = clean.compiled(ModelKind::Gcn, cfg).unwrap();
    let mut feature_rows: BTreeMap<granii_matrix::PrimitiveKind, Vec<Vec<f64>>> = BTreeMap::new();
    for dataset in Dataset::ALL {
        let graph = dataset.load(Scale::Tiny).unwrap();
        for (k1, k2) in GCN_GRID {
            let input = FeaturizedInput::extract(&graph, k1, k2);
            for cand in &plan.candidates {
                for step in &cand.program.steps {
                    feature_rows
                        .entry(step.kind)
                        .or_default()
                        .push(input.step_features(step));
                }
            }
        }
    }
    // Corrupt exactly the primitives the measured-best candidate relies on
    // and its rivals do not — the most surgical way to make the selector
    // walk away from the right answer.
    let eligible = plan.eligible(cfg.k_in, cfg.k_out);
    let chosen_prog = eligible
        .iter()
        .find(|c| c.composition == clean_report.chosen)
        .expect("chosen candidate is eligible");
    let rival_kinds: std::collections::BTreeSet<_> = eligible
        .iter()
        .filter(|c| c.composition != clean_report.chosen)
        .flat_map(|c| c.program.steps.iter().map(|s| s.kind))
        .collect();
    let inflate: Vec<_> = chosen_prog
        .program
        .steps
        .iter()
        .map(|s| s.kind)
        .filter(|k| !rival_kinds.contains(k))
        .collect();
    assert!(
        !inflate.is_empty(),
        "the chosen candidate must use at least one primitive its rivals do not"
    );
    let corrupted = Granii::with_cost_models(corrupt(clean.cost_models(), &feature_rows, &inflate));

    let report = corrupted.verify(ModelKind::Gcn, &g, cfg, 100).unwrap();
    eprintln!(
        "corrupted: chosen={:?} oracle={:?} regret={:.3e}s rel={:.3}",
        report.chosen,
        report.oracle,
        report.regret_seconds(),
        report.relative_regret()
    );
    assert!(
        report.regret_seconds() > 0.0,
        "inverted cost models must regret their choice (chosen {:?}, oracle {:?})",
        report.chosen,
        report.oracle
    );
    // Measurement is model-independent: the corrupted report must still
    // point at the same oracle the healthy models chose.
    assert_eq!(report.oracle, clean_report.chosen);
}

#[test]
fn clean_models_have_near_zero_regret_on_gcn_grid() {
    let granii = granii();
    let mut chosen_total = 0.0;
    let mut oracle_total = 0.0;
    let mut cells = 0u32;
    let mut zero_regret = 0u32;
    for dataset in Dataset::ALL {
        let g = dataset.load(Scale::Tiny).unwrap();
        for (k1, k2) in GCN_GRID {
            let report = granii
                .verify(ModelKind::Gcn, &g, LayerConfig::new(k1, k2), 100)
                .unwrap();
            assert!(
                report.differential_rel_error() < 1e-9,
                "{dataset:?} {k1}x{k2}: ExecPlan and interpreter disagree"
            );
            eprintln!(
                "{dataset:?} {k1}x{k2}: chosen={:?} oracle={:?} rel_regret={:.4} ln_mape={:?}",
                report.chosen,
                report.oracle,
                report.relative_regret(),
                report.ln_mape
            );
            chosen_total += report.chosen_seconds;
            oracle_total += report.oracle_seconds;
            cells += 1;
            if report.regret_seconds() <= f64::EPSILON {
                zero_regret += 1;
            }
        }
    }
    let aggregate_regret = chosen_total / oracle_total - 1.0;
    eprintln!(
        "grid: {zero_regret}/{cells} cells at zero regret, aggregate relative regret {aggregate_regret:.4}"
    );
    assert!(
        aggregate_regret < 0.05,
        "aggregate relative regret {aggregate_regret:.4} across the GCN grid must stay ~0"
    );
    assert!(
        zero_regret * 10 >= cells * 8,
        "at least 80% of grid cells must be exact oracle matches ({zero_regret}/{cells})"
    );
}
