//! Differential tests: the compile-once [`granii_core::execplan`] engine must
//! be *bitwise* identical to the string-resolving interpreter oracle — same
//! outputs and same charged latencies — across every model × promoted
//! candidate, on fixed and on randomly generated inputs.

use granii_core::execplan::{ExecPlan, PlanInputs};
use granii_core::interp;
use granii_core::plan::CompiledModel;
use granii_gnn::spec::{LayerConfig, ModelKind};
use granii_gnn::{Exec, GraphCtx};
use granii_graph::{generators, Graph};
use granii_matrix::device::{DeviceKind, Engine};
use granii_matrix::DenseMatrix;
use proptest::prelude::*;

const ALL_MODELS: [ModelKind; 6] = [
    ModelKind::Gcn,
    ModelKind::Gin,
    ModelKind::Sgc,
    ModelKind::Tagcn,
    ModelKind::Gat,
    ModelKind::Sage,
];

/// Runs one candidate both ways on the same inputs and asserts bitwise
/// equality of outputs and (approximate, sum-order-tolerant) equality of
/// charged latencies.
fn assert_candidate_matches(
    model: ModelKind,
    inputs: &PlanInputs,
    expr: &str,
    program: &granii_core::assoc::CandidateProgram,
) {
    // Separate engines so charge totals are attributable per path.
    let interp_engine = Engine::modeled(DeviceKind::Cpu);
    let interp_exec = Exec::real(&interp_engine);
    let oracle = interp::execute(&interp_exec, program, &inputs.as_program_inputs())
        .unwrap_or_else(|e| panic!("{model}/{expr}: oracle failed: {e}"));

    let plan_engine = Engine::modeled(DeviceKind::Cpu);
    let plan_exec = Exec::real(&plan_engine);
    let exec_plan = ExecPlan::build(program).unwrap();
    let mut bound = exec_plan
        .bind(&plan_exec, &inputs.as_program_inputs())
        .unwrap();
    let out = bound.iterate(&plan_exec).unwrap();

    assert_eq!(out.shape(), oracle.shape(), "{model}/{expr}");
    let diff = out.max_abs_diff(&oracle).unwrap();
    assert_eq!(diff, 0.0, "{model}/{expr}: outputs differ by {diff}");

    // The plan charges per-iteration work every iterate() plus the hoisted
    // setup once at bind; the oracle charges everything per call. After one
    // plan iteration both engines have charged one full program.
    let oracle_cost = interp_engine.take_profile().total_seconds();
    let plan_cost = plan_engine.take_profile().total_seconds();
    let tol = 1e-9 * (1.0 + oracle_cost.abs());
    assert!(
        (oracle_cost - plan_cost).abs() <= tol,
        "{model}/{expr}: oracle charged {oracle_cost}, plan charged {plan_cost}"
    );

    // Steady-state iterations are idempotent given fixed inputs.
    let again = bound.iterate(&plan_exec).unwrap();
    assert_eq!(again.max_abs_diff(&oracle).unwrap(), 0.0, "{model}/{expr}");
}

/// Every model × every promoted candidate on a fixed power-law graph.
#[test]
fn execplan_matches_interpreter_on_all_promoted_candidates() {
    let g = generators::power_law(60, 5, 17).unwrap();
    let ctx = GraphCtx::new(&g).unwrap();
    for model in ALL_MODELS {
        for (k_in, k_out) in [(8usize, 5usize), (5, 8)] {
            let cfg = LayerConfig::new(k_in, k_out);
            let plan = CompiledModel::compile(model, cfg).unwrap();
            let h = DenseMatrix::random(60, k_in, 1.0, 23);
            let inputs = PlanInputs::for_model(model, cfg, &ctx, h, 29);
            assert!(!plan.candidates.is_empty(), "{model}");
            for cand in &plan.candidates {
                assert_candidate_matches(model, &inputs, &cand.program.expr, &cand.program);
            }
        }
    }
}

/// Degenerate structures: ring (regular), a graph with isolated nodes, and a
/// single-edge graph.
#[test]
fn execplan_matches_interpreter_on_degenerate_graphs() {
    let graphs = [
        generators::ring(12).unwrap(),
        Graph::undirected_from_edges(8, &[(0, 1), (1, 2)]).unwrap(),
        Graph::undirected_from_edges(3, &[(0, 1)]).unwrap(),
    ];
    for (gi, g) in graphs.iter().enumerate() {
        let ctx = GraphCtx::new(g).unwrap();
        let n = g.num_nodes();
        for model in ALL_MODELS {
            let cfg = LayerConfig::new(4, 3);
            let plan = CompiledModel::compile(model, cfg).unwrap();
            let h = DenseMatrix::random(n, 4, 1.0, 31 + gi as u64);
            let inputs = PlanInputs::for_model(model, cfg, &ctx, h, 37);
            for cand in &plan.candidates {
                assert_candidate_matches(model, &inputs, &cand.program.expr, &cand.program);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Bitwise agreement with the oracle on arbitrary graphs and embedding
    /// sizes, for every model.
    #[test]
    fn execplan_matches_interpreter_on_random_inputs(
        n in 4usize..20,
        edges in proptest::collection::vec((0usize..20, 0usize..20), 2..40),
        k_in in 1usize..6,
        k_out in 1usize..6,
        seed in 0u64..500,
        model_idx in 0usize..6,
    ) {
        let model = ALL_MODELS[model_idx];
        let edges: Vec<_> = edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
        let graph = Graph::undirected_from_edges(n, &edges).unwrap();
        let ctx = GraphCtx::new(&graph).unwrap();
        let cfg = LayerConfig::new(k_in, k_out);
        let h = DenseMatrix::random(n, k_in, 1.0, seed);
        let inputs = PlanInputs::for_model(model, cfg, &ctx, h, seed + 1);
        let plan = CompiledModel::compile(model, cfg).unwrap();
        for cand in &plan.candidates {
            let interp_engine = Engine::modeled(DeviceKind::Cpu);
            let interp_exec = Exec::real(&interp_engine);
            let oracle =
                interp::execute(&interp_exec, &cand.program, &inputs.as_program_inputs()).unwrap();

            let plan_engine = Engine::modeled(DeviceKind::Cpu);
            let plan_exec = Exec::real(&plan_engine);
            let mut bound = ExecPlan::build(&cand.program)
                .unwrap()
                .bind(&plan_exec, &inputs.as_program_inputs())
                .unwrap();
            let out = bound.iterate(&plan_exec).unwrap();
            prop_assert_eq!(out.shape(), (n, k_out));
            let diff = out.max_abs_diff(&oracle).unwrap();
            prop_assert_eq!(diff, 0.0, "{}/{}", model, cand.program.expr);
        }
    }
}
