//! The compiled conditional plan (paper §IV-D, Fig 7).
//!
//! The offline stage ends by emitting, per model, the promoted candidates
//! guarded by runtime conditions: a pure embedding-size condition when a
//! scenario has a single owner ("this avoids the use of the more expensive
//! cost models"), and cost-model comparisons otherwise.

use serde::{Deserialize, Serialize};

use granii_gnn::spec::{Composition, LayerConfig, ModelKind};

use crate::assoc::{self, CandidateProgram};
use crate::ir::{builder, rewrite};
use crate::{CoreError, Result};

/// A promoted candidate with its executable lowering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanCandidate {
    /// The association tree's primitive program.
    pub program: CandidateProgram,
    /// The executable composition it lowers to.
    pub composition: Composition,
    /// Eligible when `K1 >= K2`.
    pub shrink: bool,
    /// Eligible when `K1 < K2`.
    pub grow: bool,
}

/// The compiled plan for one model: the output of GRANII's offline stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledModel {
    /// The model this plan was compiled from.
    pub model: ModelKind,
    /// Propagation hops the plan was compiled for (SGC/TAGCN).
    pub hops: usize,
    /// Number of association trees enumerated (§VI-B reports these counts).
    pub enumerated: usize,
    /// Number pruned by the input-oblivious rules.
    pub pruned: usize,
    /// Promoted candidates with scenario annotations.
    pub candidates: Vec<PlanCandidate>,
}

impl CompiledModel {
    /// Runs the offline compilation stage for one model: front-end translation
    /// → broadcast rewrite → association enumeration over all algebraic
    /// variants → input-oblivious pruning → lowering.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoCandidates`] if nothing survives (cannot happen
    /// for the built-in models), and propagates enumeration errors.
    pub fn compile(model: ModelKind, cfg: LayerConfig) -> Result<Self> {
        cfg.validate()?;
        let ir = builder::build(model, cfg);
        let mut seen = std::collections::HashSet::new();
        let mut cands = Vec::new();
        let mut last_err = None;
        for variant in rewrite::variants(&ir) {
            // A variant whose forest exceeds the enumeration budget (deep hop
            // chains) is skipped; the remaining variants still yield a valid,
            // if smaller, candidate set.
            match assoc::enumerate(&variant) {
                Ok(variant_cands) => {
                    for cand in variant_cands {
                        if seen.insert(cand.expr.clone()) {
                            cands.push(cand);
                        }
                    }
                }
                Err(e) => last_err = Some(e),
            }
        }
        if cands.is_empty() {
            if let Some(e) = last_err {
                return Err(e);
            }
        }
        let enumerated = cands.len();
        let (promoted, pruned) = assoc::prune(&cands);

        // Lower and merge candidates that map to the same executable
        // composition (keep the cheaper program, union the scenarios).
        let mut candidates: Vec<PlanCandidate> = Vec::new();
        for p in promoted {
            let Some(composition) = assoc::lower(model, &p.program) else {
                continue;
            };
            match candidates.iter_mut().find(|c| c.composition == composition) {
                Some(existing) => {
                    existing.shrink |= p.shrink;
                    existing.grow |= p.grow;
                    if p.program.steps.len() < existing.program.steps.len() {
                        existing.program = p.program;
                    }
                }
                None => candidates.push(PlanCandidate {
                    program: p.program,
                    composition,
                    shrink: p.shrink,
                    grow: p.grow,
                }),
            }
        }
        if candidates.is_empty() {
            return Err(CoreError::NoCandidates {
                model: model.name().into(),
            });
        }
        Ok(Self {
            model,
            hops: cfg.hops,
            enumerated,
            pruned,
            candidates,
        })
    }

    /// The candidates eligible under the concrete embedding sizes (Fig 7's
    /// embedding-size conditions).
    pub fn eligible(&self, k1: usize, k2: usize) -> Vec<&PlanCandidate> {
        let shrink = k1 >= k2;
        self.candidates
            .iter()
            .filter(|c| if shrink { c.shrink } else { c.grow })
            .collect()
    }

    /// Whether selecting under these sizes needs the cost models (more than
    /// one eligible candidate).
    pub fn needs_cost_models(&self, k1: usize, k2: usize) -> bool {
        self.eligible(k1, k2).len() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granii_gnn::spec::{GatStrategy, NormStrategy, OpOrder};

    #[test]
    fn gcn_plan_matches_paper_counts() {
        // §VI-B: "the total number of compositions through re-associations
        // and offline pruning pairs of GRANII for GCN ... are 12 and 8".
        let plan = CompiledModel::compile(ModelKind::Gcn, LayerConfig::new(32, 256)).unwrap();
        assert_eq!(plan.enumerated, 12);
        assert_eq!(plan.pruned, 8);
        assert_eq!(plan.candidates.len(), 4);
    }

    #[test]
    fn gat_plan_matches_paper_counts() {
        // §VI-B: GAT is "2 and 0".
        let plan = CompiledModel::compile(ModelKind::Gat, LayerConfig::new(32, 256)).unwrap();
        assert_eq!(plan.enumerated, 2);
        assert_eq!(plan.pruned, 0);
        assert_eq!(plan.candidates.len(), 2);
    }

    #[test]
    fn gcn_scenarios_split_by_order() {
        let plan = CompiledModel::compile(ModelKind::Gcn, LayerConfig::new(32, 256)).unwrap();
        for c in &plan.candidates {
            match c.composition {
                Composition::Gcn(_, OpOrder::AggregateFirst) => {
                    assert!(c.grow && !c.shrink, "{c:?}")
                }
                Composition::Gcn(_, OpOrder::UpdateFirst) => {
                    assert!(c.shrink && !c.grow, "{c:?}")
                }
                other => panic!("unexpected {other}"),
            }
        }
        // Per scenario: two candidates (dynamic vs precompute) — an
        // input-graph-dependent choice the cost models must make.
        assert_eq!(plan.eligible(256, 32).len(), 2);
        assert_eq!(plan.eligible(32, 256).len(), 2);
        assert!(plan.needs_cost_models(256, 32));
    }

    #[test]
    fn gat_eligibility_follows_strategy() {
        let plan = CompiledModel::compile(ModelKind::Gat, LayerConfig::new(32, 256)).unwrap();
        // Shrinking sizes: recompute is pointless (reuse aggregates narrower
        // anyway); the paper evaluates GAT only on growing sizes because that
        // is where the decision is non-trivial.
        let growing = plan.eligible(32, 256);
        assert_eq!(growing.len(), 2);
        let shrinking = plan.eligible(256, 32);
        assert_eq!(shrinking.len(), 1);
        assert_eq!(
            shrinking[0].composition,
            Composition::Gat(GatStrategy::Reuse)
        );
        assert!(!plan.needs_cost_models(256, 32));
    }

    #[test]
    fn every_model_compiles_with_nonempty_scenarios() {
        for kind in [
            ModelKind::Gcn,
            ModelKind::Gin,
            ModelKind::Sgc,
            ModelKind::Tagcn,
            ModelKind::Gat,
            ModelKind::Sage,
        ] {
            let plan = CompiledModel::compile(kind, LayerConfig::new(16, 8)).unwrap();
            assert!(!plan.candidates.is_empty(), "{kind}");
            assert!(
                !plan.eligible(16, 8).is_empty(),
                "{kind} shrink scenario empty"
            );
            assert!(
                !plan.eligible(8, 16).is_empty(),
                "{kind} grow scenario empty"
            );
            assert!(
                plan.enumerated > plan.candidates.len() || plan.pruned == 0,
                "{kind}"
            );
        }
    }

    /// Deep hop counts: SGC's single chain still enumerates at 3 hops, while
    /// TAGCN's multi-term forest exceeds the enumeration budget and reports a
    /// typed error instead of exhausting memory.
    #[test]
    fn deep_hops_are_bounded() {
        let sgc = CompiledModel::compile(
            ModelKind::Sgc,
            LayerConfig {
                k_in: 8,
                k_out: 4,
                hops: 3,
            },
        )
        .unwrap();
        assert!(!sgc.candidates.is_empty());
        let err = CompiledModel::compile(
            ModelKind::Tagcn,
            LayerConfig {
                k_in: 8,
                k_out: 4,
                hops: 3,
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, CoreError::InvalidIr(msg) if msg.contains("budget")),
            "wrong error"
        );
    }

    #[test]
    fn sgc_keeps_dynamic_and_precompute_candidates() {
        let plan = CompiledModel::compile(
            ModelKind::Sgc,
            LayerConfig {
                k_in: 16,
                k_out: 8,
                hops: 2,
            },
        )
        .unwrap();
        let has = |n: NormStrategy| {
            plan.candidates
                .iter()
                .any(|c| matches!(c.composition, Composition::Sgc(s, _) if s == n))
        };
        assert!(
            has(NormStrategy::Dynamic) && has(NormStrategy::Precompute),
            "{plan:#?}"
        );
    }
}
