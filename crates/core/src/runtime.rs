//! The online runtime stage (paper §IV, Fig 5 right half).
//!
//! Given the compiled plan, the concrete input graph, and the embedding
//! sizes, the runtime featurizes the input, evaluates the eligible
//! candidates' costs with the per-primitive models, and selects the cheapest
//! composition. Featurization and selection wall times are recorded — the
//! overheads reported in §VI-C1 ("at most 7 ms on GPU, 0.42 s on CPU,
//! incurred only once during runtime").

use std::time::Instant;

use granii_gnn::spec::Composition;
use granii_gnn::Exec;
use granii_graph::Graph;
use serde::{Deserialize, Serialize};

use crate::cost::{CostModelSet, FeaturizedInput};
use crate::execplan::{ExecPlan, PlanInputs};
use crate::plan::CompiledModel;
use crate::{CoreError, Result};

/// The outcome of one online selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Selection {
    /// The chosen composition.
    pub composition: Composition,
    /// Predicted cost (seconds) per eligible candidate, cheapest first.
    pub predicted: Vec<(Composition, f64)>,
    /// Wall time of input featurization.
    pub featurize_seconds: f64,
    /// Wall time of candidate cost evaluation + argmin.
    pub select_seconds: f64,
    /// Whether the decision needed the cost models (false when a pure
    /// embedding-size condition resolved it — Fig 7's cheap branch).
    pub used_cost_models: bool,
}

impl Selection {
    /// The selected composition's short name.
    pub fn composition_name(&self) -> String {
        self.composition.name()
    }

    /// Total one-time selection overhead.
    pub fn overhead_seconds(&self) -> f64 {
        self.featurize_seconds + self.select_seconds
    }
}

/// The iteration count GRANII amortizes hoisted precomputation over by
/// default — the paper evaluates 100-iteration runs (§VI-C).
pub const DEFAULT_ITERATIONS: usize = 100;

/// Runs the online stage for one (graph, embedding-size) input. `iterations`
/// is the expected run length hoisted steps amortize over.
///
/// # Errors
///
/// Returns [`CoreError::NoCandidates`] if no candidate is eligible for the
/// sizes (cannot happen for plans compiled by this crate) and propagates
/// missing-cost-model errors.
pub fn select(
    plan: &CompiledModel,
    graph: &Graph,
    k1: usize,
    k2: usize,
    models: &CostModelSet,
    iterations: usize,
) -> Result<Selection> {
    let _span = granii_telemetry::span!(
        "select",
        model = plan.model.name(),
        nodes = graph.num_nodes(),
        k1 = k1,
        k2 = k2,
    );
    // Eligibility filtering is part of the one-time selection overhead
    // (§VI-C1), even when it resolves the choice outright.
    let t_eligible = Instant::now();
    let eligible = plan.eligible(k1, k2);
    let eligible_seconds = t_eligible.elapsed().as_secs_f64();
    if eligible.is_empty() {
        return Err(CoreError::NoCandidates {
            model: plan.model.name().into(),
        });
    }
    granii_telemetry::counter_add("select.invocations", 1);
    if eligible.len() == 1 {
        // Pure embedding-size condition: no featurization, no cost models.
        granii_telemetry::counter_add("select.size_condition_hits", 1);
        let selection = Selection {
            composition: eligible[0].composition,
            predicted: vec![(eligible[0].composition, 0.0)],
            featurize_seconds: 0.0,
            select_seconds: eligible_seconds,
            used_cost_models: false,
        };
        if crate::audit::is_enabled() {
            crate::audit::record(crate::audit::audit_of_selection(
                plan, k1, k2, iterations, None, &selection,
            ));
        }
        return Ok(selection);
    }

    let t0 = Instant::now();
    let featurize_span = granii_telemetry::span!("select.featurize");
    let input = FeaturizedInput::extract(graph, k1, k2);
    drop(featurize_span);
    let featurize_seconds = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let mut predicted: Vec<(Composition, f64)> = Vec::with_capacity(eligible.len());
    {
        let _cost_span = granii_telemetry::span!("select.cost_eval", candidates = eligible.len());
        for cand in &eligible {
            let cost = models.predict_program(&cand.program, &input, iterations)?;
            predicted.push((cand.composition, cost));
        }
    }
    {
        let _argmin_span = granii_telemetry::span!("select.argmin");
        predicted.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"));
    }
    let select_seconds = eligible_seconds + t1.elapsed().as_secs_f64();
    granii_telemetry::histogram_record_seconds(
        "select.overhead",
        featurize_seconds + select_seconds,
    );

    let selection = Selection {
        composition: predicted[0].0,
        predicted,
        featurize_seconds,
        select_seconds,
        used_cost_models: true,
    };
    if crate::audit::is_enabled() {
        crate::audit::record(crate::audit::audit_of_selection(
            plan,
            k1,
            k2,
            iterations,
            Some(&input),
            &selection,
        ));
    }
    Ok(selection)
}

/// Phase breakdown of running a selected composition through the
/// compile-once engine: one-time plan build + bind (including the hoisted
/// precompute), then steady-state iterations that must not allocate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SteadyStateReport {
    /// The composition that was run.
    pub composition: Composition,
    /// Canonical expression of its program.
    pub expr: String,
    /// Wall time of [`ExecPlan::build`] (string resolution + lowering).
    pub build_seconds: f64,
    /// Wall time of [`ExecPlan::bind`] (shape inference, slot assignment,
    /// buffer allocation, and the hoisted setup run).
    pub bind_seconds: f64,
    /// Wall time of the first (warm-up) iteration.
    pub warmup_seconds: f64,
    /// Wall time of all steady-state iterations after warm-up.
    pub steady_seconds: f64,
    /// Number of steady-state iterations timed.
    pub steady_iterations: usize,
    /// Heap allocations observed across the steady-state iterations via the
    /// telemetry counters (always 0 when telemetry is disabled; the
    /// compile-once contract is that it is also 0 when enabled).
    pub steady_allocations: u64,
}

impl SteadyStateReport {
    /// One-time cost paid before the first steady-state iteration.
    pub fn setup_seconds(&self) -> f64 {
        self.build_seconds + self.bind_seconds + self.warmup_seconds
    }

    /// Mean steady-state iteration wall time.
    pub fn seconds_per_iteration(&self) -> f64 {
        if self.steady_iterations == 0 {
            0.0
        } else {
            self.steady_seconds / self.steady_iterations as f64
        }
    }
}

/// Sum of the allocation counters the steady-state contract is asserted
/// against (dense buffers, sparse value buffers, and workspace misses). Only
/// meaningful while telemetry is enabled.
pub fn allocation_counter_total() -> u64 {
    granii_telemetry::metrics_snapshot()
        .counters
        .iter()
        .filter(|(name, _)| {
            matches!(
                name.as_str(),
                "matrix.dense_allocs" | "matrix.sparse_vals_allocs" | "workspace.fresh_allocs"
            )
        })
        .map(|&(_, v)| v)
        .sum()
}

/// Runs `composition`'s program through the compile-once engine: builds and
/// binds its [`ExecPlan`], runs one warm-up iteration, then times
/// `iterations - 1` steady-state iterations, reporting the phase split and
/// the allocation counter delta across the steady phase.
///
/// # Errors
///
/// Returns [`CoreError::InvalidIr`] if `composition` is not one of `plan`'s
/// candidates and propagates build/bind/kernel errors.
pub fn run_steady_state(
    exec: &Exec,
    plan: &CompiledModel,
    composition: Composition,
    inputs: &PlanInputs,
    iterations: usize,
) -> Result<SteadyStateReport> {
    let candidate = plan
        .candidates
        .iter()
        .find(|c| c.composition == composition)
        .ok_or_else(|| {
            CoreError::InvalidIr(format!(
                "composition {composition} is not a candidate of {}",
                plan.model.name()
            ))
        })?;
    let t_build = Instant::now();
    let exec_plan = ExecPlan::build(&candidate.program)?;
    let build_seconds = t_build.elapsed().as_secs_f64();

    let t_bind = Instant::now();
    let mut bound = exec_plan.bind(exec, &inputs.as_program_inputs())?;
    let bind_seconds = t_bind.elapsed().as_secs_f64();

    let t_warmup = Instant::now();
    bound.iterate(exec)?;
    let warmup_seconds = t_warmup.elapsed().as_secs_f64();

    let allocs_before = allocation_counter_total();
    let steady_iterations = iterations.saturating_sub(1);
    let t_steady = Instant::now();
    for _ in 0..steady_iterations {
        bound.iterate(exec)?;
    }
    let steady_seconds = t_steady.elapsed().as_secs_f64();
    let steady_allocations = allocation_counter_total() - allocs_before;

    Ok(SteadyStateReport {
        composition,
        expr: exec_plan.expr().to_string(),
        build_seconds,
        bind_seconds,
        warmup_seconds,
        steady_seconds,
        steady_iterations,
        steady_allocations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::training::{self, TrainingConfig};
    use crate::plan::CompiledModel;
    use granii_gnn::spec::{Composition, GatStrategy, LayerConfig, ModelKind, NormStrategy};
    use granii_graph::datasets::{Dataset, Scale};
    use granii_matrix::device::DeviceKind;

    fn models(device: DeviceKind) -> CostModelSet {
        training::train(device, &TrainingConfig::fast()).unwrap()
    }

    #[test]
    fn selection_reports_costs_and_overheads() {
        let set = models(DeviceKind::H100);
        let plan = CompiledModel::compile(ModelKind::Gcn, LayerConfig::new(64, 64)).unwrap();
        let g = Dataset::Reddit.load(Scale::Tiny).unwrap();
        let sel = select(&plan, &g, 64, 64, &set, DEFAULT_ITERATIONS).unwrap();
        assert!(sel.used_cost_models);
        assert_eq!(sel.predicted.len(), 2);
        assert!(sel.predicted[0].1 <= sel.predicted[1].1);
        assert!(sel.overhead_seconds() >= 0.0);
    }

    #[test]
    fn single_candidate_scenarios_skip_cost_models() {
        let set = models(DeviceKind::H100);
        let plan = CompiledModel::compile(ModelKind::Gat, LayerConfig::new(256, 32)).unwrap();
        let g = Dataset::BelgiumOsm.load(Scale::Tiny).unwrap();
        let sel = select(&plan, &g, 256, 32, &set, DEFAULT_ITERATIONS).unwrap();
        assert!(!sel.used_cost_models);
        assert_eq!(sel.composition, Composition::Gat(GatStrategy::Reuse));
        // No featurization happens, but the eligibility filter itself is
        // timed and charged to the selection overhead.
        assert_eq!(sel.featurize_seconds, 0.0);
        assert!(sel.select_seconds > 0.0, "{sel:?}");
    }

    #[test]
    fn steady_state_report_splits_phases() {
        use granii_gnn::GraphCtx;
        use granii_graph::generators;
        use granii_matrix::device::Engine;
        use granii_matrix::DenseMatrix;

        let cfg = LayerConfig::new(8, 4);
        let plan = CompiledModel::compile(ModelKind::Gcn, cfg).unwrap();
        let g = generators::power_law(40, 4, 11).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let h = DenseMatrix::random(40, 8, 1.0, 12);
        let inputs = PlanInputs::for_model(ModelKind::Gcn, cfg, &ctx, h, 13);
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);
        let comp = plan.candidates[0].composition;
        let report = run_steady_state(&exec, &plan, comp, &inputs, 10).unwrap();
        assert_eq!(report.composition, comp);
        assert_eq!(report.steady_iterations, 9);
        assert!(report.setup_seconds() > 0.0);
        assert!(report.seconds_per_iteration() > 0.0);
        // Missing composition is a typed error.
        let gat = CompiledModel::compile(ModelKind::Gat, cfg).unwrap();
        let err = run_steady_state(&exec, &gat, comp, &inputs, 2).unwrap_err();
        assert!(matches!(err, CoreError::InvalidIr(_)), "{err}");
    }

    /// The paper's §III-A intuition must emerge from the learned models:
    /// dense graphs pick the dynamic normalization, sparse graphs pick the
    /// precompute composition (at widths where per-iteration work dominates
    /// kernel-launch overhead).
    #[test]
    fn gcn_choice_is_graph_dependent() {
        let set = models(DeviceKind::H100);
        let plan = CompiledModel::compile(ModelKind::Gcn, LayerConfig::new(1024, 1024)).unwrap();
        let dense = Dataset::Mycielskian17.load(Scale::Small).unwrap();
        let sparse = Dataset::BelgiumOsm.load(Scale::Small).unwrap();
        let dense_sel = select(&plan, &dense, 1024, 1024, &set, DEFAULT_ITERATIONS).unwrap();
        let sparse_sel = select(&plan, &sparse, 1024, 1024, &set, DEFAULT_ITERATIONS).unwrap();
        let norm = |c: Composition| match c {
            Composition::Gcn(n, _) => n,
            other => panic!("unexpected {other}"),
        };
        assert_eq!(
            norm(sparse_sel.composition),
            NormStrategy::Precompute,
            "{sparse_sel:?}"
        );
        assert_eq!(
            norm(dense_sel.composition),
            NormStrategy::Dynamic,
            "{dense_sel:?}"
        );
    }
}
