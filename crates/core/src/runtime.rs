//! The online runtime stage (paper §IV, Fig 5 right half).
//!
//! Given the compiled plan, the concrete input graph, and the embedding
//! sizes, the runtime featurizes the input, evaluates the eligible
//! candidates' costs with the per-primitive models, and selects the cheapest
//! composition. Featurization and selection wall times are recorded — the
//! overheads reported in §VI-C1 ("at most 7 ms on GPU, 0.42 s on CPU,
//! incurred only once during runtime").

use std::time::Instant;

use granii_gnn::spec::Composition;
use granii_graph::Graph;
use serde::{Deserialize, Serialize};

use crate::cost::{CostModelSet, FeaturizedInput};
use crate::plan::CompiledModel;
use crate::{CoreError, Result};

/// The outcome of one online selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Selection {
    /// The chosen composition.
    pub composition: Composition,
    /// Predicted cost (seconds) per eligible candidate, cheapest first.
    pub predicted: Vec<(Composition, f64)>,
    /// Wall time of input featurization.
    pub featurize_seconds: f64,
    /// Wall time of candidate cost evaluation + argmin.
    pub select_seconds: f64,
    /// Whether the decision needed the cost models (false when a pure
    /// embedding-size condition resolved it — Fig 7's cheap branch).
    pub used_cost_models: bool,
}

impl Selection {
    /// The selected composition's short name.
    pub fn composition_name(&self) -> String {
        self.composition.name()
    }

    /// Total one-time selection overhead.
    pub fn overhead_seconds(&self) -> f64 {
        self.featurize_seconds + self.select_seconds
    }
}

/// The iteration count GRANII amortizes hoisted precomputation over by
/// default — the paper evaluates 100-iteration runs (§VI-C).
pub const DEFAULT_ITERATIONS: usize = 100;

/// Runs the online stage for one (graph, embedding-size) input. `iterations`
/// is the expected run length hoisted steps amortize over.
///
/// # Errors
///
/// Returns [`CoreError::NoCandidates`] if no candidate is eligible for the
/// sizes (cannot happen for plans compiled by this crate) and propagates
/// missing-cost-model errors.
pub fn select(
    plan: &CompiledModel,
    graph: &Graph,
    k1: usize,
    k2: usize,
    models: &CostModelSet,
    iterations: usize,
) -> Result<Selection> {
    let _span = granii_telemetry::span!(
        "select",
        model = plan.model.name(),
        nodes = graph.num_nodes(),
        k1 = k1,
        k2 = k2,
    );
    // Eligibility filtering is part of the one-time selection overhead
    // (§VI-C1), even when it resolves the choice outright.
    let t_eligible = Instant::now();
    let eligible = plan.eligible(k1, k2);
    let eligible_seconds = t_eligible.elapsed().as_secs_f64();
    if eligible.is_empty() {
        return Err(CoreError::NoCandidates {
            model: plan.model.name().into(),
        });
    }
    granii_telemetry::counter_add("select.invocations", 1);
    if eligible.len() == 1 {
        // Pure embedding-size condition: no featurization, no cost models.
        granii_telemetry::counter_add("select.size_condition_hits", 1);
        return Ok(Selection {
            composition: eligible[0].composition,
            predicted: vec![(eligible[0].composition, 0.0)],
            featurize_seconds: 0.0,
            select_seconds: eligible_seconds,
            used_cost_models: false,
        });
    }

    let t0 = Instant::now();
    let featurize_span = granii_telemetry::span!("select.featurize");
    let input = FeaturizedInput::extract(graph, k1, k2);
    drop(featurize_span);
    let featurize_seconds = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let mut predicted: Vec<(Composition, f64)> = Vec::with_capacity(eligible.len());
    {
        let _cost_span = granii_telemetry::span!("select.cost_eval", candidates = eligible.len());
        for cand in &eligible {
            let cost = models.predict_program(&cand.program, &input, iterations)?;
            predicted.push((cand.composition, cost));
        }
    }
    {
        let _argmin_span = granii_telemetry::span!("select.argmin");
        predicted.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"));
    }
    let select_seconds = eligible_seconds + t1.elapsed().as_secs_f64();
    granii_telemetry::histogram_record_seconds(
        "select.overhead",
        featurize_seconds + select_seconds,
    );

    Ok(Selection {
        composition: predicted[0].0,
        predicted,
        featurize_seconds,
        select_seconds,
        used_cost_models: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::training::{self, TrainingConfig};
    use crate::plan::CompiledModel;
    use granii_gnn::spec::{Composition, GatStrategy, LayerConfig, ModelKind, NormStrategy};
    use granii_graph::datasets::{Dataset, Scale};
    use granii_matrix::device::DeviceKind;

    fn models(device: DeviceKind) -> CostModelSet {
        training::train(device, &TrainingConfig::fast()).unwrap()
    }

    #[test]
    fn selection_reports_costs_and_overheads() {
        let set = models(DeviceKind::H100);
        let plan = CompiledModel::compile(ModelKind::Gcn, LayerConfig::new(64, 64)).unwrap();
        let g = Dataset::Reddit.load(Scale::Tiny).unwrap();
        let sel = select(&plan, &g, 64, 64, &set, DEFAULT_ITERATIONS).unwrap();
        assert!(sel.used_cost_models);
        assert_eq!(sel.predicted.len(), 2);
        assert!(sel.predicted[0].1 <= sel.predicted[1].1);
        assert!(sel.overhead_seconds() >= 0.0);
    }

    #[test]
    fn single_candidate_scenarios_skip_cost_models() {
        let set = models(DeviceKind::H100);
        let plan = CompiledModel::compile(ModelKind::Gat, LayerConfig::new(256, 32)).unwrap();
        let g = Dataset::BelgiumOsm.load(Scale::Tiny).unwrap();
        let sel = select(&plan, &g, 256, 32, &set, DEFAULT_ITERATIONS).unwrap();
        assert!(!sel.used_cost_models);
        assert_eq!(sel.composition, Composition::Gat(GatStrategy::Reuse));
        // No featurization happens, but the eligibility filter itself is
        // timed and charged to the selection overhead.
        assert_eq!(sel.featurize_seconds, 0.0);
        assert!(sel.select_seconds > 0.0, "{sel:?}");
    }

    /// The paper's §III-A intuition must emerge from the learned models:
    /// dense graphs pick the dynamic normalization, sparse graphs pick the
    /// precompute composition (at widths where per-iteration work dominates
    /// kernel-launch overhead).
    #[test]
    fn gcn_choice_is_graph_dependent() {
        let set = models(DeviceKind::H100);
        let plan = CompiledModel::compile(ModelKind::Gcn, LayerConfig::new(1024, 1024)).unwrap();
        let dense = Dataset::Mycielskian17.load(Scale::Small).unwrap();
        let sparse = Dataset::BelgiumOsm.load(Scale::Small).unwrap();
        let dense_sel = select(&plan, &dense, 1024, 1024, &set, DEFAULT_ITERATIONS).unwrap();
        let sparse_sel = select(&plan, &sparse, 1024, 1024, &set, DEFAULT_ITERATIONS).unwrap();
        let norm = |c: Composition| match c {
            Composition::Gcn(n, _) => n,
            other => panic!("unexpected {other}"),
        };
        assert_eq!(
            norm(sparse_sel.composition),
            NormStrategy::Precompute,
            "{sparse_sel:?}"
        );
        assert_eq!(
            norm(dense_sel.composition),
            NormStrategy::Dynamic,
            "{dense_sel:?}"
        );
    }
}
