//! The top-level GRANII entry point (paper Fig 4: "Using GRANII").

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use granii_gnn::spec::{LayerConfig, ModelKind};
use granii_graph::Graph;
use granii_matrix::device::DeviceKind;

use crate::cost::training::{self, TrainingConfig};
use crate::cost::CostModelSet;
use crate::plan::CompiledModel;
use crate::runtime::{self, Selection};
use crate::Result;

/// Options controlling the one-time offline initialization (the paper's
/// "initialization script that gathers profiling data and trains its cost
/// models").
#[derive(Debug, Clone, Default)]
pub struct GraniiOptions {
    /// Profiling/training configuration.
    pub training: TrainingConfig,
}

impl GraniiOptions {
    /// Reduced profiling corpus for tests, examples, and quick starts.
    pub fn fast() -> Self {
        Self {
            training: TrainingConfig::fast(),
        }
    }
}

/// The GRANII compiler + runtime for one target device.
///
/// Construction runs the offline stage (profiling + cost-model training);
/// [`Granii::select`] runs the online stage per input. Compiled plans are
/// cached per (model, hops).
///
/// # Example
///
/// ```
/// use granii_core::{Granii, GraniiOptions};
/// use granii_gnn::spec::ModelKind;
/// use granii_graph::generators;
/// use granii_matrix::device::DeviceKind;
///
/// # fn main() -> Result<(), granii_core::CoreError> {
/// let granii = Granii::train_for_device(DeviceKind::H100, GraniiOptions::fast())?;
/// let graph = generators::power_law(500, 8, 42)?;
/// let decision = granii.select(ModelKind::Gcn, &graph, 64, 32)?;
/// println!("{}", decision.composition_name());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Granii {
    device: DeviceKind,
    cost_models: CostModelSet,
    plans: RwLock<BTreeMap<(ModelKind, usize), Arc<CompiledModel>>>,
}

impl Granii {
    /// Runs the offline stage for a device: builds the profiling corpus,
    /// trains the per-primitive cost models, and prepares the plan cache.
    ///
    /// # Errors
    ///
    /// Propagates profiling/training errors.
    pub fn train_for_device(device: DeviceKind, options: GraniiOptions) -> Result<Self> {
        let cost_models = training::train(device, &options.training)?;
        Ok(Self::with_cost_models(cost_models))
    }

    /// Builds a GRANII instance from already-trained cost models (e.g. loaded
    /// from the JSON the offline stage persisted).
    pub fn with_cost_models(cost_models: CostModelSet) -> Self {
        Self {
            device: cost_models.device(),
            cost_models,
            plans: RwLock::new(BTreeMap::new()),
        }
    }

    /// The target device.
    pub fn device(&self) -> DeviceKind {
        self.device
    }

    /// The trained cost models.
    pub fn cost_models(&self) -> &CostModelSet {
        &self.cost_models
    }

    /// The compiled plan for a model (offline compilation, cached).
    ///
    /// # Errors
    ///
    /// Propagates compilation errors.
    pub fn compiled(&self, model: ModelKind, cfg: LayerConfig) -> Result<Arc<CompiledModel>> {
        let key = (model, cfg.hops);
        if let Some(plan) = self.plans.read().get(&key) {
            return Ok(plan.clone());
        }
        let plan = Arc::new(CompiledModel::compile(model, cfg)?);
        self.plans.write().insert(key, plan.clone());
        Ok(plan)
    }

    /// Online selection with the default hop count, amortizing hoisted work
    /// over [`runtime::DEFAULT_ITERATIONS`] iterations (the paper's run
    /// length).
    ///
    /// # Errors
    ///
    /// Propagates compilation/selection errors.
    pub fn select(
        &self,
        model: ModelKind,
        graph: &Graph,
        k1: usize,
        k2: usize,
    ) -> Result<Selection> {
        self.select_with_config(
            model,
            graph,
            LayerConfig::new(k1, k2),
            runtime::DEFAULT_ITERATIONS,
        )
    }

    /// Per-layer selection for a multi-layer model (§VI-F: "GRANII can simply
    /// select the best composition for each layer"). `dims` is the embedding
    /// chain (`dims.len() - 1` layers).
    ///
    /// # Errors
    ///
    /// Propagates compilation/selection errors; `dims` must describe at least
    /// one layer.
    pub fn select_model(
        &self,
        model: ModelKind,
        graph: &Graph,
        dims: &[usize],
        iterations: usize,
    ) -> Result<Vec<Selection>> {
        if dims.len() < 2 {
            return Err(crate::CoreError::InvalidIr(
                "a model needs at least one layer (two dims)".into(),
            ));
        }
        dims.windows(2)
            .map(|w| {
                self.select_with_config(model, graph, LayerConfig::new(w[0], w[1]), iterations)
            })
            .collect()
    }

    /// Audited selection: selects as [`Granii::select_with_config`] would,
    /// then deterministically re-measures every eligible candidate on this
    /// device's model, reporting per-decision regret (chosen vs.
    /// oracle-best) and the cost model's ln-latency error.
    ///
    /// # Errors
    ///
    /// Propagates compilation/selection/measurement errors.
    pub fn verify(
        &self,
        model: ModelKind,
        graph: &Graph,
        cfg: LayerConfig,
        iterations: usize,
    ) -> Result<crate::audit::VerifyReport> {
        let plan = self.compiled(model, cfg)?;
        crate::audit::verify(&plan, graph, cfg, &self.cost_models, iterations)
    }

    /// Online selection with an explicit layer configuration and expected
    /// iteration count.
    ///
    /// # Errors
    ///
    /// Propagates compilation/selection errors.
    pub fn select_with_config(
        &self,
        model: ModelKind,
        graph: &Graph,
        cfg: LayerConfig,
        iterations: usize,
    ) -> Result<Selection> {
        let plan = self.compiled(model, cfg)?;
        runtime::select(
            &plan,
            graph,
            cfg.k_in,
            cfg.k_out,
            &self.cost_models,
            iterations,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granii_graph::datasets::{Dataset, Scale};

    #[test]
    fn end_to_end_selection_for_every_model() {
        let granii = Granii::train_for_device(DeviceKind::H100, GraniiOptions::fast()).unwrap();
        let g = Dataset::CoAuthorsCiteseer.load(Scale::Tiny).unwrap();
        for kind in ModelKind::EVAL {
            let sel = granii.select(kind, &g, 64, 128).unwrap();
            assert_eq!(sel.composition.model(), kind);
        }
    }

    #[test]
    fn plan_cache_returns_same_instance() {
        let granii = Granii::train_for_device(DeviceKind::Cpu, GraniiOptions::fast()).unwrap();
        let a = granii
            .compiled(ModelKind::Gcn, LayerConfig::new(8, 8))
            .unwrap();
        let b = granii
            .compiled(ModelKind::Gcn, LayerConfig::new(128, 2048))
            .unwrap();
        assert!(
            Arc::ptr_eq(&a, &b),
            "same hops must share the compiled plan"
        );
    }

    #[test]
    fn cost_models_round_trip_through_json() {
        let granii = Granii::train_for_device(DeviceKind::A100, GraniiOptions::fast()).unwrap();
        let json = granii.cost_models().to_json().unwrap();
        let restored = CostModelSet::from_json(&json).unwrap();
        let again = Granii::with_cost_models(restored);
        let g = Dataset::ComAmazon.load(Scale::Tiny).unwrap();
        let a = granii.select(ModelKind::Gcn, &g, 32, 32).unwrap();
        let b = again.select(ModelKind::Gcn, &g, 32, 32).unwrap();
        assert_eq!(a.composition, b.composition);
    }
}
