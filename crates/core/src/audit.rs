//! Selection-quality auditing: structured records of every selection
//! decision, plus a verify mode that measures what each decision cost.
//!
//! GRANII's value proposition is that the learned cost models pick the
//! cheapest candidate per input (§IV-E, §VI-C) — but [`crate::runtime::select`]
//! consumes the per-candidate predictions and discards them. This module
//! keeps them:
//!
//! - **Audit log**: when enabled ([`enable`]), every selection emits a
//!   [`SelectionAudit`] — the featurized input, every candidate's
//!   eligibility and predicted ln-latency, and the chosen composition —
//!   into a global sink drained by [`take_audits`]. The sink mirrors the
//!   telemetry crate's span buffer: off by default, one atomic load when
//!   disabled.
//! - **Verify mode**: [`verify`] re-measures every eligible candidate
//!   through the compile-once ExecPlan engine on a modeled device (charges
//!   depend only on shapes and sparsity, so the result is deterministic)
//!   and — reusing the interpreter-vs-ExecPlan differential machinery —
//!   through the string-resolving interpreter as a cross-check. From the
//!   measurements it reports per-decision **regret** (chosen vs.
//!   oracle-best) and the cost model's **MAPE on ln-latency**.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

use granii_gnn::spec::{Composition, LayerConfig, ModelKind};
use granii_gnn::{Exec, GraphCtx};
use granii_graph::Graph;
use granii_matrix::device::Engine;
use granii_matrix::DenseMatrix;
use serde::{Deserialize, Serialize};

use crate::cost::{CostModelSet, FeaturizedInput};
use crate::execplan::{ExecPlan, PlanInputs};
use crate::interp;
use crate::plan::CompiledModel;
use crate::runtime::Selection;
use crate::Result;

/// Seed for the synthetic feature/weight matrices `verify` binds candidate
/// plans to. Values never influence modeled charges (those depend only on
/// shapes), but a fixed seed keeps verification runs bit-identical.
const VERIFY_SEED: u64 = 17;

// ---------------------------------------------------------------- audit log

/// One candidate's view of a selection decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateAudit {
    /// The composition the candidate lowers to.
    pub composition: Composition,
    /// Canonical expression of its primitive program.
    pub expr: String,
    /// Whether the embedding-size condition admitted it.
    pub eligible: bool,
    /// Predicted latency in seconds (None when the candidate was pruned by
    /// eligibility, or when a single-candidate fast path skipped the cost
    /// models).
    pub predicted_seconds: Option<f64>,
    /// Predicted ln-latency — the quantity the per-primitive GBT models
    /// actually regress (None under the same conditions).
    pub predicted_ln_latency: Option<f64>,
}

/// Structured record of one `select` call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionAudit {
    /// The GNN model selected for.
    pub model: ModelKind,
    /// Input embedding width.
    pub k1: usize,
    /// Output embedding width.
    pub k2: usize,
    /// Iteration count hoisted work amortized over.
    pub iterations: usize,
    /// The featurized input the cost models saw (None when the decision was
    /// resolved by a pure embedding-size condition without featurizing).
    pub input: Option<FeaturizedInput>,
    /// Every candidate of the compiled plan, in plan order.
    pub candidates: Vec<CandidateAudit>,
    /// The chosen composition.
    pub chosen: Composition,
    /// Whether the cost models were consulted.
    pub used_cost_models: bool,
    /// Wall time of featurization.
    pub featurize_seconds: f64,
    /// Wall time of eligibility + cost evaluation + argmin.
    pub select_seconds: f64,
}

static AUDIT_ENABLED: AtomicBool = AtomicBool::new(false);

/// Default maximum number of retained audits. Each record carries full
/// per-candidate vectors, so an unbounded sink leaks memory in a
/// long-running serving process that audits but never drains; a few
/// thousand records is hours of selection history at serving rates.
pub const DEFAULT_AUDIT_CAPACITY: usize = 4096;

/// The bounded audit store: a ring of the most recent audits plus a count
/// of records evicted since the last drain.
struct Sink {
    audits: VecDeque<SelectionAudit>,
    capacity: usize,
    dropped: u64,
}

impl Sink {
    fn push(&mut self, audit: SelectionAudit) {
        while self.audits.len() >= self.capacity {
            self.audits.pop_front();
            self.dropped += 1;
        }
        self.audits.push_back(audit);
    }

    fn take(&mut self) -> AuditDrain {
        AuditDrain {
            audits: std::mem::take(&mut self.audits).into(),
            dropped: std::mem::take(&mut self.dropped),
        }
    }
}

fn sink() -> &'static Mutex<Sink> {
    static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();
    SINK.get_or_init(|| {
        Mutex::new(Sink {
            audits: VecDeque::new(),
            capacity: DEFAULT_AUDIT_CAPACITY,
            dropped: 0,
        })
    })
}

fn with_sink<T>(f: impl FnOnce(&mut Sink) -> T) -> T {
    f(&mut sink().lock().unwrap_or_else(PoisonError::into_inner))
}

/// Turns the audit log on: subsequent selections record a [`SelectionAudit`].
pub fn enable() {
    AUDIT_ENABLED.store(true, Ordering::SeqCst);
}

/// Turns the audit log off. Already-recorded audits are kept until
/// [`take_audits`].
pub fn disable() {
    AUDIT_ENABLED.store(false, Ordering::SeqCst);
}

/// Whether selections are currently audited.
#[inline(always)]
pub fn is_enabled() -> bool {
    AUDIT_ENABLED.load(Ordering::Relaxed)
}

/// Sets the sink capacity (clamped to at least 1). When the new capacity is
/// below the current backlog, the oldest records are evicted immediately and
/// counted as dropped.
pub fn set_capacity(capacity: usize) {
    with_sink(|s| {
        s.capacity = capacity.max(1);
        while s.audits.len() > s.capacity {
            s.audits.pop_front();
            s.dropped += 1;
        }
    });
}

/// The result of draining the audit sink: the retained records (recording
/// order) plus how many older records were evicted to stay under capacity
/// since the previous drain. Derefs to the audit vector, so existing
/// `take_audits().iter()` call sites keep working.
#[derive(Debug, Clone)]
pub struct AuditDrain {
    /// The retained audits, oldest first.
    pub audits: Vec<SelectionAudit>,
    /// Records evicted (drop-oldest) since the last drain.
    pub dropped: u64,
}

impl std::ops::Deref for AuditDrain {
    type Target = Vec<SelectionAudit>;

    fn deref(&self) -> &Self::Target {
        &self.audits
    }
}

impl IntoIterator for AuditDrain {
    type Item = SelectionAudit;
    type IntoIter = std::vec::IntoIter<SelectionAudit>;

    fn into_iter(self) -> Self::IntoIter {
        self.audits.into_iter()
    }
}

/// Drains and returns every retained audit, in recording order, along with
/// the number of records dropped since the last drain.
pub fn take_audits() -> AuditDrain {
    with_sink(Sink::take)
}

/// Records an audit into the sink (called by [`crate::runtime::select`]).
/// When the sink is at capacity the oldest record is evicted — recent
/// decisions are the interesting ones in a long-running process.
pub(crate) fn record(audit: SelectionAudit) {
    with_sink(|s| s.push(audit));
}

/// Builds the audit record for one selection outcome. `input` is the
/// featurized input when the cost models ran.
pub(crate) fn audit_of_selection(
    plan: &CompiledModel,
    k1: usize,
    k2: usize,
    iterations: usize,
    input: Option<&FeaturizedInput>,
    selection: &Selection,
) -> SelectionAudit {
    let eligible = plan.eligible(k1, k2);
    let candidates = plan
        .candidates
        .iter()
        .map(|cand| {
            let predicted = if selection.used_cost_models {
                selection
                    .predicted
                    .iter()
                    .find(|(comp, _)| *comp == cand.composition)
                    .map(|&(_, cost)| cost)
            } else {
                None
            };
            CandidateAudit {
                composition: cand.composition,
                expr: cand.program.expr.clone(),
                eligible: eligible.iter().any(|e| e.composition == cand.composition),
                predicted_seconds: predicted,
                predicted_ln_latency: predicted.map(f64::ln),
            }
        })
        .collect();
    SelectionAudit {
        model: plan.model,
        k1,
        k2,
        iterations,
        input: input.cloned(),
        candidates,
        chosen: selection.composition,
        used_cost_models: selection.used_cost_models,
        featurize_seconds: selection.featurize_seconds,
        select_seconds: selection.select_seconds,
    }
}

// ---------------------------------------------------------------- verify

/// One candidate's predicted-vs-measured comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerifiedCandidate {
    /// The measured composition.
    pub composition: Composition,
    /// Canonical expression of its program.
    pub expr: String,
    /// The cost model's predicted amortized per-iteration latency, in
    /// seconds (None when a fast path skipped prediction).
    pub predicted_seconds: Option<f64>,
    /// Deterministically measured amortized per-iteration latency through
    /// the ExecPlan engine: bind-time (hoisted) charges divided by the
    /// iteration count, plus one steady-state iteration's charges.
    pub measured_seconds: f64,
    /// The ExecPlan charges before amortization (hoisted + one iteration).
    pub execplan_seconds: f64,
    /// The same program measured through the string-resolving interpreter
    /// (the differential oracle); one full execution charges hoisted +
    /// per-iteration work, so this must equal [`Self::execplan_seconds`].
    pub interp_seconds: f64,
}

/// The outcome of verifying one selection decision against measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerifyReport {
    /// The GNN model verified.
    pub model: ModelKind,
    /// Input embedding width.
    pub k1: usize,
    /// Output embedding width.
    pub k2: usize,
    /// Iteration count hoisted work amortized over.
    pub iterations: usize,
    /// What the selector chose.
    pub chosen: Composition,
    /// The measured-cheapest candidate.
    pub oracle: Composition,
    /// Measured amortized latency of the chosen candidate.
    pub chosen_seconds: f64,
    /// Measured amortized latency of the oracle candidate.
    pub oracle_seconds: f64,
    /// Mean absolute percentage error of the model's ln-latency predictions
    /// against measured ln-latency (None when no candidate was predicted).
    pub ln_mape: Option<f64>,
    /// Every eligible candidate, measured, cheapest first.
    pub candidates: Vec<VerifiedCandidate>,
    /// The selection this verification re-measured.
    pub selection: Selection,
}

impl VerifyReport {
    /// Per-decision regret: how much slower the chosen candidate is than
    /// the oracle-best, in seconds per (amortized) iteration. Zero when the
    /// selector picked the measured-cheapest candidate.
    pub fn regret_seconds(&self) -> f64 {
        self.chosen_seconds - self.oracle_seconds
    }

    /// Regret as a fraction of the oracle latency (0 = perfect choice).
    pub fn relative_regret(&self) -> f64 {
        if self.oracle_seconds > 0.0 {
            self.regret_seconds() / self.oracle_seconds
        } else {
            0.0
        }
    }

    /// Largest relative disagreement between the ExecPlan and interpreter
    /// charge totals across candidates — the differential check. Should be
    /// ~0 (both paths charge identical work).
    pub fn differential_rel_error(&self) -> f64 {
        self.candidates
            .iter()
            .map(|c| {
                if c.interp_seconds > 0.0 {
                    (c.execplan_seconds - c.interp_seconds).abs() / c.interp_seconds
                } else {
                    0.0
                }
            })
            .fold(0.0, f64::max)
    }
}

/// Deterministically measures one candidate program: builds and binds its
/// [`ExecPlan`] against a virtual executor (charges only — no values), then
/// runs one steady-state iteration. Returns `(amortized, unamortized)`
/// seconds, where amortized = bind charges / `iterations` + one iteration's
/// charges, matching [`CostModelSet::predict_program`]'s semantics.
fn measure_candidate(
    exec: &Exec,
    engine: &Engine,
    program: &crate::assoc::CandidateProgram,
    inputs: &PlanInputs,
    iterations: usize,
) -> Result<(f64, f64)> {
    let iters = iterations.max(1) as f64;
    engine.take_profile(); // isolate this candidate's charges
    let exec_plan = ExecPlan::build(program)?;
    let mut bound = exec_plan.bind(exec, &inputs.as_program_inputs())?;
    let once_seconds = engine.take_profile().total_seconds();
    bound.iterate(exec)?;
    let iter_seconds = engine.take_profile().total_seconds();
    Ok((
        once_seconds / iters + iter_seconds,
        once_seconds + iter_seconds,
    ))
}

/// Verifies one selection decision: selects as [`crate::runtime::select`]
/// would, then measures every eligible candidate on a modeled engine for
/// `models`' device and reports regret (chosen vs. oracle-best), the cost
/// model's ln-latency MAPE, and the interpreter differential cross-check.
///
/// Modeled charges depend only on shapes and sparsity structure, so the
/// report is deterministic for a given (plan, graph, config, device).
///
/// # Errors
///
/// Propagates selection, build/bind, and kernel errors.
pub fn verify(
    plan: &CompiledModel,
    graph: &Graph,
    cfg: LayerConfig,
    models: &CostModelSet,
    iterations: usize,
) -> Result<VerifyReport> {
    let _span = granii_telemetry::span!(
        "audit.verify",
        model = plan.model.name(),
        nodes = graph.num_nodes(),
    );
    let selection = crate::runtime::select(plan, graph, cfg.k_in, cfg.k_out, models, iterations)?;

    let ctx = GraphCtx::new(graph)?;
    let h = DenseMatrix::random(graph.num_nodes(), cfg.k_in, 1.0, VERIFY_SEED);
    let inputs = PlanInputs::for_model(plan.model, cfg, &ctx, h, VERIFY_SEED + 1);
    let engine = Engine::modeled(models.device());
    let exec = Exec::virtual_only(&engine);

    let mut candidates = Vec::new();
    for cand in plan.eligible(cfg.k_in, cfg.k_out) {
        let (measured, execplan_seconds) =
            measure_candidate(&exec, &engine, &cand.program, &inputs, iterations)?;
        // Differential cross-check: one interpreter execution of the same
        // program must charge the same work the ExecPlan charged.
        engine.take_profile();
        interp::execute(&exec, &cand.program, &inputs.as_program_inputs())?;
        let interp_seconds = engine.take_profile().total_seconds();
        let predicted = if selection.used_cost_models {
            selection
                .predicted
                .iter()
                .find(|(comp, _)| *comp == cand.composition)
                .map(|&(_, cost)| cost)
        } else {
            None
        };
        candidates.push(VerifiedCandidate {
            composition: cand.composition,
            expr: cand.program.expr.clone(),
            predicted_seconds: predicted,
            measured_seconds: measured,
            execplan_seconds,
            interp_seconds,
        });
    }
    candidates.sort_by(|a, b| {
        a.measured_seconds
            .partial_cmp(&b.measured_seconds)
            .expect("finite charges")
    });

    let oracle = &candidates[0];
    let chosen_seconds = candidates
        .iter()
        .find(|c| c.composition == selection.composition)
        .map(|c| c.measured_seconds)
        .expect("chosen candidate was measured");
    let ln_errors: Vec<f64> = candidates
        .iter()
        .filter_map(|c| {
            let pred = c.predicted_seconds?;
            if pred > 0.0 && c.measured_seconds > 0.0 {
                let ln_meas = c.measured_seconds.ln();
                if ln_meas.abs() > f64::EPSILON {
                    return Some((pred.ln() - ln_meas).abs() / ln_meas.abs());
                }
            }
            None
        })
        .collect();
    let ln_mape = if ln_errors.is_empty() {
        None
    } else {
        Some(ln_errors.iter().sum::<f64>() / ln_errors.len() as f64)
    };

    granii_telemetry::counter_add("audit.verifications", 1);
    Ok(VerifyReport {
        model: plan.model,
        k1: cfg.k_in,
        k2: cfg.k_out,
        iterations,
        chosen: selection.composition,
        oracle: oracle.composition,
        chosen_seconds,
        oracle_seconds: oracle.measured_seconds,
        ln_mape,
        candidates,
        selection,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use granii_gnn::spec::{NormStrategy, OpOrder};

    fn tiny_audit(k1: usize) -> SelectionAudit {
        SelectionAudit {
            model: ModelKind::Gcn,
            k1,
            k2: 1,
            iterations: 1,
            input: None,
            candidates: Vec::new(),
            chosen: Composition::Gcn(NormStrategy::Dynamic, OpOrder::AggregateFirst),
            used_cost_models: false,
            featurize_seconds: 0.0,
            select_seconds: 0.0,
        }
    }

    #[test]
    fn sink_caps_a_million_records_and_counts_drops() {
        let mut sink = Sink {
            audits: VecDeque::new(),
            capacity: DEFAULT_AUDIT_CAPACITY,
            dropped: 0,
        };
        const TOTAL: usize = 1_000_000;
        for i in 0..TOTAL {
            sink.push(tiny_audit(i));
            assert!(sink.audits.len() <= DEFAULT_AUDIT_CAPACITY);
        }
        let drain = sink.take();
        assert_eq!(drain.audits.len(), DEFAULT_AUDIT_CAPACITY);
        assert_eq!(drain.dropped, (TOTAL - DEFAULT_AUDIT_CAPACITY) as u64);
        // Drop-oldest: the survivors are exactly the most recent records.
        assert_eq!(drain.audits[0].k1, TOTAL - DEFAULT_AUDIT_CAPACITY);
        assert_eq!(drain.audits.last().unwrap().k1, TOTAL - 1);
        // The drain resets the counter.
        let empty = sink.take();
        assert!(empty.audits.is_empty());
        assert_eq!(empty.dropped, 0);
    }

    #[test]
    fn shrinking_capacity_evicts_oldest() {
        let mut sink = Sink {
            audits: VecDeque::new(),
            capacity: 8,
            dropped: 0,
        };
        for i in 0..8 {
            sink.push(tiny_audit(i));
        }
        // Mirror set_capacity's shrink path on a local sink.
        sink.capacity = 3;
        while sink.audits.len() > sink.capacity {
            sink.audits.pop_front();
            sink.dropped += 1;
        }
        let drain = sink.take();
        assert_eq!(drain.dropped, 5);
        assert_eq!(
            drain.audits.iter().map(|a| a.k1).collect::<Vec<_>>(),
            vec![5, 6, 7]
        );
    }
}
