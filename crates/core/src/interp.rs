//! An interpreter for candidate programs — the execution side of GRANII's
//! code generation (paper §IV-D).
//!
//! The paper's back end emits Python calling the framework's kernels; this
//! reproduction's equivalent is executing a [`CandidateProgram`]'s primitive
//! steps directly. Each step's canonical signature (`(D·A·D)`, `((H·W)·a_l)`,
//! `σ(...)`, ...) names its operands, so the interpreter maintains an
//! environment from canonical expressions to computed values, seeds it with
//! the program's leaves, and folds the steps in order. Equal signatures are
//! computed once — the same common-subexpression reuse the enumerator
//! performs.
//!
//! The interpreter is also the ground truth for `assoc::lower`: integration
//! tests assert that every promoted tree's interpreted output equals the
//! lowered composition's kernel-sequence output.

use std::collections::BTreeMap;

use granii_gnn::Exec;
use granii_matrix::ops::BroadcastOp;
use granii_matrix::{CsrMatrix, DenseMatrix, PrimitiveKind, Semiring};

use crate::assoc::{CandidateProgram, PrimStep};
use crate::{CoreError, Result};

/// The operand bindings a program executes against.
#[derive(Debug)]
pub struct ProgramInputs<'a> {
    /// The aggregation mask bound to the leaf `A` (GCN-family programs expect
    /// the self-loop form `Ã`; GIN/SAGE expect the raw adjacency).
    pub adj: &'a CsrMatrix,
    /// `D̃^{-1/2}` bound to the leaf `D`.
    pub deg_inv_sqrt: &'a [f32],
    /// `D^{-1}` bound to the leaf `D^{-1}` (GraphSAGE's mean normalizer).
    pub deg_inv: &'a [f32],
    /// Node features bound to the leaf `H`.
    pub h: &'a DenseMatrix,
    /// Dense weights by leaf name (`W`, `W0`.., `W1`, `W2`, `W_self`,
    /// `W_neigh`, `a_l`, `a_r`).
    pub weights: &'a BTreeMap<String, DenseMatrix>,
    /// GIN's `ε` (the leaf `(1+ε)I` is the constant diagonal `1 + eps`).
    pub eps: f32,
    /// Degree coefficient of variation for the device model.
    pub irregularity: f64,
}

/// A value in the interpreter environment.
#[derive(Debug, Clone)]
enum Value {
    Dense(DenseMatrix),
    Sparse(CsrMatrix),
    Diag(Vec<f32>),
}

/// Executes a candidate program and returns its (dense) result.
///
/// # Errors
///
/// Returns [`CoreError::InvalidIr`] if the program references operands the
/// inputs do not provide or combines values of unexpected kinds, and
/// propagates kernel errors.
pub fn execute(
    exec: &Exec,
    program: &CandidateProgram,
    inputs: &ProgramInputs,
) -> Result<DenseMatrix> {
    let mut env: BTreeMap<String, Value> = BTreeMap::new();
    let n = inputs.adj.rows();
    env.insert("A".into(), Value::Sparse(inputs.adj.clone()));
    env.insert("D".into(), Value::Diag(inputs.deg_inv_sqrt.to_vec()));
    env.insert("D^{-1}".into(), Value::Diag(inputs.deg_inv.to_vec()));
    env.insert("H".into(), Value::Dense(inputs.h.clone()));
    env.insert("(1+ε)I".into(), Value::Diag(vec![1.0 + inputs.eps; n]));
    for (name, w) in inputs.weights {
        env.insert(name.clone(), Value::Dense(w.clone()));
    }

    let mut last_sig = String::new();
    for step in &program.steps {
        let value = eval_step(exec, step, &env, inputs)?;
        // Extra bindings: an add step's value is referenced downstream by the
        // full sum expression; the attention softmax is referenced as `α`.
        if let Some((prefix, rest)) = step.signature.split_once(':') {
            if prefix.starts_with("add") {
                env.insert(rest.to_string(), value.clone());
            }
            if prefix == "att-softmax" {
                env.insert("α".into(), value.clone());
            }
        }
        env.insert(step.signature.clone(), value);
        last_sig = step.signature.clone();
    }
    match lookup(&env, &last_sig)? {
        Value::Dense(m) => Ok(m.clone()),
        other => Err(CoreError::InvalidIr(format!(
            "program result {last_sig} is not dense: {other:?}"
        ))),
    }
}

/// Environment lookup tolerant to the optional outer parentheses of canonical
/// expressions.
fn lookup<'e>(env: &'e BTreeMap<String, Value>, expr: &str) -> Result<&'e Value> {
    if let Some(v) = env.get(expr) {
        return Ok(v);
    }
    let stripped = expr.strip_prefix('(').and_then(|e| e.strip_suffix(')'));
    if let Some(v) = stripped.and_then(|e| env.get(e)) {
        return Ok(v);
    }
    let wrapped = format!("({expr})");
    env.get(&wrapped)
        .ok_or_else(|| CoreError::InvalidIr(format!("unbound operand {expr}")))
}

/// Splits a canonical expression `(a·b·c)` / `(a + b)` at its top level.
/// Shared with the compile-once engine (`execplan`) so both resolve operands
/// identically.
pub(crate) fn split_top(expr: &str, sep: char) -> Vec<String> {
    let inner = expr
        .strip_prefix('(')
        .and_then(|e| e.strip_suffix(')'))
        .unwrap_or(expr);
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in inner.chars() {
        match c {
            '(' => {
                depth += 1;
                current.push(c);
            }
            ')' => {
                depth -= 1;
                current.push(c);
            }
            c if c == sep && depth == 0 => {
                parts.push(current.trim().to_string());
                current = String::new();
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        parts.push(current.trim().to_string());
    }
    parts
}

fn eval_step(
    exec: &Exec,
    step: &PrimStep,
    env: &BTreeMap<String, Value>,
    inputs: &ProgramInputs,
) -> Result<Value> {
    let sig = step.signature.as_str();
    let irr = inputs.irregularity;
    match step.kind {
        PrimitiveKind::Gemm => {
            let parts = split_top(sig, '·');
            let (a, b) = binary(&parts, sig)?;
            let (a, b) = (as_dense(lookup(env, &a)?)?, as_dense(lookup(env, &b)?)?);
            Ok(Value::Dense(exec.gemm(a, b)?))
        }
        PrimitiveKind::SpmmWeighted | PrimitiveKind::SpmmUnweighted => {
            let parts = split_top(sig, '·');
            let (s, x) = binary(&parts, sig)?;
            let sparse = as_sparse(lookup(env, &s)?)?;
            let dense = as_dense(lookup(env, &x)?)?;
            let semiring = if step.kind == PrimitiveKind::SpmmWeighted {
                Semiring::plus_mul()
            } else {
                Semiring::plus_copy_rhs()
            };
            Ok(Value::Dense(exec.spmm(sparse, dense, semiring, irr)?))
        }
        PrimitiveKind::Sddmm => {
            if let Some(theta) = sig.strip_prefix("att-logits:") {
                // GAT logits: per-edge ul_i + vr_j over the mask.
                let ul = as_dense(lookup(env, &format!("({theta}·a_l)"))?)?;
                let vr = as_dense(lookup(env, &format!("({theta}·a_r)"))?)?;
                let mask = inputs.adj;
                return Ok(Value::Sparse(exec.sddmm_u_add_v(
                    mask,
                    ul.as_slice(),
                    vr.as_slice(),
                    irr,
                )?));
            }
            // diag · sparse · diag edge scaling: exactly one sparse part,
            // diagonal factors on either side.
            let parts = split_top(sig, '·');
            let mut dl: Option<Vec<f32>> = None;
            let mut dr: Option<Vec<f32>> = None;
            let mut sparse: Option<CsrMatrix> = None;
            for part in &parts {
                match lookup(env, part)? {
                    Value::Diag(d) => {
                        let slot = if sparse.is_none() { &mut dl } else { &mut dr };
                        *slot = Some(match slot.take() {
                            None => d.clone(),
                            Some(prev) => prev.iter().zip(d).map(|(a, b)| a * b).collect(),
                        });
                    }
                    Value::Sparse(s) => {
                        if sparse.replace(s.clone()).is_some() {
                            return Err(CoreError::InvalidIr(format!(
                                "sddmm {sig} has two sparse operands"
                            )));
                        }
                    }
                    Value::Dense(_) => {
                        return Err(CoreError::InvalidIr(format!(
                            "sddmm {sig} has a dense operand"
                        )))
                    }
                }
            }
            let sparse = sparse.ok_or_else(|| {
                CoreError::InvalidIr(format!("sddmm {sig} lacks a sparse operand"))
            })?;
            Ok(Value::Sparse(exec.scale_csr(
                dl.as_deref(),
                &sparse,
                dr.as_deref(),
                irr,
            )?))
        }
        PrimitiveKind::RowBroadcast => {
            let parts = split_top(sig, '·');
            let (d, x) = binary(&parts, sig)?;
            let d = as_diag(lookup(env, &d)?)?.to_vec();
            let x = as_dense(lookup(env, &x)?)?;
            Ok(Value::Dense(exec.row_broadcast(&d, x, BroadcastOp::Mul)?))
        }
        PrimitiveKind::ColBroadcast => {
            let parts = split_top(sig, '·');
            let (x, d) = binary(&parts, sig)?;
            let x = as_dense(lookup(env, &x)?)?;
            let d = as_diag(lookup(env, &d)?)?.to_vec();
            Ok(Value::Dense(exec.col_broadcast(x, &d, BroadcastOp::Mul)?))
        }
        PrimitiveKind::EdgeSoftmax => {
            let theta = sig
                .strip_prefix("att-softmax:")
                .ok_or_else(|| CoreError::InvalidIr(format!("unexpected softmax {sig}")))?;
            let scored = as_sparse(lookup(env, &format!("att-leaky:{theta}"))?)?;
            Ok(Value::Sparse(exec.edge_softmax(scored, irr)?))
        }
        PrimitiveKind::Elementwise => {
            if let Some(theta) = sig.strip_prefix("att-leaky:") {
                let logits = as_sparse(lookup(env, &format!("att-logits:{theta}"))?)?;
                let slope = granii_gnn::models::GAT_SLOPE;
                return Ok(Value::Sparse(exec.map_csr_values(logits, move |v| {
                    if v >= 0.0 {
                        v
                    } else {
                        slope * v
                    }
                })?));
            }
            if let Some(inner) = sig.strip_prefix('σ') {
                let x = as_dense(lookup(env, inner)?)?;
                return Ok(Value::Dense(exec.map(x, 1, |v| v.max(0.0))));
            }
            if let Some((_, add_expr)) = sig.split_once(':') {
                // addN:(a + b + ...): the full sum; later addN steps of the
                // same expression find it bound and become no-ops via CSE at
                // generation time, but guard anyway.
                if let Ok(v) = lookup(env, add_expr) {
                    return Ok(v.clone());
                }
                let parts = split_top(add_expr, '+');
                let mut acc: Option<DenseMatrix> = None;
                for part in &parts {
                    let x = as_dense(lookup(env, part)?)?.clone();
                    acc = Some(match acc {
                        None => x,
                        Some(prev) => exec.zip(&prev, &x, 1, |a, b| a + b)?,
                    });
                }
                let sum = acc.ok_or_else(|| CoreError::InvalidIr(format!("empty sum in {sig}")))?;
                return Ok(Value::Dense(sum));
            }
            // Diagonal merge (D·D): element-wise product of per-node vectors.
            let parts = split_top(sig, '·');
            let mut acc: Option<Vec<f32>> = None;
            for part in &parts {
                let d = as_diag(lookup(env, part)?)?;
                acc = Some(match acc {
                    None => d.to_vec(),
                    Some(prev) => {
                        exec.engine()
                            .charge(granii_matrix::WorkStats::elementwise(d.len(), 1));
                        prev.iter().zip(d).map(|(a, b)| a * b).collect()
                    }
                });
            }
            Ok(Value::Diag(acc.ok_or_else(|| {
                CoreError::InvalidIr(format!("unrecognized elementwise step {sig}"))
            })?))
        }
        PrimitiveKind::Binning => Err(CoreError::InvalidIr(
            "binning never appears in GRANII-generated programs".into(),
        )),
    }
}

/// Binds the add expression produced by the Add rule: later steps reference
/// the whole `(a + b)` expression, so store the sum under it too.
fn binary(parts: &[String], sig: &str) -> Result<(String, String)> {
    if parts.len() != 2 {
        return Err(CoreError::InvalidIr(format!(
            "expected a binary product in {sig}, found {} parts",
            parts.len()
        )));
    }
    Ok((parts[0].clone(), parts[1].clone()))
}

fn as_dense(v: &Value) -> Result<&DenseMatrix> {
    match v {
        Value::Dense(m) => Ok(m),
        other => Err(CoreError::InvalidIr(format!(
            "expected dense, got {other:?}"
        ))),
    }
}

fn as_sparse(v: &Value) -> Result<&CsrMatrix> {
    match v {
        Value::Sparse(m) => Ok(m),
        other => Err(CoreError::InvalidIr(format!(
            "expected sparse, got {other:?}"
        ))),
    }
}

fn as_diag(v: &Value) -> Result<&[f32]> {
    match v {
        Value::Diag(d) => Ok(d),
        other => Err(CoreError::InvalidIr(format!(
            "expected diagonal, got {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::CompiledModel;
    use granii_gnn::spec::{LayerConfig, ModelKind};
    use granii_gnn::GraphCtx;
    use granii_graph::generators;
    use granii_matrix::device::{DeviceKind, Engine};
    use granii_matrix::ops;

    /// Weight names are model-specific (GIN's `W2` is its second MLP layer,
    /// TAGCN's `W2` is a per-hop weight), so fixtures are built per model.
    fn weights(model: ModelKind, cfg: LayerConfig) -> BTreeMap<String, DenseMatrix> {
        let mut w = BTreeMap::new();
        let scale = 0.5;
        match model {
            ModelKind::Gin => {
                w.insert(
                    "W1".into(),
                    DenseMatrix::random(cfg.k_in, cfg.k_out, scale, 2),
                );
                w.insert(
                    "W2".into(),
                    DenseMatrix::random(cfg.k_out, cfg.k_out, scale, 3),
                );
            }
            ModelKind::Tagcn => {
                for k in 0..=cfg.hops {
                    w.insert(
                        format!("W{k}"),
                        DenseMatrix::random(cfg.k_in, cfg.k_out, scale, 4 + k as u64),
                    );
                }
            }
            ModelKind::Sage => {
                w.insert(
                    "W_self".into(),
                    DenseMatrix::random(cfg.k_in, cfg.k_out, scale, 10),
                );
                w.insert(
                    "W_neigh".into(),
                    DenseMatrix::random(cfg.k_in, cfg.k_out, scale, 11),
                );
            }
            _ => {
                w.insert(
                    "W".into(),
                    DenseMatrix::random(cfg.k_in, cfg.k_out, scale, 1),
                );
                w.insert("a_l".into(), DenseMatrix::random(cfg.k_out, 1, scale, 12));
                w.insert("a_r".into(), DenseMatrix::random(cfg.k_out, 1, scale, 13));
            }
        }
        w
    }

    /// Every promoted candidate of every model interprets to the same value —
    /// the numerical form of "all association trees compute the same
    /// function".
    #[test]
    fn all_promoted_programs_agree_under_interpretation() {
        let g = generators::power_law(25, 3, 7).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let cfg = LayerConfig::new(6, 4);
        let h = DenseMatrix::random(25, 6, 1.0, 8);
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);
        let deg_inv: Vec<f32> = ctx
            .graph()
            .out_degrees()
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 })
            .collect();

        for model in [
            ModelKind::Gcn,
            ModelKind::Gin,
            ModelKind::Sgc,
            ModelKind::Tagcn,
            ModelKind::Gat,
            ModelKind::Sage,
        ] {
            // GIN and SAGE aggregate over the raw adjacency.
            let raw = matches!(model, ModelKind::Gin | ModelKind::Sage);
            let adj = if raw {
                ctx.graph().adj().clone()
            } else {
                ctx.adj().clone()
            };
            let w = weights(model, cfg);
            let inputs = ProgramInputs {
                adj: &adj,
                deg_inv_sqrt: ctx.deg_inv_sqrt(),
                deg_inv: &deg_inv,
                h: &h,
                weights: &w,
                eps: granii_gnn::models::GIN_EPS,
                irregularity: ctx.irregularity(),
            };
            let plan = CompiledModel::compile(model, cfg).unwrap();
            let mut reference: Option<DenseMatrix> = None;
            for cand in &plan.candidates {
                let out = execute(&exec, &cand.program, &inputs)
                    .unwrap_or_else(|e| panic!("{model}/{}: {e}", cand.program.expr));
                match &reference {
                    None => reference = Some(out),
                    Some(r) => {
                        let diff = out.max_abs_diff(r).unwrap();
                        assert!(diff < 1e-3, "{model}/{}: diff {diff}", cand.program.expr);
                    }
                }
            }
        }
    }

    /// The interpreted GCN program equals the closed-form reference
    /// `relu(D A D H W)` computed with raw kernels.
    #[test]
    fn gcn_interpretation_matches_closed_form() {
        let g = generators::power_law(20, 3, 9).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let cfg = LayerConfig::new(5, 3);
        let h = DenseMatrix::random(20, 5, 1.0, 10);
        let w = weights(ModelKind::Gcn, cfg);
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);

        let d = ctx.deg_inv_sqrt();
        let norm = ops::scale_csr(Some(d), ctx.adj(), Some(d)).unwrap();
        let reference = ops::gemm(
            &ops::spmm(&norm, &h, Semiring::plus_mul()).unwrap(),
            &w["W"],
        )
        .unwrap()
        .relu();

        let plan = CompiledModel::compile(ModelKind::Gcn, cfg).unwrap();
        let deg_inv = vec![0.0f32; 20];
        let inputs = ProgramInputs {
            adj: ctx.adj(),
            deg_inv_sqrt: d,
            deg_inv: &deg_inv,
            h: &h,
            weights: &w,
            eps: 0.0,
            irregularity: 0.0,
        };
        for cand in &plan.candidates {
            let out = execute(&exec, &cand.program, &inputs).unwrap();
            let diff = out.max_abs_diff(&reference).unwrap();
            assert!(diff < 1e-4, "{}: diff {diff}", cand.program.expr);
        }
    }

    /// Lowering soundness: the interpreted program and the executable
    /// composition it lowers to compute the same function (checked for GCN,
    /// whose layer exposes its weight).
    #[test]
    fn interpretation_matches_lowered_composition() {
        use granii_gnn::models::GnnLayer;
        let g = generators::power_law(22, 3, 11).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let cfg = LayerConfig::new(5, 4);
        let h = DenseMatrix::random(22, 5, 1.0, 12);
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);

        let layer = GnnLayer::new(ModelKind::Gcn, cfg, 33).unwrap();
        let weight = match &layer {
            GnnLayer::Gcn(gcn) => gcn.weight().clone(),
            _ => unreachable!(),
        };
        let mut w = BTreeMap::new();
        w.insert("W".to_string(), weight);
        let deg_inv = vec![0.0f32; 22];
        let inputs = ProgramInputs {
            adj: ctx.adj(),
            deg_inv_sqrt: ctx.deg_inv_sqrt(),
            deg_inv: &deg_inv,
            h: &h,
            weights: &w,
            eps: 0.0,
            irregularity: ctx.irregularity(),
        };
        let plan = CompiledModel::compile(ModelKind::Gcn, cfg).unwrap();
        for cand in &plan.candidates {
            let interpreted = execute(&exec, &cand.program, &inputs).unwrap();
            let prepared = layer.prepare(&exec, &ctx, cand.composition).unwrap();
            let lowered = layer
                .forward(&exec, &ctx, &prepared, &h, cand.composition)
                .unwrap();
            let diff = interpreted.max_abs_diff(&lowered).unwrap();
            assert!(
                diff < 1e-4,
                "{}: interp vs {} diff {diff}",
                cand.program.expr,
                cand.composition
            );
        }
    }

    /// Unbound operands are reported, not panicked on.
    #[test]
    fn missing_weights_are_typed_errors() {
        let g = generators::ring(6).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let cfg = LayerConfig::new(4, 4);
        let h = DenseMatrix::zeros(6, 4).unwrap();
        let empty = BTreeMap::new();
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);
        let plan = CompiledModel::compile(ModelKind::Gcn, cfg).unwrap();
        let deg_inv = vec![0.0f32; 6];
        let inputs = ProgramInputs {
            adj: ctx.adj(),
            deg_inv_sqrt: ctx.deg_inv_sqrt(),
            deg_inv: &deg_inv,
            h: &h,
            weights: &empty,
            eps: 0.0,
            irregularity: 0.0,
        };
        let err = execute(&exec, &plan.candidates[0].program, &inputs).unwrap_err();
        assert!(matches!(err, CoreError::InvalidIr(_)), "{err}");
    }
}
