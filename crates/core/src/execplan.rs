//! Compile-once execution engine for candidate programs (§IV-D's steady
//! state).
//!
//! The legacy [`crate::interp`] re-resolves every operand through a
//! string-keyed `BTreeMap` and re-allocates every intermediate on every call
//! — fine as a differential-test oracle, wrong as the thing that runs the
//! ~100 steady-state iterations the selection overhead amortizes over
//! (§VI-C). This module splits that work into three phases:
//!
//! 1. **Build** ([`ExecPlan::build`]): canonical-signature resolution. Each
//!    [`PrimStep`] is lowered once into a slot-addressed [`Instr`]; operand
//!    expressions are resolved through the same tolerant lookup the
//!    interpreter uses (exact / outer-paren-stripped / wrapped), `add` steps
//!    that alias an already-bound sum collapse to nothing, and hoisted
//!    (`once`) steps are separated from per-iteration steps. No inputs are
//!    needed yet — a plan is reusable across graphs.
//! 2. **Bind** ([`ExecPlan::bind`]): shape inference against concrete
//!    [`ProgramInputs`], slot assignment (dense per-iteration intermediates
//!    share physical buffers via a liveness-driven free list), buffer
//!    allocation, and one charged execution of the hoisted setup
//!    instructions.
//! 3. **Iterate** ([`BoundPlan::iterate`]): a flat loop over slot-addressed
//!    instructions driving the `_into` kernels. No `String` lookup, no
//!    `Value` clone, no heap allocation — every intermediate lands in a
//!    buffer assigned at bind time.
//!
//! The engine charges exactly the latencies the interpreter charges and
//! produces bitwise-identical outputs; `crates/core/tests` asserts both
//! differentially across every model × promoted candidate.

use std::collections::BTreeMap;
use std::time::Instant;

use granii_gnn::models::{GAT_SLOPE, GIN_EPS};
use granii_gnn::spec::{LayerConfig, ModelKind};
use granii_gnn::{Exec, GraphCtx};
use granii_matrix::device::ChargeSummary;
use granii_matrix::ops::BroadcastOp;
use granii_matrix::{CsrMatrix, DenseMatrix, PrimitiveKind, Semiring, WorkStats};
use granii_telemetry::{ProfileReport, ProfileRow};

use crate::assoc::{CandidateProgram, PrimStep};
use crate::interp::{split_top, ProgramInputs};
use crate::{CoreError, Result};

/// Index into the plan's value table (one entry per produced/leaf value).
type ValueId = usize;

/// What kind of value a [`ValueId`] holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ValueKind {
    Dense,
    Sparse,
    Diag,
}

/// A leaf operand, seeded from [`ProgramInputs`] at bind time.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Leaf {
    /// The aggregation mask `A`.
    Adj,
    /// `D̃^{-1/2}` (the leaf `D`).
    DegInvSqrt,
    /// `D^{-1}` (GraphSAGE's mean normalizer).
    DegInv,
    /// Node features `H`.
    Features,
    /// GIN's `(1+ε)I` constant diagonal.
    EpsIdentity,
    /// A dense weight leaf (`W`, `W1`, `a_l`, ...), looked up by name.
    Weight(String),
}

/// One slot-addressed instruction. Every operand and output is a [`ValueId`];
/// the bound plan maps ids to physical buffer slots.
#[derive(Debug, Clone)]
enum Instr {
    /// Dense × dense product.
    Gemm {
        a: ValueId,
        b: ValueId,
        out: ValueId,
    },
    /// Sparse × dense product; `weighted` selects the semiring the
    /// interpreter would use for the step's primitive kind.
    Spmm {
        adj: ValueId,
        x: ValueId,
        weighted: bool,
        out: ValueId,
    },
    /// GAT logits: per-edge `ul_i + vr_j` over the mask.
    AttLogits {
        mask: ValueId,
        ul: ValueId,
        vr: ValueId,
        out: ValueId,
    },
    /// `diag · sparse · diag` edge scaling; multiple diagonals per side are
    /// merged (uncharged, mirroring the interpreter) before the kernel.
    ScaleCsr {
        dl: Vec<ValueId>,
        sparse: ValueId,
        dr: Vec<ValueId>,
        out: ValueId,
    },
    /// Row-wise diagonal broadcast `diag(d) · X`.
    RowBroadcast {
        d: ValueId,
        x: ValueId,
        out: ValueId,
    },
    /// Column-wise diagonal broadcast `X · diag(d)`.
    ColBroadcast {
        x: ValueId,
        d: ValueId,
        out: ValueId,
    },
    /// GAT's LeakyReLU over edge logits.
    LeakyRelu { logits: ValueId, out: ValueId },
    /// Per-row softmax over edge scores.
    EdgeSoftmax { scored: ValueId, out: ValueId },
    /// Dense ReLU (`σ(...)` steps).
    Relu { x: ValueId, out: ValueId },
    /// N-ary dense sum: the first part is copied (uncharged, as the
    /// interpreter clones it), every further part is a charged element-wise
    /// add.
    AddN { parts: Vec<ValueId>, out: ValueId },
    /// Diagonal merge `(D·D·...)`: first part copied, every further part a
    /// charged element-wise product.
    DiagMerge { parts: Vec<ValueId>, out: ValueId },
}

impl Instr {
    /// Stable display name, used by the per-instruction profiler.
    fn name(&self) -> &'static str {
        match self {
            Instr::Gemm { .. } => "gemm",
            Instr::Spmm { weighted: true, .. } => "spmm_weighted",
            Instr::Spmm {
                weighted: false, ..
            } => "spmm",
            Instr::AttLogits { .. } => "att_logits",
            Instr::ScaleCsr { .. } => "scale_csr",
            Instr::RowBroadcast { .. } => "row_broadcast",
            Instr::ColBroadcast { .. } => "col_broadcast",
            Instr::LeakyRelu { .. } => "leaky_relu",
            Instr::EdgeSoftmax { .. } => "edge_softmax",
            Instr::Relu { .. } => "relu",
            Instr::AddN { .. } => "add_n",
            Instr::DiagMerge { .. } => "diag_merge",
        }
    }

    /// The value this instruction produces.
    fn out(&self) -> ValueId {
        match *self {
            Instr::Gemm { out, .. }
            | Instr::Spmm { out, .. }
            | Instr::AttLogits { out, .. }
            | Instr::ScaleCsr { out, .. }
            | Instr::RowBroadcast { out, .. }
            | Instr::ColBroadcast { out, .. }
            | Instr::LeakyRelu { out, .. }
            | Instr::EdgeSoftmax { out, .. }
            | Instr::Relu { out, .. }
            | Instr::AddN { out, .. }
            | Instr::DiagMerge { out, .. } => out,
        }
    }

    /// The values this instruction reads (bind-time liveness only — never
    /// called on the per-iteration path).
    fn operands(&self) -> Vec<ValueId> {
        match self {
            Instr::Gemm { a, b, .. } => vec![*a, *b],
            Instr::Spmm { adj, x, .. } => vec![*adj, *x],
            Instr::AttLogits { mask, ul, vr, .. } => vec![*mask, *ul, *vr],
            Instr::ScaleCsr { dl, sparse, dr, .. } => {
                let mut v = dl.clone();
                v.push(*sparse);
                v.extend_from_slice(dr);
                v
            }
            Instr::RowBroadcast { d, x, .. } => vec![*d, *x],
            Instr::ColBroadcast { x, d, .. } => vec![*x, *d],
            Instr::LeakyRelu { logits, .. } => vec![*logits],
            Instr::EdgeSoftmax { scored, .. } => vec![*scored],
            Instr::Relu { x, .. } => vec![*x],
            Instr::AddN { parts, .. } | Instr::DiagMerge { parts, .. } => parts.clone(),
        }
    }
}

/// A candidate program lowered to slot-addressed instructions, independent of
/// any concrete input. Build once with [`ExecPlan::build`], then
/// [`ExecPlan::bind`] it to inputs as many times as needed.
#[derive(Debug, Clone)]
pub struct ExecPlan {
    expr: String,
    values: Vec<ValueKind>,
    leaves: Vec<(ValueId, Leaf)>,
    setup: Vec<Instr>,
    iter: Vec<Instr>,
    output: ValueId,
}

/// Build-time state: the canonical-expression environment maps expression
/// strings to [`ValueId`]s exactly once; after build, no string survives on
/// the execution path.
#[derive(Debug, Default)]
struct Builder {
    env: BTreeMap<String, ValueId>,
    values: Vec<ValueKind>,
    leaves: Vec<(ValueId, Leaf)>,
}

impl Builder {
    fn new_value(&mut self, kind: ValueKind) -> ValueId {
        self.values.push(kind);
        self.values.len() - 1
    }

    fn seed_leaf(&mut self, name: &str, kind: ValueKind, leaf: Leaf) {
        let id = self.new_value(kind);
        self.leaves.push((id, leaf));
        self.env.insert(name.to_string(), id);
    }

    /// The interpreter's tolerant lookup: exact, outer-paren-stripped, then
    /// wrapped in parentheses.
    fn resolve_existing(&self, expr: &str) -> Option<ValueId> {
        if let Some(&id) = self.env.get(expr) {
            return Some(id);
        }
        let stripped = expr.strip_prefix('(').and_then(|e| e.strip_suffix(')'));
        if let Some(&id) = stripped.and_then(|e| self.env.get(e)) {
            return Some(id);
        }
        self.env.get(&format!("({expr})")).copied()
    }

    /// Resolves an operand, registering unseen bare names as dense weight
    /// leaves (the interpreter pre-binds every provided weight; the plan
    /// defers the existence check to bind time, where a missing weight is the
    /// same `unbound operand` error).
    fn resolve(&mut self, expr: &str) -> Result<ValueId> {
        if let Some(id) = self.resolve_existing(expr) {
            return Ok(id);
        }
        let bare = expr
            .strip_prefix('(')
            .and_then(|e| e.strip_suffix(')'))
            .unwrap_or(expr);
        let leaf_like = !bare.is_empty() && bare.chars().all(|c| c.is_alphanumeric() || c == '_');
        if leaf_like {
            let id = self.new_value(ValueKind::Dense);
            self.leaves.push((id, Leaf::Weight(bare.to_string())));
            self.env.insert(bare.to_string(), id);
            return Ok(id);
        }
        Err(CoreError::InvalidIr(format!("unbound operand {expr}")))
    }

    /// Resolves an operand and checks its kind.
    fn resolve_kind(&mut self, expr: &str, kind: ValueKind, sig: &str) -> Result<ValueId> {
        let id = self.resolve(expr)?;
        if self.values[id] != kind {
            return Err(CoreError::InvalidIr(format!(
                "operand {expr} of {sig} is {:?}, expected {kind:?}",
                self.values[id]
            )));
        }
        Ok(id)
    }
}

impl ExecPlan {
    /// Lowers a candidate program into a slot-addressed plan. This is the
    /// only place canonical-expression strings are resolved; the result
    /// contains none.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidIr`] for malformed programs (unbound
    /// compound operands, kind mismatches, non-dense results) — the same
    /// programs the interpreter rejects.
    pub fn build(program: &CandidateProgram) -> Result<Self> {
        let _span = granii_telemetry::span!("execplan.build", expr = program.expr.as_str());
        let t0 = Instant::now();
        let mut b = Builder::default();
        b.seed_leaf("A", ValueKind::Sparse, Leaf::Adj);
        b.seed_leaf("D", ValueKind::Diag, Leaf::DegInvSqrt);
        b.seed_leaf("D^{-1}", ValueKind::Diag, Leaf::DegInv);
        b.seed_leaf("H", ValueKind::Dense, Leaf::Features);
        b.seed_leaf("(1+ε)I", ValueKind::Diag, Leaf::EpsIdentity);

        let mut setup = Vec::new();
        let mut iter = Vec::new();
        let mut last = None;
        for step in &program.steps {
            let out = lower_step(&mut b, step, &mut setup, &mut iter)?;
            // Extra bindings mirror the interpreter: an add step's value is
            // referenced downstream by the full sum expression; the attention
            // softmax is referenced as `α`.
            if let Some((prefix, rest)) = step.signature.split_once(':') {
                if prefix.starts_with("add") {
                    b.env.insert(rest.to_string(), out);
                }
                if prefix == "att-softmax" {
                    b.env.insert("α".into(), out);
                }
            }
            b.env.insert(step.signature.clone(), out);
            last = Some(out);
        }
        let output = last.ok_or_else(|| CoreError::InvalidIr("program has no steps".into()))?;
        if b.values[output] != ValueKind::Dense {
            return Err(CoreError::InvalidIr(format!(
                "program result {} is not dense",
                program.expr
            )));
        }
        granii_telemetry::counter_add("execplan.instructions", (setup.len() + iter.len()) as u64);
        granii_telemetry::histogram_record_seconds("execplan.build", t0.elapsed().as_secs_f64());
        Ok(Self {
            expr: program.expr.clone(),
            values: b.values,
            leaves: b.leaves,
            setup,
            iter,
            output,
        })
    }

    /// The program's canonical expression.
    pub fn expr(&self) -> &str {
        &self.expr
    }

    /// Number of hoisted (run-once) instructions.
    pub fn setup_len(&self) -> usize {
        self.setup.len()
    }

    /// Number of per-iteration instructions.
    pub fn iter_len(&self) -> usize {
        self.iter.len()
    }

    /// Binds the plan to concrete inputs: infers every shape, assigns
    /// physical buffer slots (dense per-iteration intermediates share slots
    /// via a liveness-driven free list), allocates all buffers, and runs the
    /// hoisted setup instructions once (charging their latency once — the
    /// amortized precompute of §IV-D).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidIr`] for missing weights (`unbound
    /// operand`) and propagates kernel errors from the setup run.
    pub fn bind(&self, exec: &Exec, inputs: &ProgramInputs) -> Result<BoundPlan> {
        let _span = granii_telemetry::span!("execplan.bind", expr = self.expr.as_str());
        let t0 = Instant::now();
        let n = inputs.adj.rows();

        // Shape inference (setup instructions precede — and never read —
        // per-iteration values, so chaining the two lists preserves
        // definition order).
        let mut shape: Vec<Option<Shape>> = vec![None; self.values.len()];
        for (id, leaf) in &self.leaves {
            shape[*id] = Some(match leaf {
                Leaf::Adj => Shape::Sparse,
                Leaf::DegInvSqrt => Shape::Diag(inputs.deg_inv_sqrt.len()),
                Leaf::DegInv => Shape::Diag(inputs.deg_inv.len()),
                Leaf::Features => Shape::Dense(inputs.h.rows(), inputs.h.cols()),
                Leaf::EpsIdentity => Shape::Diag(n),
                Leaf::Weight(name) => {
                    let w = inputs
                        .weights
                        .get(name)
                        .ok_or_else(|| CoreError::InvalidIr(format!("unbound operand {name}")))?;
                    Shape::Dense(w.rows(), w.cols())
                }
            });
        }
        for instr in self.setup.iter().chain(&self.iter) {
            let s = infer_shape(instr, &shape, n)?;
            shape[instr.out()] = Some(s);
        }

        // Slot assignment. Leaves, setup outputs, the final output, and
        // sparse/diag values get dedicated slots; dense per-iteration
        // intermediates recycle slots through an exact-shape free list.
        // An instruction's output slot is claimed *before* its dying
        // operands are freed, so an output buffer never aliases a live
        // operand — required by the `_into` kernels.
        const UNASSIGNED: usize = usize::MAX;
        let mut slot_of = vec![UNASSIGNED; self.values.len()];
        let mut num_slots = 0usize;
        for (id, _) in &self.leaves {
            slot_of[*id] = num_slots;
            num_slots += 1;
        }
        for instr in &self.setup {
            slot_of[instr.out()] = num_slots;
            num_slots += 1;
        }
        let mut produced_in_iter = vec![false; self.values.len()];
        for instr in &self.iter {
            produced_in_iter[instr.out()] = true;
        }
        let mut last_use = vec![usize::MAX; self.values.len()];
        for (i, instr) in self.iter.iter().enumerate() {
            for v in instr.operands() {
                last_use[v] = i;
            }
        }
        let mut free: Vec<(usize, usize, usize)> = Vec::new();
        for (i, instr) in self.iter.iter().enumerate() {
            let out = instr.out();
            if slot_of[out] == UNASSIGNED {
                let sharable = self.values[out] == ValueKind::Dense && out != self.output;
                slot_of[out] = if sharable {
                    let (r, c) = dense_dims(shape_of(&shape, out)?)?;
                    match free.iter().position(|&(fr, fc, _)| (fr, fc) == (r, c)) {
                        Some(p) => free.swap_remove(p).2,
                        None => {
                            num_slots += 1;
                            num_slots - 1
                        }
                    }
                } else {
                    num_slots += 1;
                    num_slots - 1
                };
            }
            let mut ops = instr.operands();
            ops.sort_unstable();
            ops.dedup();
            for v in ops {
                if produced_in_iter[v]
                    && v != self.output
                    && self.values[v] == ValueKind::Dense
                    && last_use[v] == i
                {
                    let (r, c) = dense_dims(shape_of(&shape, v)?)?;
                    free.push((r, c, slot_of[v]));
                }
            }
        }

        // Buffer allocation: leaves are seeded from the inputs, instruction
        // outputs get zeroed buffers of the inferred shape. This is the last
        // time this plan allocates.
        let mut slots: Vec<Slot> = Vec::with_capacity(num_slots);
        slots.resize_with(num_slots, || Slot::Empty);
        for (id, leaf) in &self.leaves {
            slots[slot_of[*id]] = match leaf {
                Leaf::Adj => Slot::Sparse(inputs.adj.clone()),
                Leaf::DegInvSqrt => Slot::Diag(inputs.deg_inv_sqrt.to_vec()),
                Leaf::DegInv => Slot::Diag(inputs.deg_inv.to_vec()),
                Leaf::Features => Slot::Dense(inputs.h.clone()),
                Leaf::EpsIdentity => Slot::Diag(vec![1.0 + inputs.eps; n]),
                Leaf::Weight(name) => Slot::Dense(
                    inputs
                        .weights
                        .get(name)
                        .ok_or_else(|| CoreError::InvalidIr(format!("unbound operand {name}")))?
                        .clone(),
                ),
            };
        }
        for instr in self.setup.iter().chain(&self.iter) {
            let slot = slot_of[instr.out()];
            if !matches!(slots[slot], Slot::Empty) {
                continue; // shared slot, already allocated
            }
            slots[slot] = match shape_of(&shape, instr.out())? {
                Shape::Dense(r, c) => Slot::Dense(DenseMatrix::zeros(r, c)?),
                Shape::Sparse => Slot::Sparse(
                    inputs
                        .adj
                        .clone()
                        .drop_values()
                        .with_values(vec![0.0; inputs.adj.nnz()])?,
                ),
                Shape::Diag(len) => Slot::Diag(vec![0.0; len]),
            };
        }

        // Batched (multi-RHS) lowering, decided once per bind: a value is
        // "batched" when it carries per-request columns — the Features leaf,
        // and everything the iteration derives from it. The plan admits
        // batched execution iff every per-iteration instruction has a
        // column-stacked kernel for its operand pattern (attention/edge-wise
        // and diagonal iteration steps do not; those plans keep the serial
        // path). Setup instructions ran above on narrow buffers and are
        // block-invariant by construction, so they never need widening.
        let mut batched = vec![false; self.values.len()];
        if let Some((features, _)) = self
            .leaves
            .iter()
            .find(|(_, leaf)| matches!(leaf, Leaf::Features))
        {
            batched[*features] = true;
        }
        let mut supported = true;
        for instr in &self.iter {
            let ok = match instr {
                Instr::Gemm { a, b, out } => {
                    // Stacked LHS against the shared (unbatched) weight.
                    batched[*a] && !batched[*b] && {
                        batched[*out] = true;
                        true
                    }
                }
                Instr::Spmm { x, out, .. }
                | Instr::RowBroadcast { x, out, .. }
                | Instr::ColBroadcast { x, out, .. }
                | Instr::Relu { x, out } => {
                    batched[*x] && {
                        batched[*out] = true;
                        true
                    }
                }
                Instr::AddN { parts, out } => {
                    parts.iter().all(|p| batched[*p]) && {
                        batched[*out] = true;
                        true
                    }
                }
                _ => false,
            };
            if !ok {
                supported = false;
                break;
            }
        }
        supported = supported && batched[self.output];
        let batch_plan = if supported {
            // Per-slot single-request block width for every slot that needs
            // a wide twin (batched iteration outputs and operands).
            let mut wide_cols = vec![0usize; num_slots];
            for instr in &self.iter {
                for v in instr.operands().into_iter().chain([instr.out()]) {
                    if batched[v] {
                        let (_, c) = dense_dims(shape_of(&shape, v)?)?;
                        wide_cols[slot_of[v]] = c;
                    }
                }
            }
            let features_slot = self
                .leaves
                .iter()
                .find(|(id, leaf)| matches!(leaf, Leaf::Features) && wide_cols[slot_of[*id]] > 0)
                .map(|(id, _)| slot_of[*id]);
            Some(BatchLowering {
                wide_cols,
                features_slot,
            })
        } else {
            None
        };

        let mut bound = BoundPlan {
            setup: self.setup.clone(),
            iter: self.iter.clone(),
            slot_of,
            slots,
            output: self.output,
            irregularity: inputs.irregularity,
            expr: self.expr.clone(),
            setup_stats: vec![InstrStat::default(); self.setup.len()],
            profiler: None,
            batch_plan,
            batch_state: None,
        };
        // Hoisted precompute: charged once, here. Attribution is captured
        // per instruction so a later profile report can show the setup rows
        // even when steady-state profiling was never enabled.
        for (i, instr) in bound.setup.iter().enumerate() {
            let mark = exec.profile_mark();
            let start = Instant::now();
            exec_instr(
                exec,
                instr,
                &bound.slot_of,
                &mut bound.slots,
                bound.irregularity,
            )?;
            let host_ns = start.elapsed().as_nanos() as u64;
            bound.setup_stats[i].absorb(host_ns, &exec.charged_since(mark));
        }
        granii_telemetry::histogram_record_seconds("execplan.bind", t0.elapsed().as_secs_f64());
        Ok(bound)
    }
}

/// Concrete shape of a value, known after bind-time inference.
#[derive(Debug, Clone, Copy)]
enum Shape {
    Dense(usize, usize),
    /// All sparse values share the adjacency pattern (logits, leaky scores,
    /// softmax weights, and scaled adjacencies are all masked by `A`).
    Sparse,
    Diag(usize),
}

fn shape_of(shape: &[Option<Shape>], id: ValueId) -> Result<Shape> {
    shape[id].ok_or_else(|| CoreError::InvalidIr("value used before definition".into()))
}

fn dense_dims(s: Shape) -> Result<(usize, usize)> {
    match s {
        Shape::Dense(r, c) => Ok((r, c)),
        other => Err(CoreError::InvalidIr(format!(
            "expected a dense shape, got {other:?}"
        ))),
    }
}

fn diag_len(s: Shape) -> Result<usize> {
    match s {
        Shape::Diag(l) => Ok(l),
        other => Err(CoreError::InvalidIr(format!(
            "expected a diagonal shape, got {other:?}"
        ))),
    }
}

fn infer_shape(instr: &Instr, shape: &[Option<Shape>], n: usize) -> Result<Shape> {
    Ok(match instr {
        Instr::Gemm { a, b, .. } => {
            let (ar, _) = dense_dims(shape_of(shape, *a)?)?;
            let (_, bc) = dense_dims(shape_of(shape, *b)?)?;
            Shape::Dense(ar, bc)
        }
        Instr::Spmm { x, .. } => {
            let (_, xc) = dense_dims(shape_of(shape, *x)?)?;
            Shape::Dense(n, xc)
        }
        Instr::AttLogits { .. }
        | Instr::ScaleCsr { .. }
        | Instr::LeakyRelu { .. }
        | Instr::EdgeSoftmax { .. } => Shape::Sparse,
        Instr::RowBroadcast { x, .. } | Instr::ColBroadcast { x, .. } | Instr::Relu { x, .. } => {
            shape_of(shape, *x)?
        }
        Instr::AddN { parts, .. } => shape_of(shape, parts[0])?,
        Instr::DiagMerge { parts, .. } => Shape::Diag(diag_len(shape_of(shape, parts[0])?)?),
    })
}

/// Lowers one primitive step, pushing the instruction into `setup` (hoisted)
/// or `iter` and returning the produced value. Mirrors the interpreter's
/// `eval_step` case for case.
fn lower_step(
    b: &mut Builder,
    step: &PrimStep,
    setup: &mut Vec<Instr>,
    iter: &mut Vec<Instr>,
) -> Result<ValueId> {
    let sig = step.signature.as_str();
    let instr = match step.kind {
        PrimitiveKind::Gemm => {
            let parts = binary(&split_top(sig, '·'), sig)?;
            let a = b.resolve_kind(&parts.0, ValueKind::Dense, sig)?;
            let rhs = b.resolve_kind(&parts.1, ValueKind::Dense, sig)?;
            let out = b.new_value(ValueKind::Dense);
            Instr::Gemm { a, b: rhs, out }
        }
        PrimitiveKind::SpmmWeighted | PrimitiveKind::SpmmUnweighted => {
            let parts = binary(&split_top(sig, '·'), sig)?;
            let adj = b.resolve_kind(&parts.0, ValueKind::Sparse, sig)?;
            let x = b.resolve_kind(&parts.1, ValueKind::Dense, sig)?;
            let out = b.new_value(ValueKind::Dense);
            Instr::Spmm {
                adj,
                x,
                weighted: step.kind == PrimitiveKind::SpmmWeighted,
                out,
            }
        }
        PrimitiveKind::Sddmm => {
            if let Some(theta) = sig.strip_prefix("att-logits:") {
                let ul = b.resolve_kind(&format!("({theta}·a_l)"), ValueKind::Dense, sig)?;
                let vr = b.resolve_kind(&format!("({theta}·a_r)"), ValueKind::Dense, sig)?;
                let mask = b.resolve_kind("A", ValueKind::Sparse, sig)?;
                let out = b.new_value(ValueKind::Sparse);
                Instr::AttLogits { mask, ul, vr, out }
            } else {
                // diag · sparse · diag edge scaling: exactly one sparse part,
                // diagonal factors on either side.
                let mut dl = Vec::new();
                let mut dr = Vec::new();
                let mut sparse = None;
                for part in &split_top(sig, '·') {
                    let id = b.resolve(part)?;
                    match b.values[id] {
                        ValueKind::Diag => {
                            if sparse.is_none() {
                                dl.push(id);
                            } else {
                                dr.push(id);
                            }
                        }
                        ValueKind::Sparse => {
                            if sparse.replace(id).is_some() {
                                return Err(CoreError::InvalidIr(format!(
                                    "sddmm {sig} has two sparse operands"
                                )));
                            }
                        }
                        ValueKind::Dense => {
                            return Err(CoreError::InvalidIr(format!(
                                "sddmm {sig} has a dense operand"
                            )))
                        }
                    }
                }
                let sparse = sparse.ok_or_else(|| {
                    CoreError::InvalidIr(format!("sddmm {sig} lacks a sparse operand"))
                })?;
                let out = b.new_value(ValueKind::Sparse);
                Instr::ScaleCsr {
                    dl,
                    sparse,
                    dr,
                    out,
                }
            }
        }
        PrimitiveKind::RowBroadcast => {
            let parts = binary(&split_top(sig, '·'), sig)?;
            let d = b.resolve_kind(&parts.0, ValueKind::Diag, sig)?;
            let x = b.resolve_kind(&parts.1, ValueKind::Dense, sig)?;
            let out = b.new_value(ValueKind::Dense);
            Instr::RowBroadcast { d, x, out }
        }
        PrimitiveKind::ColBroadcast => {
            let parts = binary(&split_top(sig, '·'), sig)?;
            let x = b.resolve_kind(&parts.0, ValueKind::Dense, sig)?;
            let d = b.resolve_kind(&parts.1, ValueKind::Diag, sig)?;
            let out = b.new_value(ValueKind::Dense);
            Instr::ColBroadcast { x, d, out }
        }
        PrimitiveKind::EdgeSoftmax => {
            let theta = sig
                .strip_prefix("att-softmax:")
                .ok_or_else(|| CoreError::InvalidIr(format!("unexpected softmax {sig}")))?;
            let scored = b.resolve_kind(&format!("att-leaky:{theta}"), ValueKind::Sparse, sig)?;
            let out = b.new_value(ValueKind::Sparse);
            Instr::EdgeSoftmax { scored, out }
        }
        PrimitiveKind::Elementwise => {
            if let Some(theta) = sig.strip_prefix("att-leaky:") {
                let logits =
                    b.resolve_kind(&format!("att-logits:{theta}"), ValueKind::Sparse, sig)?;
                let out = b.new_value(ValueKind::Sparse);
                Instr::LeakyRelu { logits, out }
            } else if let Some(inner) = sig.strip_prefix('σ') {
                let x = b.resolve_kind(inner, ValueKind::Dense, sig)?;
                let out = b.new_value(ValueKind::Dense);
                Instr::Relu { x, out }
            } else if let Some((_, add_expr)) = sig.split_once(':') {
                // addN:(a + b + ...): if the sum is already bound the step is
                // a no-op alias (the interpreter returns the binding without
                // charging).
                if let Some(id) = b.resolve_existing(add_expr) {
                    return Ok(id);
                }
                let parts = split_top(add_expr, '+');
                if parts.is_empty() {
                    return Err(CoreError::InvalidIr(format!("empty sum in {sig}")));
                }
                let parts = parts
                    .iter()
                    .map(|p| b.resolve_kind(p, ValueKind::Dense, sig))
                    .collect::<Result<Vec<_>>>()?;
                let out = b.new_value(ValueKind::Dense);
                Instr::AddN { parts, out }
            } else {
                // Diagonal merge (D·D): element-wise product of per-node
                // vectors.
                let parts = split_top(sig, '·');
                if parts.is_empty() {
                    return Err(CoreError::InvalidIr(format!(
                        "unrecognized elementwise step {sig}"
                    )));
                }
                let parts = parts
                    .iter()
                    .map(|p| b.resolve_kind(p, ValueKind::Diag, sig))
                    .collect::<Result<Vec<_>>>()?;
                let out = b.new_value(ValueKind::Diag);
                Instr::DiagMerge { parts, out }
            }
        }
        PrimitiveKind::Binning => {
            return Err(CoreError::InvalidIr(
                "binning never appears in GRANII-generated programs".into(),
            ))
        }
    };
    let out = instr.out();
    if step.once {
        setup.push(instr);
    } else {
        iter.push(instr);
    }
    Ok(out)
}

fn binary(parts: &[String], sig: &str) -> Result<(String, String)> {
    if parts.len() != 2 {
        return Err(CoreError::InvalidIr(format!(
            "expected a binary product in {sig}, found {} parts",
            parts.len()
        )));
    }
    Ok((parts[0].clone(), parts[1].clone()))
}

/// A physical buffer slot of a bound plan.
#[derive(Debug)]
enum Slot {
    /// Temporarily vacated while its buffer is being written.
    Empty,
    Dense(DenseMatrix),
    Sparse(CsrMatrix),
    Diag(Vec<f32>),
}

impl Slot {
    fn kind_name(&self) -> &'static str {
        match self {
            Slot::Empty => "empty",
            Slot::Dense(_) => "dense",
            Slot::Sparse(_) => "sparse",
            Slot::Diag(_) => "diag",
        }
    }
}

/// Accumulated timing and work attribution for one instruction; filled by
/// the bind-time setup run and the profiled iterate path.
#[derive(Debug, Clone, Copy, Default)]
struct InstrStat {
    calls: u64,
    host_ns: u64,
    charged_ns: u64,
    predicted_ns: u64,
    flops: u64,
    bytes: u64,
}

impl InstrStat {
    fn absorb(&mut self, host_ns: u64, summary: &ChargeSummary) {
        self.calls += 1;
        self.host_ns += host_ns;
        self.charged_ns += (summary.charged_seconds * 1e9) as u64;
        self.predicted_ns += (summary.predicted_seconds * 1e9) as u64;
        self.flops += summary.flops;
        self.bytes += summary.bytes;
    }

    fn to_row(self, index: usize, name: &'static str, phase: &str) -> ProfileRow {
        ProfileRow {
            index,
            name: name.to_owned(),
            phase: phase.to_owned(),
            calls: self.calls,
            host_ns: self.host_ns,
            charged_ns: self.charged_ns,
            predicted_ns: self.predicted_ns,
            flops: self.flops,
            bytes: self.bytes,
        }
    }
}

/// Per-iteration instruction profiler, attached by
/// [`BoundPlan::enable_profiling`]. Rows are pre-sized (one per iterate
/// instruction) so the profiled loop itself never allocates.
#[derive(Debug)]
struct IterProfiler {
    iterations: u64,
    stats: Vec<InstrStat>,
}

/// What one observed steady-state iteration cost (see
/// [`BoundPlan::iterate_observed`]): wall-clock on the host, and the
/// engine-charged figure — which on a modeled engine is the deterministic
/// device-model cost the drift detector compares against predictions.
#[derive(Debug, Clone, Copy)]
pub struct IterationObservation {
    /// Host wall-clock seconds for the iteration.
    pub host_seconds: f64,
    /// Engine-charged seconds for the iteration's kernels.
    pub charged_seconds: f64,
    /// Floating-point operations the engine attributed to the iteration.
    pub flops: u64,
    /// Bytes (read + written) the engine attributed to the iteration.
    pub bytes: u64,
}

/// Bind-time batched lowering: which physical slots get wide (multi-RHS)
/// twins, and how wide one request's block is in each. `None` on a
/// [`BoundPlan`] means the plan has no column-stacked lowering and callers
/// must iterate serially per request.
#[derive(Debug, Clone)]
struct BatchLowering {
    /// Per-slot single-request block width; `0` for slots without a wide
    /// twin (sparse, diagonal, weight, and setup-only slots).
    wide_cols: Vec<usize>,
    /// Slot of the Features leaf when the iteration reads it — the wide twin
    /// is seeded by tiling the bound `H` across every block.
    features_slot: Option<usize>,
}

/// Lazily-allocated wide buffers for batched execution, sized once for the
/// widest batch (`capacity` blocks); a smaller batch touches only its
/// leading blocks, so steady-state batched iteration allocates nothing.
#[derive(Debug)]
struct BatchState {
    capacity: usize,
    /// Per-slot wide twin (`rows × capacity·wide_cols[slot]`), `None` where
    /// `wide_cols` is 0. `Option` also lets the executor vacate the output
    /// buffer during a kernel, mirroring the serial slot protocol.
    wide: Vec<Option<DenseMatrix>>,
}

/// An [`ExecPlan`] bound to concrete inputs: every value has a physical
/// buffer, the hoisted setup has run, and [`BoundPlan::iterate`] performs one
/// steady-state iteration with zero heap allocation and zero string lookups.
#[derive(Debug)]
pub struct BoundPlan {
    setup: Vec<Instr>,
    iter: Vec<Instr>,
    slot_of: Vec<usize>,
    slots: Vec<Slot>,
    output: ValueId,
    irregularity: f64,
    expr: String,
    setup_stats: Vec<InstrStat>,
    profiler: Option<IterProfiler>,
    batch_plan: Option<BatchLowering>,
    batch_state: Option<BatchState>,
}

impl BoundPlan {
    /// Runs one steady-state iteration and reports what it cost, both on the
    /// host clock and in engine charges. The charged figure covers exactly
    /// this iteration's kernels (hoisted setup was charged at bind time), so
    /// on a modeled engine it is the deterministic measured counterpart of
    /// [`crate::cost::CostModelSet::predict_steady_state`] — the pair the
    /// serving runtime's drift detector compares. Allocation-free beyond
    /// what [`BoundPlan::iterate`] itself does (nothing, in steady state).
    ///
    /// The output buffer stays readable through [`BoundPlan::output`].
    ///
    /// # Errors
    ///
    /// Propagates kernel errors, as [`BoundPlan::iterate`] does.
    pub fn iterate_observed(&mut self, exec: &Exec) -> Result<IterationObservation> {
        let mark = exec.profile_mark();
        let start = Instant::now();
        self.iterate(exec)?;
        let host_seconds = start.elapsed().as_secs_f64();
        let summary = exec.charged_since(mark);
        Ok(IterationObservation {
            host_seconds,
            charged_seconds: summary.charged_seconds,
            flops: summary.flops,
            bytes: summary.bytes,
        })
    }

    /// Runs one steady-state iteration and returns the output buffer.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (shape mismatches cannot occur for plans that
    /// bound successfully).
    pub fn iterate(&mut self, exec: &Exec) -> Result<&DenseMatrix> {
        let t0 = Instant::now();
        if let Some(profiler) = &mut self.profiler {
            profiler.iterations += 1;
            for (i, instr) in self.iter.iter().enumerate() {
                let mark = exec.profile_mark();
                let start = Instant::now();
                exec_instr(
                    exec,
                    instr,
                    &self.slot_of,
                    &mut self.slots,
                    self.irregularity,
                )?;
                let host_ns = start.elapsed().as_nanos() as u64;
                profiler.stats[i].absorb(host_ns, &exec.charged_since(mark));
            }
        } else {
            for instr in &self.iter {
                exec_instr(
                    exec,
                    instr,
                    &self.slot_of,
                    &mut self.slots,
                    self.irregularity,
                )?;
            }
        }
        granii_telemetry::histogram_record_seconds(
            "execplan.iteration",
            t0.elapsed().as_secs_f64(),
        );
        granii_telemetry::counter_add("execplan.iterations", 1);
        self.output()
    }

    /// Whether this plan admits batched (multi-RHS) execution. Decided at
    /// bind time: true iff every per-iteration instruction has a
    /// column-stacked lowering (attention/edge-wise plans do not).
    pub fn batch_supported(&self) -> bool {
        self.batch_plan.is_some()
    }

    /// The widest batch [`BoundPlan::iterate_batched`] can currently run
    /// (0 until [`BoundPlan::ensure_batch`] has allocated wide buffers).
    pub fn batch_capacity(&self) -> usize {
        self.batch_state.as_ref().map_or(0, |s| s.capacity)
    }

    /// Makes sure wide buffers exist for batches up to `capacity` blocks,
    /// allocating (grow-only) when needed and tiling the bound features
    /// across every block. Returns `false` — allocating nothing — when the
    /// plan has no batched lowering. This is the batched path's only
    /// allocation site: treat it as bind-time warm-up; steady-state
    /// [`BoundPlan::iterate_batched`] calls are allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidIr`] for a zero `capacity` and propagates
    /// allocation-guard errors.
    pub fn ensure_batch(&mut self, capacity: usize) -> Result<bool> {
        let Some(lowering) = &self.batch_plan else {
            return Ok(false);
        };
        if capacity == 0 {
            return Err(CoreError::InvalidIr(
                "batch capacity must be at least 1".into(),
            ));
        }
        if let Some(state) = &self.batch_state {
            if state.capacity >= capacity {
                return Ok(true);
            }
        }
        let mut wide: Vec<Option<DenseMatrix>> = vec![None; self.slots.len()];
        for (slot, &k) in lowering.wide_cols.iter().enumerate() {
            if k == 0 {
                continue;
            }
            let rows = dense_at(&self.slots, slot, "batched buffer seed")?.rows();
            wide[slot] = Some(DenseMatrix::zeros(rows, capacity * k)?);
        }
        if let Some(fs) = lowering.features_slot {
            let narrow = dense_at(&self.slots, fs, "features")?;
            let buf = wide[fs].as_mut().expect("features slot has a wide twin");
            granii_matrix::ops::tile_cols_into(narrow, capacity, buf)?;
        }
        self.batch_state = Some(BatchState { capacity, wide });
        Ok(true)
    }

    /// Overwrites block `t` of the wide features buffer with `h` — for
    /// callers whose stacked requests carry *distinct* right-hand sides.
    /// (After [`BoundPlan::ensure_batch`], every block defaults to the bound
    /// `H`.) Uncharged, like leaf seeding at bind time.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidIr`] if the plan has no batched features
    /// buffer, `t` lies outside the bound capacity, or `h` has the wrong
    /// shape.
    pub fn seed_batch_features(&mut self, t: usize, h: &DenseMatrix) -> Result<()> {
        let fs = self
            .batch_plan
            .as_ref()
            .and_then(|l| l.features_slot)
            .ok_or_else(|| CoreError::InvalidIr("plan has no batched features buffer".into()))?;
        let state = self.batch_state.as_mut().ok_or_else(|| {
            CoreError::InvalidIr("seed_batch_features before ensure_batch".into())
        })?;
        if t >= state.capacity {
            return Err(CoreError::InvalidIr(format!(
                "block {t} outside the bound capacity {}",
                state.capacity
            )));
        }
        let narrow = dense_at(&self.slots, fs, "features")?;
        if h.shape() != narrow.shape() {
            return Err(CoreError::InvalidIr(format!(
                "features block shape {:?} does not match the bound {:?}",
                h.shape(),
                narrow.shape()
            )));
        }
        let buf = state.wide[fs]
            .as_mut()
            .expect("features slot has a wide twin");
        let k = h.cols();
        for i in 0..h.rows() {
            buf.row_mut(i)[t * k..(t + 1) * k].copy_from_slice(h.row(i));
        }
        Ok(())
    }

    /// Runs one steady-state iteration over `batch` column-stacked requests
    /// — ONE multi-RHS pass through the instruction list. Block `t`'s result
    /// (readable via [`BoundPlan::output_block`]) is bitwise identical to a
    /// serial [`BoundPlan::iterate`] for that request, and the engine is
    /// charged exactly `batch` serial iterations (per-column charge
    /// semantics unchanged), so a per-request share is `charged / batch`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidIr`] if the plan has no batched lowering
    /// or `batch` exceeds the [`BoundPlan::ensure_batch`] capacity;
    /// propagates kernel errors.
    pub fn iterate_batched(&mut self, exec: &Exec, batch: usize) -> Result<()> {
        let t0 = Instant::now();
        let Some(lowering) = &self.batch_plan else {
            return Err(CoreError::InvalidIr(format!(
                "plan {} has no batched lowering",
                self.expr
            )));
        };
        let Some(state) = &mut self.batch_state else {
            return Err(CoreError::InvalidIr(
                "iterate_batched before ensure_batch".into(),
            ));
        };
        if batch == 0 || batch > state.capacity {
            return Err(CoreError::InvalidIr(format!(
                "batch {batch} outside the bound capacity {}",
                state.capacity
            )));
        }
        if let Some(profiler) = &mut self.profiler {
            profiler.iterations += 1;
            for (i, instr) in self.iter.iter().enumerate() {
                let mark = exec.profile_mark();
                let start = Instant::now();
                exec_batched_instr(
                    exec,
                    instr,
                    &self.slot_of,
                    &self.slots,
                    lowering,
                    &mut state.wide,
                    batch,
                    self.irregularity,
                )?;
                let host_ns = start.elapsed().as_nanos() as u64;
                profiler.stats[i].absorb(host_ns, &exec.charged_since(mark));
            }
        } else {
            for instr in &self.iter {
                exec_batched_instr(
                    exec,
                    instr,
                    &self.slot_of,
                    &self.slots,
                    lowering,
                    &mut state.wide,
                    batch,
                    self.irregularity,
                )?;
            }
        }
        granii_telemetry::histogram_record_seconds(
            "execplan.iteration",
            t0.elapsed().as_secs_f64(),
        );
        granii_telemetry::counter_add("execplan.iterations", batch as u64);
        Ok(())
    }

    /// [`BoundPlan::iterate_batched`] with the same observation contract as
    /// [`BoundPlan::iterate_observed`]. The charged figure covers the whole
    /// batch (`batch ×` the serial per-request charge on a modeled engine);
    /// divide by `batch` for the per-request share.
    ///
    /// # Errors
    ///
    /// Propagates [`BoundPlan::iterate_batched`] errors.
    pub fn iterate_batched_observed(
        &mut self,
        exec: &Exec,
        batch: usize,
    ) -> Result<IterationObservation> {
        let mark = exec.profile_mark();
        let start = Instant::now();
        self.iterate_batched(exec, batch)?;
        let host_seconds = start.elapsed().as_secs_f64();
        let summary = exec.charged_since(mark);
        Ok(IterationObservation {
            host_seconds,
            charged_seconds: summary.charged_seconds,
            flops: summary.flops,
            bytes: summary.bytes,
        })
    }

    /// Extracts request `t`'s result from the most recent
    /// [`BoundPlan::iterate_batched`] as a fresh single-request matrix (the
    /// batched counterpart of cloning [`BoundPlan::output`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidIr`] if no batched state exists or `t`
    /// lies outside the bound capacity.
    pub fn output_block(&self, t: usize) -> Result<DenseMatrix> {
        let state = self
            .batch_state
            .as_ref()
            .ok_or_else(|| CoreError::InvalidIr("output_block before ensure_batch".into()))?;
        let slot = self.slot_of[self.output];
        let src = wide_at(&state.wide, slot, "batched output")?;
        let narrow = dense_at(&self.slots, slot, "output")?;
        let (rows, k) = narrow.shape();
        let mut out = DenseMatrix::from_vec(rows, k, vec![0.0; rows * k])?;
        granii_matrix::ops::copy_block_into(src, t, &mut out)?;
        Ok(out)
    }

    /// Turns on per-instruction profiling for subsequent [`BoundPlan::iterate`]
    /// calls. The per-instruction rows are pre-sized here — the profiled
    /// steady-state loop itself performs no heap allocation, and when
    /// profiling is off the only cost on the iterate path is one branch.
    pub fn enable_profiling(&mut self) {
        if self.profiler.is_none() {
            self.profiler = Some(IterProfiler {
                iterations: 0,
                stats: vec![InstrStat::default(); self.iter.len()],
            });
        }
    }

    /// Detaches the profiler, discarding any accumulated rows.
    pub fn disable_profiling(&mut self) {
        self.profiler = None;
    }

    /// Whether per-instruction profiling is currently attached.
    pub fn profiling_enabled(&self) -> bool {
        self.profiler.is_some()
    }

    /// Builds a roofline-style [`ProfileReport`]: one `"setup"` row per
    /// hoisted instruction (attributed at bind time) followed by one
    /// `"iter"` row per steady-state instruction (attributed while
    /// profiling was enabled). Render with
    /// [`granii_telemetry::export::profile_table`] or export with
    /// [`granii_telemetry::export::profile_json`] /
    /// [`granii_telemetry::export::chrome_trace_with_counters`].
    pub fn profile_report(&self, exec: &Exec) -> ProfileReport {
        let mut rows = Vec::with_capacity(self.setup.len() + self.iter.len());
        for (i, (instr, stat)) in self.setup.iter().zip(&self.setup_stats).enumerate() {
            rows.push(stat.to_row(i, instr.name(), "setup"));
        }
        if let Some(profiler) = &self.profiler {
            for (i, (instr, stat)) in self.iter.iter().zip(&profiler.stats).enumerate() {
                rows.push(stat.to_row(i, instr.name(), "iter"));
            }
        }
        ProfileReport {
            expr: self.expr.clone(),
            device: exec.engine().spec().kind.name().to_owned(),
            iterations: self.profiler.as_ref().map_or(0, |p| p.iterations),
            rows,
        }
    }

    /// The most recently computed output.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidIr`] if the output slot is not dense
    /// (cannot occur for plans that built successfully).
    pub fn output(&self) -> Result<&DenseMatrix> {
        dense_at(&self.slots, self.slot_of[self.output], "output")
    }

    /// The program's canonical expression.
    pub fn expr(&self) -> &str {
        &self.expr
    }

    /// Number of physical buffer slots (≤ number of program values, thanks to
    /// slot sharing).
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Number of hoisted instructions (already executed at bind time).
    pub fn setup_len(&self) -> usize {
        self.setup.len()
    }

    /// Number of instructions run per iteration.
    pub fn iter_len(&self) -> usize {
        self.iter.len()
    }
}

fn dense_at<'s>(slots: &'s [Slot], slot: usize, what: &str) -> Result<&'s DenseMatrix> {
    match &slots[slot] {
        Slot::Dense(m) => Ok(m),
        other => Err(CoreError::InvalidIr(format!(
            "{what}: expected a dense slot, found {}",
            other.kind_name()
        ))),
    }
}

fn sparse_at<'s>(slots: &'s [Slot], slot: usize, what: &str) -> Result<&'s CsrMatrix> {
    match &slots[slot] {
        Slot::Sparse(m) => Ok(m),
        other => Err(CoreError::InvalidIr(format!(
            "{what}: expected a sparse slot, found {}",
            other.kind_name()
        ))),
    }
}

fn diag_at<'s>(slots: &'s [Slot], slot: usize, what: &str) -> Result<&'s [f32]> {
    match &slots[slot] {
        Slot::Diag(d) => Ok(d),
        other => Err(CoreError::InvalidIr(format!(
            "{what}: expected a diagonal slot, found {}",
            other.kind_name()
        ))),
    }
}

fn dense_out<'s>(out: &'s mut Slot, what: &str) -> Result<&'s mut DenseMatrix> {
    match out {
        Slot::Dense(m) => Ok(m),
        other => Err(CoreError::InvalidIr(format!(
            "{what}: expected a dense output slot, found {}",
            other.kind_name()
        ))),
    }
}

fn sparse_out<'s>(out: &'s mut Slot, what: &str) -> Result<&'s mut CsrMatrix> {
    match out {
        Slot::Sparse(m) => Ok(m),
        other => Err(CoreError::InvalidIr(format!(
            "{what}: expected a sparse output slot, found {}",
            other.kind_name()
        ))),
    }
}

fn diag_out<'s>(out: &'s mut Slot, what: &str) -> Result<&'s mut Vec<f32>> {
    match out {
        Slot::Diag(d) => Ok(d),
        other => Err(CoreError::InvalidIr(format!(
            "{what}: expected a diagonal output slot, found {}",
            other.kind_name()
        ))),
    }
}

/// One or more diagonal operands merged into a single factor. Mirrors the
/// interpreter, which folds multi-diagonal sides with uncharged products.
enum MergedDiag<'s> {
    Borrowed(&'s [f32]),
    Owned(Vec<f32>),
}

impl MergedDiag<'_> {
    fn as_slice(&self) -> &[f32] {
        match self {
            MergedDiag::Borrowed(s) => s,
            MergedDiag::Owned(v) => v,
        }
    }
}

fn merge_diags<'s>(
    slots: &'s [Slot],
    slot_of: &[usize],
    ids: &[ValueId],
) -> Result<Option<MergedDiag<'s>>> {
    match ids {
        [] => Ok(None),
        [one] => Ok(Some(MergedDiag::Borrowed(diag_at(
            slots,
            slot_of[*one],
            "scale_csr diag",
        )?))),
        [first, rest @ ..] => {
            let mut acc = diag_at(slots, slot_of[*first], "scale_csr diag")?.to_vec();
            for id in rest {
                let d = diag_at(slots, slot_of[*id], "scale_csr diag")?;
                for (a, &v) in acc.iter_mut().zip(d) {
                    *a *= v;
                }
            }
            Ok(Some(MergedDiag::Owned(acc)))
        }
    }
}

fn wide_at<'s>(
    wide: &'s [Option<DenseMatrix>],
    slot: usize,
    what: &str,
) -> Result<&'s DenseMatrix> {
    wide[slot]
        .as_ref()
        .ok_or_else(|| CoreError::InvalidIr(format!("{what}: wide buffer unavailable")))
}

/// Executes one instruction's batched lowering: batched dense operands read
/// their wide twins, everything else (sparse, diagonal, weight) reads the
/// normal narrow slots. The wide output is vacated for the duration of the
/// call, mirroring the serial slot protocol (slot assignment guarantees it
/// never aliases a live operand, and the wide twins inherit that aliasing
/// structure).
#[allow(clippy::too_many_arguments)]
fn exec_batched_instr(
    exec: &Exec,
    instr: &Instr,
    slot_of: &[usize],
    slots: &[Slot],
    lowering: &BatchLowering,
    wide: &mut [Option<DenseMatrix>],
    batch: usize,
    irr: f64,
) -> Result<()> {
    let out_slot = slot_of[instr.out()];
    let mut out = wide[out_slot]
        .take()
        .ok_or_else(|| CoreError::InvalidIr("batched output buffer missing".into()))?;
    let result = run_batched_into(
        exec, instr, slot_of, slots, lowering, wide, batch, irr, &mut out,
    );
    wide[out_slot] = Some(out);
    result
}

#[allow(clippy::too_many_arguments)]
fn run_batched_into(
    exec: &Exec,
    instr: &Instr,
    slot_of: &[usize],
    slots: &[Slot],
    lowering: &BatchLowering,
    wide: &[Option<DenseMatrix>],
    batch: usize,
    irr: f64,
    out: &mut DenseMatrix,
) -> Result<()> {
    match instr {
        Instr::Gemm { a, b, .. } => {
            exec.gemm_rhs_blocks_into(
                wide_at(wide, slot_of[*a], "batched gemm lhs")?,
                dense_at(slots, slot_of[*b], "gemm rhs")?,
                batch,
                out,
            )?;
        }
        Instr::Spmm {
            adj, x, weighted, ..
        } => {
            let semiring = if *weighted {
                Semiring::plus_mul()
            } else {
                Semiring::plus_copy_rhs()
            };
            exec.spmm_cols_into(
                sparse_at(slots, slot_of[*adj], "spmm adj")?,
                wide_at(wide, slot_of[*x], "batched spmm rhs")?,
                lowering.wide_cols[slot_of[*x]],
                batch,
                semiring,
                irr,
                out,
            )?;
        }
        Instr::RowBroadcast { d, x, .. } => {
            exec.row_broadcast_cols_into(
                diag_at(slots, slot_of[*d], "row_broadcast diag")?,
                wide_at(wide, slot_of[*x], "batched row_broadcast")?,
                lowering.wide_cols[slot_of[*x]],
                batch,
                BroadcastOp::Mul,
                out,
            )?;
        }
        Instr::ColBroadcast { x, d, .. } => {
            exec.col_broadcast_blocks_into(
                wide_at(wide, slot_of[*x], "batched col_broadcast")?,
                diag_at(slots, slot_of[*d], "col_broadcast diag")?,
                batch,
                BroadcastOp::Mul,
                out,
            )?;
        }
        Instr::Relu { x, .. } => {
            exec.map_cols_into(
                wide_at(wide, slot_of[*x], "batched relu")?,
                lowering.wide_cols[slot_of[*x]],
                batch,
                1,
                |v| v.max(0.0),
                out,
            )?;
        }
        Instr::AddN { parts, .. } => {
            let k = lowering.wide_cols[slot_of[parts[0]]];
            // Uncharged seed copy of the first part, then one charged
            // element-wise add per further part — mirroring the serial AddN.
            granii_matrix::ops::copy_cols_into(
                wide_at(wide, slot_of[parts[0]], "batched add")?,
                batch * k,
                out,
            )?;
            for part in &parts[1..] {
                exec.zip_cols_assign(
                    out,
                    wide_at(wide, slot_of[*part], "batched add")?,
                    k,
                    batch,
                    1,
                    |a, b| a + b,
                )?;
            }
        }
        other => {
            return Err(CoreError::InvalidIr(format!(
                "instruction {} has no batched lowering",
                other.name()
            )))
        }
    }
    Ok(())
}

/// Executes one instruction against the slot table. The output slot is
/// vacated for the duration of the call; slot assignment guarantees it never
/// aliases a live operand.
fn exec_instr(
    exec: &Exec,
    instr: &Instr,
    slot_of: &[usize],
    slots: &mut [Slot],
    irr: f64,
) -> Result<()> {
    let out_slot = slot_of[instr.out()];
    let mut out = std::mem::replace(&mut slots[out_slot], Slot::Empty);
    let result = run_into(exec, instr, slot_of, slots, irr, &mut out);
    slots[out_slot] = out;
    result
}

fn run_into(
    exec: &Exec,
    instr: &Instr,
    slot_of: &[usize],
    slots: &[Slot],
    irr: f64,
    out: &mut Slot,
) -> Result<()> {
    match instr {
        Instr::Gemm { a, b, .. } => {
            exec.gemm_into(
                dense_at(slots, slot_of[*a], "gemm lhs")?,
                dense_at(slots, slot_of[*b], "gemm rhs")?,
                dense_out(out, "gemm")?,
            )?;
        }
        Instr::Spmm {
            adj, x, weighted, ..
        } => {
            let semiring = if *weighted {
                Semiring::plus_mul()
            } else {
                Semiring::plus_copy_rhs()
            };
            exec.spmm_into(
                sparse_at(slots, slot_of[*adj], "spmm adj")?,
                dense_at(slots, slot_of[*x], "spmm rhs")?,
                semiring,
                irr,
                dense_out(out, "spmm")?,
            )?;
        }
        Instr::AttLogits { mask, ul, vr, .. } => {
            let ul = dense_at(slots, slot_of[*ul], "att-logits ul")?;
            let vr = dense_at(slots, slot_of[*vr], "att-logits vr")?;
            exec.sddmm_u_add_v_into(
                sparse_at(slots, slot_of[*mask], "att-logits mask")?,
                ul.as_slice(),
                vr.as_slice(),
                irr,
                sparse_out(out, "att-logits")?,
            )?;
        }
        Instr::ScaleCsr { dl, sparse, dr, .. } => {
            let dl = merge_diags(slots, slot_of, dl)?;
            let dr = merge_diags(slots, slot_of, dr)?;
            exec.scale_csr_into(
                dl.as_ref().map(MergedDiag::as_slice),
                sparse_at(slots, slot_of[*sparse], "scale_csr")?,
                dr.as_ref().map(MergedDiag::as_slice),
                irr,
                sparse_out(out, "scale_csr")?,
            )?;
        }
        Instr::RowBroadcast { d, x, .. } => {
            exec.row_broadcast_into(
                diag_at(slots, slot_of[*d], "row_broadcast diag")?,
                dense_at(slots, slot_of[*x], "row_broadcast")?,
                BroadcastOp::Mul,
                dense_out(out, "row_broadcast")?,
            )?;
        }
        Instr::ColBroadcast { x, d, .. } => {
            exec.col_broadcast_into(
                dense_at(slots, slot_of[*x], "col_broadcast")?,
                diag_at(slots, slot_of[*d], "col_broadcast diag")?,
                BroadcastOp::Mul,
                dense_out(out, "col_broadcast")?,
            )?;
        }
        Instr::LeakyRelu { logits, .. } => {
            let src = sparse_at(slots, slot_of[*logits], "att-leaky")?;
            let vals = src
                .values()
                .ok_or_else(|| CoreError::InvalidIr("attention logits have no values".into()))?;
            let dst = sparse_out(out, "att-leaky")?;
            // Uncharged copy into the output buffer, then the same charged
            // in-place map the interpreter's map_csr_values performs.
            dst.values_mut()
                .expect("plan CSR buffers are weighted")
                .copy_from_slice(vals);
            let slope = GAT_SLOPE;
            exec.map_csr_assign(dst, move |v| if v >= 0.0 { v } else { slope * v })?;
        }
        Instr::EdgeSoftmax { scored, .. } => {
            exec.edge_softmax_into(
                sparse_at(slots, slot_of[*scored], "att-softmax")?,
                irr,
                sparse_out(out, "att-softmax")?,
            )?;
        }
        Instr::Relu { x, .. } => {
            exec.map_into(
                dense_at(slots, slot_of[*x], "relu")?,
                1,
                |v| v.max(0.0),
                dense_out(out, "relu")?,
            )?;
        }
        Instr::AddN { parts, .. } => {
            let dst = dense_out(out, "add")?;
            let first = dense_at(slots, slot_of[parts[0]], "add")?;
            if dst.shape() != first.shape() {
                return Err(CoreError::InvalidIr(format!(
                    "add output shape {:?} does not match operand {:?}",
                    dst.shape(),
                    first.shape()
                )));
            }
            // The interpreter clones the first part uncharged, then charges
            // one element-wise add per further part.
            dst.as_mut_slice().copy_from_slice(first.as_slice());
            for part in &parts[1..] {
                exec.zip_assign(dst, dense_at(slots, slot_of[*part], "add")?, 1, |a, b| {
                    a + b
                })?;
            }
        }
        Instr::DiagMerge { parts, .. } => {
            let dst = diag_out(out, "diag merge")?;
            let first = diag_at(slots, slot_of[parts[0]], "diag merge")?;
            if dst.len() != first.len() {
                return Err(CoreError::InvalidIr(format!(
                    "diag merge output length {} does not match operand {}",
                    dst.len(),
                    first.len()
                )));
            }
            dst.copy_from_slice(first);
            for part in &parts[1..] {
                let d = diag_at(slots, slot_of[*part], "diag merge")?;
                // Same unconditional charge the interpreter applies per
                // merged factor.
                exec.engine().charge(WorkStats::elementwise(d.len(), 1));
                for (a, &v) in dst.iter_mut().zip(d) {
                    *a *= v;
                }
            }
        }
    }
    Ok(())
}

/// Owned operand bundle for driving plans without juggling borrows — the
/// canonical leaf/weight naming for each built-in model, matching what
/// `assoc::generate` emits. Borrow it as [`ProgramInputs`] via
/// [`PlanInputs::as_program_inputs`].
#[derive(Debug, Clone)]
pub struct PlanInputs {
    adj: CsrMatrix,
    deg_inv_sqrt: Vec<f32>,
    deg_inv: Vec<f32>,
    h: DenseMatrix,
    weights: BTreeMap<String, DenseMatrix>,
    eps: f32,
    irregularity: f64,
}

impl PlanInputs {
    /// Builds deterministic random weights under the leaf names `model`'s
    /// programs reference (`W`, `W1`/`W2`, per-hop `W{k}`, `W_self`/`W_neigh`,
    /// `a_l`/`a_r`) and picks the aggregation mask the model family expects
    /// (raw adjacency for GIN/SAGE, the self-loop form otherwise).
    pub fn for_model(
        model: ModelKind,
        cfg: LayerConfig,
        ctx: &GraphCtx,
        h: DenseMatrix,
        seed: u64,
    ) -> Self {
        let scale = (2.0 / (cfg.k_in + cfg.k_out) as f32).sqrt();
        let mut weights = BTreeMap::new();
        match model {
            ModelKind::Gin => {
                weights.insert(
                    "W1".into(),
                    DenseMatrix::random(cfg.k_in, cfg.k_out, scale, seed),
                );
                weights.insert(
                    "W2".into(),
                    DenseMatrix::random(cfg.k_out, cfg.k_out, scale, seed + 1),
                );
            }
            ModelKind::Tagcn => {
                for k in 0..=cfg.hops {
                    weights.insert(
                        format!("W{k}"),
                        DenseMatrix::random(cfg.k_in, cfg.k_out, scale, seed + k as u64),
                    );
                }
            }
            ModelKind::Sage => {
                weights.insert(
                    "W_self".into(),
                    DenseMatrix::random(cfg.k_in, cfg.k_out, scale, seed),
                );
                weights.insert(
                    "W_neigh".into(),
                    DenseMatrix::random(cfg.k_in, cfg.k_out, scale, seed + 1),
                );
            }
            _ => {
                weights.insert(
                    "W".into(),
                    DenseMatrix::random(cfg.k_in, cfg.k_out, scale, seed),
                );
                weights.insert(
                    "a_l".into(),
                    DenseMatrix::random(cfg.k_out, 1, scale, seed + 1),
                );
                weights.insert(
                    "a_r".into(),
                    DenseMatrix::random(cfg.k_out, 1, scale, seed + 2),
                );
            }
        }
        let raw = matches!(model, ModelKind::Gin | ModelKind::Sage);
        let adj = if raw {
            ctx.graph().adj().clone()
        } else {
            ctx.adj().clone()
        };
        let deg_inv = ctx
            .graph()
            .out_degrees()
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 })
            .collect();
        Self {
            adj,
            deg_inv_sqrt: ctx.deg_inv_sqrt().to_vec(),
            deg_inv,
            h,
            weights,
            eps: GIN_EPS,
            irregularity: ctx.irregularity(),
        }
    }

    /// Borrows the bundle in the form [`ExecPlan::bind`] (and the
    /// interpreter) consume.
    pub fn as_program_inputs(&self) -> ProgramInputs<'_> {
        ProgramInputs {
            adj: &self.adj,
            deg_inv_sqrt: &self.deg_inv_sqrt,
            deg_inv: &self.deg_inv,
            h: &self.h,
            weights: &self.weights,
            eps: self.eps,
            irregularity: self.irregularity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::CompiledModel;
    use granii_graph::generators;
    use granii_matrix::device::{DeviceKind, Engine};

    fn plan_for(model: ModelKind, cfg: LayerConfig) -> CompiledModel {
        CompiledModel::compile(model, cfg).unwrap()
    }

    #[test]
    fn gcn_precompute_candidates_hoist_structural_steps() {
        let cfg = LayerConfig::new(6, 4);
        let compiled = plan_for(ModelKind::Gcn, cfg);
        // At least one promoted GCN candidate hoists the (D·A·D)
        // normalization: its plan has setup instructions.
        let hoisted = compiled
            .candidates
            .iter()
            .map(|c| ExecPlan::build(&c.program).unwrap())
            .filter(|p| p.setup_len() > 0)
            .count();
        assert!(hoisted > 0);
    }

    #[test]
    fn dense_iteration_slots_are_shared() {
        let cfg = LayerConfig::new(6, 6);
        let compiled = plan_for(ModelKind::Tagcn, cfg);
        let g = generators::power_law(20, 3, 5).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let h = DenseMatrix::random(20, 6, 1.0, 1);
        let inputs = PlanInputs::for_model(ModelKind::Tagcn, cfg, &ctx, h, 2);
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);
        for cand in &compiled.candidates {
            let plan = ExecPlan::build(&cand.program).unwrap();
            let bound = plan.bind(&exec, &inputs.as_program_inputs()).unwrap();
            // Multi-hop chains produce more values than they need buffers:
            // hop intermediates die immediately and recycle their slots.
            if plan.iter_len() >= 4 {
                assert!(
                    bound.num_slots() < plan.values.len(),
                    "{}: {} slots for {} values",
                    plan.expr(),
                    bound.num_slots(),
                    plan.values.len()
                );
            }
        }
    }

    #[test]
    fn repeated_iterations_are_stable() {
        let cfg = LayerConfig::new(5, 3);
        let compiled = plan_for(ModelKind::Gat, cfg);
        let g = generators::power_law(18, 3, 9).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let h = DenseMatrix::random(18, 5, 1.0, 4);
        let inputs = PlanInputs::for_model(ModelKind::Gat, cfg, &ctx, h, 6);
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);
        for cand in &compiled.candidates {
            let plan = ExecPlan::build(&cand.program).unwrap();
            let mut bound = plan.bind(&exec, &inputs.as_program_inputs()).unwrap();
            let first = bound.iterate(&exec).unwrap().clone();
            let second = bound.iterate(&exec).unwrap();
            assert_eq!(first.max_abs_diff(second).unwrap(), 0.0, "{}", plan.expr());
        }
    }

    #[test]
    fn profiler_attributes_every_instruction() {
        let cfg = LayerConfig::new(6, 4);
        let compiled = plan_for(ModelKind::Gcn, cfg);
        let g = generators::power_law(24, 3, 11).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let h = DenseMatrix::random(24, 6, 1.0, 3);
        let inputs = PlanInputs::for_model(ModelKind::Gcn, cfg, &ctx, h, 5);
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);
        // Pick a candidate with hoisted setup so both phases are exercised.
        let cand = compiled
            .candidates
            .iter()
            .find(|c| {
                ExecPlan::build(&c.program)
                    .map(|p| p.setup_len() > 0)
                    .unwrap_or(false)
            })
            .expect("a GCN candidate with setup");
        let plan = ExecPlan::build(&cand.program).unwrap();
        let mut bound = plan.bind(&exec, &inputs.as_program_inputs()).unwrap();
        assert!(!bound.profiling_enabled());
        bound.enable_profiling();
        const ITERS: u64 = 3;
        for _ in 0..ITERS {
            bound.iterate(&exec).unwrap();
        }
        let report = bound.profile_report(&exec);
        assert_eq!(report.expr, plan.expr());
        assert_eq!(report.device, "cpu");
        assert_eq!(report.iterations, ITERS);
        assert_eq!(
            report.rows.len(),
            plan.setup_len() + plan.iter_len(),
            "one row per instruction"
        );
        for row in &report.rows {
            match row.phase.as_str() {
                "setup" => assert_eq!(row.calls, 1, "{row:?}"),
                "iter" => assert_eq!(row.calls, ITERS, "{row:?}"),
                other => panic!("unexpected phase {other}"),
            }
            // Every GCN instruction moves bytes; the modeled engine charges
            // exactly its roofline prediction.
            assert!(row.bytes > 0, "{row:?}");
            assert!(row.predicted_ns > 0, "{row:?}");
            assert_eq!(row.charged_ns, row.predicted_ns, "{row:?}");
        }
        assert!(report.total_host_ns() > 0);
        // Disabling detaches the iter rows but keeps the setup attribution.
        bound.disable_profiling();
        bound.iterate(&exec).unwrap();
        let report = bound.profile_report(&exec);
        assert_eq!(report.iterations, 0);
        assert!(report.rows.iter().all(|r| r.phase == "setup"));
    }

    #[test]
    fn missing_weights_are_typed_errors_at_bind() {
        let cfg = LayerConfig::new(4, 4);
        let compiled = plan_for(ModelKind::Gcn, cfg);
        let g = generators::ring(6).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let h = DenseMatrix::zeros(6, 4).unwrap();
        let plan = ExecPlan::build(&compiled.candidates[0].program).unwrap();
        let deg_inv = vec![0.0f32; 6];
        let empty = BTreeMap::new();
        let inputs = ProgramInputs {
            adj: ctx.adj(),
            deg_inv_sqrt: ctx.deg_inv_sqrt(),
            deg_inv: &deg_inv,
            h: &h,
            weights: &empty,
            eps: 0.0,
            irregularity: 0.0,
        };
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);
        let err = plan.bind(&exec, &inputs).unwrap_err();
        assert!(matches!(err, CoreError::InvalidIr(_)), "{err}");
    }

    #[test]
    fn batched_iterations_match_serial_bitwise() {
        let cfg = LayerConfig::new(6, 4);
        for model in [
            ModelKind::Gcn,
            ModelKind::Gin,
            ModelKind::Sgc,
            ModelKind::Sage,
            ModelKind::Tagcn,
        ] {
            let compiled = plan_for(model, cfg);
            let g = generators::power_law(22, 3, 7).unwrap();
            let ctx = GraphCtx::new(&g).unwrap();
            let h = DenseMatrix::random(22, 6, 1.0, 8);
            let inputs = PlanInputs::for_model(model, cfg, &ctx, h, 9);
            let engine = Engine::modeled(DeviceKind::Cpu);
            let exec = Exec::real(&engine);
            let mut any_batched = false;
            for cand in &compiled.candidates {
                let plan = ExecPlan::build(&cand.program).unwrap();
                let mut serial = plan.bind(&exec, &inputs.as_program_inputs()).unwrap();
                let serial_obs = serial.iterate_observed(&exec).unwrap();
                let want = serial.output().unwrap().clone();
                let mut bound = plan.bind(&exec, &inputs.as_program_inputs()).unwrap();
                if !bound.ensure_batch(17).unwrap() {
                    assert!(!bound.batch_supported(), "{}", plan.expr());
                    continue;
                }
                any_batched = true;
                assert!(bound.batch_capacity() >= 17);
                for batch in [1usize, 3, 8, 17] {
                    let obs = bound.iterate_batched_observed(&exec, batch).unwrap();
                    // Per-request modeled charge matches the serial charge
                    // (within f64 rounding of the batch-fold accumulation).
                    let per_request = obs.charged_seconds / batch as f64;
                    assert!(
                        (per_request - serial_obs.charged_seconds).abs()
                            <= 1e-9 * serial_obs.charged_seconds.max(1e-12),
                        "{model} {}: batch {batch} charged {per_request} vs serial {}",
                        plan.expr(),
                        serial_obs.charged_seconds
                    );
                    for t in 0..batch {
                        let got = bound.output_block(t).unwrap();
                        assert_eq!(
                            got.as_slice(),
                            want.as_slice(),
                            "{model} {}: batch {batch} block {t} diverged",
                            plan.expr()
                        );
                    }
                }
            }
            assert!(any_batched, "{model}: no candidate lowered to a batch");
        }
    }

    #[test]
    fn batched_blocks_with_distinct_features_match_their_serial_runs() {
        // Guards against block-indexing bugs that tiling identical RHS
        // columns cannot catch: each block carries its own H and must
        // reproduce exactly the serial run bound to that H.
        let cfg = LayerConfig::new(5, 3);
        let model = ModelKind::Gcn;
        let compiled = plan_for(model, cfg);
        let g = generators::power_law(19, 3, 13).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);
        const BATCH: usize = 3;
        let hs: Vec<DenseMatrix> = (0..BATCH)
            .map(|t| DenseMatrix::random(19, 5, 1.0, 100 + t as u64))
            .collect();
        let mut checked = 0;
        for cand in &compiled.candidates {
            let plan = ExecPlan::build(&cand.program).unwrap();
            let inputs = PlanInputs::for_model(model, cfg, &ctx, hs[0].clone(), 17);
            let mut bound = plan.bind(&exec, &inputs.as_program_inputs()).unwrap();
            if !bound.ensure_batch(BATCH).unwrap() {
                continue;
            }
            for (t, h) in hs.iter().enumerate() {
                bound.seed_batch_features(t, h).unwrap();
            }
            bound.iterate_batched(&exec, BATCH).unwrap();
            for (t, h) in hs.iter().enumerate() {
                let inputs = PlanInputs::for_model(model, cfg, &ctx, h.clone(), 17);
                let mut serial = plan.bind(&exec, &inputs.as_program_inputs()).unwrap();
                let want = serial.iterate(&exec).unwrap();
                let got = bound.output_block(t).unwrap();
                assert_eq!(
                    got.as_slice(),
                    want.as_slice(),
                    "{}: block {t} diverged from its serial run",
                    plan.expr()
                );
            }
            checked += 1;
        }
        assert!(checked > 0, "no GCN candidate lowered to a batch");
    }

    #[test]
    fn attention_plans_report_no_batch_lowering() {
        // GAT's edge-wise attention instructions (AttLogits/EdgeSoftmax/…)
        // have no column-stacked lowering; the serving layer must fall back
        // to serial execution for them.
        let cfg = LayerConfig::new(5, 3);
        let compiled = plan_for(ModelKind::Gat, cfg);
        let g = generators::power_law(18, 3, 9).unwrap();
        let ctx = GraphCtx::new(&g).unwrap();
        let h = DenseMatrix::random(18, 5, 1.0, 4);
        let inputs = PlanInputs::for_model(ModelKind::Gat, cfg, &ctx, h, 6);
        let engine = Engine::modeled(DeviceKind::Cpu);
        let exec = Exec::real(&engine);
        for cand in &compiled.candidates {
            let plan = ExecPlan::build(&cand.program).unwrap();
            let mut bound = plan.bind(&exec, &inputs.as_program_inputs()).unwrap();
            assert!(!bound.batch_supported(), "{}", plan.expr());
            assert!(!bound.ensure_batch(4).unwrap(), "{}", plan.expr());
            // Serial iteration still works on the same bound plan.
            bound.iterate(&exec).unwrap();
            let err = bound.iterate_batched(&exec, 2).unwrap_err();
            assert!(matches!(err, CoreError::InvalidIr(_)), "{err}");
        }
    }
}
