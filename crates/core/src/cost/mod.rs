//! Input featurization and learned per-primitive cost models (paper §IV-E).

mod featurizer;
mod models;
pub mod training;

pub use featurizer::FeaturizedInput;
pub use models::CostModelSet;
