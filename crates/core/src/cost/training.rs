//! The offline profiling and cost-model training pipeline (paper §V
//! "Training Lightweight Cost Models").
//!
//! The paper profiles each matrix primitive on SuiteSparse graphs (1M-100M
//! nonzeros, further varied by sampling) with embedding sizes 32..2048,
//! collecting 700-8000 points per primitive, and fits one XGBoost regressor
//! per (primitive, device). Here the corpus is generated (same structural
//! variety; see `DESIGN.md` §2), latencies come from the device performance
//! model (or measured CPU kernels via the same `Engine` machinery), and the
//! regressors come from `granii-boost`.

use std::collections::BTreeMap;

use granii_boost::{Dataset, GbtParams, GbtRegressor};
use granii_graph::{generators, sampling, Graph};
use granii_matrix::device::{DeviceKind, DeviceSpec};
use granii_matrix::PrimitiveKind;

use crate::assoc::PrimStep;
use crate::cost::{CostModelSet, FeaturizedInput};
use crate::ir::Dim;
use crate::Result;

/// Configuration of the profiling corpus and the regressor.
#[derive(Debug, Clone)]
pub struct TrainingConfig {
    /// Number of base graphs in the corpus (each also contributes sampled
    /// variants, mirroring the paper's sampling-based variation).
    pub base_graphs: usize,
    /// Embedding sizes swept per graph (paper: 32 to 2048).
    pub embed_sizes: Vec<usize>,
    /// Fraction of points held out for validation.
    pub valid_fraction: f64,
    /// Regressor hyperparameters.
    pub gbt: GbtParams,
    /// Corpus seed.
    pub seed: u64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        Self {
            base_graphs: 10,
            embed_sizes: vec![32, 64, 128, 256, 512, 1024, 2048],
            valid_fraction: 0.2,
            gbt: GbtParams {
                num_rounds: 120,
                ..GbtParams::default()
            },
            seed: 0xC0DE,
        }
    }
}

impl TrainingConfig {
    /// A reduced configuration for tests and quick starts.
    pub fn fast() -> Self {
        Self {
            base_graphs: 5,
            embed_sizes: vec![32, 256, 1024],
            gbt: GbtParams {
                num_rounds: 60,
                ..GbtParams::default()
            },
            ..Self::default()
        }
    }
}

/// Builds the training corpus: one graph per structural class, cycled and
/// varied by seed and neighborhood sampling.
///
/// # Errors
///
/// Propagates generator errors (the built-in parameters are valid).
pub fn build_corpus(cfg: &TrainingConfig) -> Result<Vec<Graph>> {
    let mut graphs = Vec::new();
    for i in 0..cfg.base_graphs {
        let seed = cfg.seed + i as u64;
        // Sizes span the evaluation range (up to tens of thousands of nodes
        // and millions of nonzeros) so the regressors interpolate rather than
        // extrapolate, mirroring the paper's 1M-100M-nnz SuiteSparse corpus.
        let g = match i % 5 {
            0 => generators::power_law(4_000 + 6_000 * i, 6 + 12 * i, seed)?,
            1 => generators::erdos_renyi(5_000 + 5_000 * i, (8 + 20 * i) as f64, seed)?,
            2 => generators::grid_2d(60 + 40 * i, 60 + 30 * i)?,
            3 => generators::mycielskian(9 + (i as u32 % 5))?,
            _ => generators::community(100 + 100 * i, 40, 0.2, 4, seed)?,
        };
        // Sampling-based variation (the paper varies SuiteSparse graphs "using
        // sampling").
        let sampled = sampling::sample_neighbors(&g, 3 + i, seed + 1000)?;
        graphs.push(g);
        graphs.push(sampled);
    }
    Ok(graphs)
}

/// The representative symbolic steps profiled per primitive.
fn profiled_steps() -> Vec<PrimStep> {
    let s = |kind, rows, inner, cols: Dim| PrimStep {
        kind,
        rows,
        inner,
        cols,
        signature: String::new(),
        once: false,
    };
    vec![
        s(PrimitiveKind::Gemm, Dim::N, Dim::K1, Dim::K2),
        s(PrimitiveKind::Gemm, Dim::N, Dim::K2, Dim::One),
        s(PrimitiveKind::SpmmWeighted, Dim::N, Dim::Nnz, Dim::K1),
        s(PrimitiveKind::SpmmWeighted, Dim::N, Dim::Nnz, Dim::K2),
        s(PrimitiveKind::SpmmUnweighted, Dim::N, Dim::Nnz, Dim::K1),
        s(PrimitiveKind::SpmmUnweighted, Dim::N, Dim::Nnz, Dim::K2),
        s(PrimitiveKind::Sddmm, Dim::N, Dim::Nnz, Dim::One),
        s(PrimitiveKind::Sddmm, Dim::N, Dim::Nnz, Dim::K1),
        s(PrimitiveKind::RowBroadcast, Dim::N, Dim::One, Dim::K1),
        s(PrimitiveKind::RowBroadcast, Dim::N, Dim::One, Dim::K2),
        s(PrimitiveKind::ColBroadcast, Dim::N, Dim::One, Dim::K1),
        s(PrimitiveKind::Elementwise, Dim::N, Dim::One, Dim::K1),
        s(PrimitiveKind::Elementwise, Dim::N, Dim::One, Dim::K2),
        s(PrimitiveKind::Elementwise, Dim::Nnz, Dim::One, Dim::One),
        s(PrimitiveKind::Elementwise, Dim::N, Dim::One, Dim::One),
        s(PrimitiveKind::EdgeSoftmax, Dim::N, Dim::Nnz, Dim::One),
        s(PrimitiveKind::Binning, Dim::N, Dim::Nnz, Dim::One),
    ]
}

/// Profiles every primitive over the corpus × embedding-size grid, producing
/// `(features, ln-latency)` points per primitive.
pub fn profile(
    device: DeviceKind,
    corpus: &[Graph],
    embed_sizes: &[usize],
) -> BTreeMap<PrimitiveKind, (Vec<Vec<f64>>, Vec<f64>)> {
    let spec = DeviceSpec::preset(device);
    let mut out: BTreeMap<PrimitiveKind, (Vec<Vec<f64>>, Vec<f64>)> = BTreeMap::new();
    for graph in corpus {
        let irregularity = graph.row_stats().cv;
        for &k1 in embed_sizes {
            for &k2 in embed_sizes {
                let input = FeaturizedInput::extract(graph, k1, k2);
                for step in profiled_steps() {
                    let stats =
                        step.work_stats(input.num_nodes, input.num_edges, k1, k2, irregularity);
                    let seconds = spec.estimate_seconds(&stats);
                    let entry = out.entry(step.kind).or_default();
                    entry.0.push(input.step_features(&step));
                    entry.1.push(seconds.ln());
                }
            }
        }
    }
    out
}

/// Runs the full offline training: corpus → profiling → one GBT per
/// primitive, with validation metrics.
///
/// # Errors
///
/// Propagates corpus-generation and fitting errors.
pub fn train(device: DeviceKind, cfg: &TrainingConfig) -> Result<CostModelSet> {
    let corpus = build_corpus(cfg)?;
    let profiles = profile(device, &corpus, &cfg.embed_sizes);
    fit(device, profiles, cfg)
}

/// Like [`train`], but labels come from *measured wall-clock executions* of
/// the real CPU kernels instead of the device model — the paper's actual
/// methodology for its CPU platform (§V). Graphs above `max_edges` nonzeros
/// and embedding sizes above `max_k` are skipped to bound profiling time.
///
/// # Errors
///
/// Propagates corpus-generation, kernel, and fitting errors.
pub fn train_measured_cpu(
    cfg: &TrainingConfig,
    max_edges: usize,
    max_k: usize,
) -> Result<CostModelSet> {
    use granii_gnn::Exec;
    use granii_matrix::device::Engine;
    use granii_matrix::ops::BroadcastOp;
    use granii_matrix::{DenseMatrix, Semiring};

    let corpus = build_corpus(cfg)?;
    let engine = Engine::cpu_measured();
    let exec = Exec::real(&engine);
    let mut out: BTreeMap<PrimitiveKind, (Vec<Vec<f64>>, Vec<f64>)> = BTreeMap::new();

    for graph in &corpus {
        let ctx = granii_gnn::GraphCtx::new(graph).map_err(crate::CoreError::Gnn)?;
        if ctx.adj().nnz() > max_edges {
            continue;
        }
        let adj = ctx.adj().clone();
        let weighted = granii_matrix::ops::scale_csr(None, &adj, None)?;
        let irr = ctx.irregularity();
        let d: Vec<f32> = ctx.deg_inv_sqrt().to_vec();
        for &k1 in cfg.embed_sizes.iter().filter(|&&k| k <= max_k) {
            for &k2 in cfg.embed_sizes.iter().filter(|&&k| k <= max_k) {
                let input = FeaturizedInput::extract(graph, k1, k2);
                let h = DenseMatrix::random(adj.rows(), k1, 1.0, 1);
                let w = DenseMatrix::random(k1, k2, 1.0, 2);
                let hk2 = DenseMatrix::random(adj.rows(), k2, 1.0, 3);
                for step in profiled_steps() {
                    engine.take_profile();
                    // Execute the primitive the step describes with real
                    // operands of the resolved sizes.
                    let run: Result<()> = (|| {
                        match (step.kind, step.cols) {
                            (PrimitiveKind::Gemm, Dim::One) => {
                                let a1 = DenseMatrix::random(k2, 1, 1.0, 4);
                                exec.gemm(&hk2, &a1).map_err(crate::CoreError::Gnn)?;
                            }
                            (PrimitiveKind::Gemm, _) => {
                                exec.gemm(&h, &w).map_err(crate::CoreError::Gnn)?;
                            }
                            (PrimitiveKind::SpmmWeighted, Dim::K2) => {
                                exec.spmm(&weighted, &hk2, Semiring::plus_mul(), irr)
                                    .map_err(crate::CoreError::Gnn)?;
                            }
                            (PrimitiveKind::SpmmWeighted, _) => {
                                exec.spmm(&weighted, &h, Semiring::plus_mul(), irr)
                                    .map_err(crate::CoreError::Gnn)?;
                            }
                            (PrimitiveKind::SpmmUnweighted, Dim::K2) => {
                                exec.spmm(&adj, &hk2, Semiring::plus_copy_rhs(), irr)
                                    .map_err(crate::CoreError::Gnn)?;
                            }
                            (PrimitiveKind::SpmmUnweighted, _) => {
                                exec.spmm(&adj, &h, Semiring::plus_copy_rhs(), irr)
                                    .map_err(crate::CoreError::Gnn)?;
                            }
                            (PrimitiveKind::Sddmm, Dim::One) => {
                                exec.scale_csr(Some(&d), &adj, Some(&d), irr)
                                    .map_err(crate::CoreError::Gnn)?;
                            }
                            (PrimitiveKind::Sddmm, _) => {
                                exec.sddmm(&adj, &h, &h, irr)
                                    .map_err(crate::CoreError::Gnn)?;
                            }
                            (PrimitiveKind::RowBroadcast, Dim::K2) => {
                                exec.row_broadcast(&d, &hk2, BroadcastOp::Mul)
                                    .map_err(crate::CoreError::Gnn)?;
                            }
                            (PrimitiveKind::RowBroadcast, _) => {
                                exec.row_broadcast(&d, &h, BroadcastOp::Mul)
                                    .map_err(crate::CoreError::Gnn)?;
                            }
                            (PrimitiveKind::ColBroadcast, _) => {
                                let dk: Vec<f32> = (0..h.cols()).map(|i| i as f32).collect();
                                exec.col_broadcast(&h, &dk, BroadcastOp::Mul)
                                    .map_err(crate::CoreError::Gnn)?;
                            }
                            (PrimitiveKind::Elementwise, _) => {
                                exec.map(&h, 1, |v| v.max(0.0));
                            }
                            (PrimitiveKind::EdgeSoftmax, _) => {
                                exec.edge_softmax(&weighted, irr)
                                    .map_err(crate::CoreError::Gnn)?;
                            }
                            (PrimitiveKind::Binning, _) => {
                                exec.degrees_by_binning(&adj);
                            }
                        }
                        Ok(())
                    })();
                    run?;
                    let seconds = engine.take_profile().total_seconds().max(1e-9);
                    let entry = out.entry(step.kind).or_default();
                    entry.0.push(input.step_features(&step));
                    entry.1.push(seconds.ln());
                }
            }
        }
    }
    fit(DeviceKind::Cpu, out, cfg)
}

/// Fits one regressor per primitive from profiling data.
fn fit(
    device: DeviceKind,
    profiles: BTreeMap<PrimitiveKind, (Vec<Vec<f64>>, Vec<f64>)>,
    cfg: &TrainingConfig,
) -> Result<CostModelSet> {
    let mut models = BTreeMap::new();
    let mut validation = BTreeMap::new();
    for (kind, (rows, labels)) in profiles {
        let data = Dataset::from_rows(&rows, &labels)?;
        let (train_set, valid_set) = data.split(cfg.valid_fraction)?;
        let model = GbtRegressor::fit_with_validation(&train_set, Some(&valid_set), &cfg.gbt)?;
        let preds: Vec<f64> = (0..valid_set.num_rows())
            .map(|i| model.predict(valid_set.row(i)))
            .collect();
        let rmse = granii_boost::metrics::rmse(&preds, valid_set.labels());
        let spearman = granii_boost::metrics::spearman(&preds, valid_set.labels());
        models.insert(kind, model);
        validation.insert(kind, (rmse, spearman));
    }
    Ok(CostModelSet::new(device, models, validation))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_structural_variety() {
        let cfg = TrainingConfig::fast();
        let corpus = build_corpus(&cfg).unwrap();
        assert_eq!(corpus.len(), cfg.base_graphs * 2);
        let cvs: Vec<f64> = corpus.iter().map(|g| g.row_stats().cv).collect();
        let max = cvs.iter().cloned().fold(0.0, f64::max);
        let min = cvs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max > 4.0 * (min + 0.01),
            "degree-skew variety: {min}..{max}"
        );
    }

    #[test]
    fn profiling_covers_every_primitive() {
        let cfg = TrainingConfig::fast();
        let corpus = build_corpus(&cfg).unwrap();
        let profiles = profile(DeviceKind::H100, &corpus[..2], &[32, 256]);
        for kind in PrimitiveKind::ALL {
            let (rows, labels) = profiles
                .get(&kind)
                .unwrap_or_else(|| panic!("missing {kind}"));
            assert_eq!(rows.len(), labels.len());
            assert!(!rows.is_empty());
            assert!(labels.iter().all(|l| l.is_finite()));
        }
    }

    #[test]
    fn measured_cpu_training_produces_usable_models() {
        let mut cfg = TrainingConfig::fast();
        cfg.base_graphs = 3;
        cfg.embed_sizes = vec![16, 64];
        let set = train_measured_cpu(&cfg, 100_000, 64).unwrap();
        assert_eq!(set.device(), DeviceKind::Cpu);
        // Measured labels are noisy; require a positive rank correlation on
        // the heavyweight primitives.
        for kind in [PrimitiveKind::Gemm, PrimitiveKind::SpmmUnweighted] {
            let (_, spearman) = set.validation[&kind];
            assert!(spearman > 0.3, "{kind}: spearman {spearman}");
        }
        // Predictions are positive latencies.
        let g = generators::power_law(500, 5, 1).unwrap();
        let input = FeaturizedInput::extract(&g, 16, 64);
        for step in profiled_steps() {
            let p = set.predict_step(&step, &input).unwrap();
            assert!(p > 0.0 && p.is_finite(), "{}: {p}", step.kind);
        }
    }

    #[test]
    fn trained_models_rank_sizes_correctly() {
        let mut cfg = TrainingConfig::fast();
        cfg.base_graphs = 4;
        let set = train(DeviceKind::H100, &cfg).unwrap();
        // A GEMM at 1024 wide must be predicted slower than at 32 wide on the
        // same graph.
        let g = generators::power_law(3_000, 8, 99).unwrap();
        let step = PrimStep {
            kind: PrimitiveKind::Gemm,
            rows: Dim::N,
            inner: Dim::K1,
            cols: Dim::K2,
            signature: String::new(),
            once: false,
        };
        let small = set
            .predict_step(&step, &FeaturizedInput::extract(&g, 256, 32))
            .unwrap();
        let large = set
            .predict_step(&step, &FeaturizedInput::extract(&g, 256, 1024))
            .unwrap();
        assert!(large > small, "large {large} vs small {small}");
        // Validation rank correlation should be high for every primitive.
        for (kind, (_, spearman)) in &set.validation {
            assert!(*spearman > 0.8, "{kind}: spearman {spearman}");
        }
    }
}
