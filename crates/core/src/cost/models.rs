//! Per-primitive learned cost models (paper §IV-E2).
//!
//! One gradient-boosted regressor per (primitive kind, device). Models
//! predict `ln(latency_seconds)` — the latency range spans many orders of
//! magnitude, and selection only needs correct *ranking*, which log-space
//! regression preserves far better than raw-scale fitting.

use std::collections::BTreeMap;

use granii_boost::GbtRegressor;
use granii_matrix::device::DeviceKind;
use granii_matrix::PrimitiveKind;
use serde::{Deserialize, Serialize};

use crate::assoc::{CandidateProgram, PrimStep};
use crate::cost::FeaturizedInput;
use crate::{CoreError, Result};

/// The trained cost models for one target device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModelSet {
    device: DeviceKind,
    models: BTreeMap<PrimitiveKind, GbtRegressor>,
    /// Validation quality per primitive: (RMSE in log-space, Spearman rank
    /// correlation) — the paper's §VI-G accuracy discussion.
    pub validation: BTreeMap<PrimitiveKind, (f64, f64)>,
}

impl CostModelSet {
    /// Assembles a set from trained regressors (used by [`crate::cost::training`]).
    pub fn new(
        device: DeviceKind,
        models: BTreeMap<PrimitiveKind, GbtRegressor>,
        validation: BTreeMap<PrimitiveKind, (f64, f64)>,
    ) -> Self {
        Self {
            device,
            models,
            validation,
        }
    }

    /// The device these models were trained for.
    pub fn device(&self) -> DeviceKind {
        self.device
    }

    /// The per-primitive regressors (read-only; used by the audit layer to
    /// build perturbed model sets for regret testing).
    pub fn models(&self) -> &BTreeMap<PrimitiveKind, GbtRegressor> {
        &self.models
    }

    /// Predicts the latency (seconds) of one primitive invocation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MissingCostModel`] if the primitive has no model.
    pub fn predict_step(&self, step: &PrimStep, input: &FeaturizedInput) -> Result<f64> {
        let model = self
            .models
            .get(&step.kind)
            .ok_or(CoreError::MissingCostModel {
                primitive: step.kind.name().into(),
            })?;
        let features = input.step_features(step);
        Ok(model.predict(&features).exp())
    }

    /// Predicts the total latency of a candidate program — "We approximate
    /// the cost of executing an association tree by the addition of the costs
    /// of each primitive" (§IV-D). Hoisted (`once`) steps amortize over
    /// `iterations` runs (the paper evaluates 100-iteration executions where
    /// graph-only precomputation is paid once).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MissingCostModel`] if any step lacks a model.
    pub fn predict_program(
        &self,
        program: &CandidateProgram,
        input: &FeaturizedInput,
        iterations: usize,
    ) -> Result<f64> {
        let iters = iterations.max(1) as f64;
        let mut total = 0.0;
        for step in &program.steps {
            let cost = self.predict_step(step, input)?;
            total += if step.once { cost / iters } else { cost };
        }
        Ok(total)
    }

    /// Predicts the steady-state (per-iteration) latency of a candidate
    /// program: the sum of its non-hoisted steps only. Unlike
    /// [`CostModelSet::predict_program`] there is no amortized setup term,
    /// which makes this directly comparable to the measured cost of one
    /// [`crate::execplan::BoundPlan::iterate`] — the residual the serving
    /// runtime's online drift detector watches.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MissingCostModel`] if any per-iteration step
    /// lacks a model.
    pub fn predict_steady_state(
        &self,
        program: &CandidateProgram,
        input: &FeaturizedInput,
    ) -> Result<f64> {
        let mut total = 0.0;
        for step in program.steps.iter().filter(|s| !s.once) {
            total += self.predict_step(step, input)?;
        }
        Ok(total)
    }

    /// Serializes the set to JSON (the offline stage persists models for the
    /// online runtime).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Serde`] on serialization failure.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| CoreError::Serde(e.to_string()))
    }

    /// Loads a set from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Serde`] on parse failure.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| CoreError::Serde(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Dim;

    #[test]
    fn missing_model_is_reported() {
        let set = CostModelSet::new(DeviceKind::Cpu, BTreeMap::new(), BTreeMap::new());
        let step = PrimStep {
            kind: PrimitiveKind::Gemm,
            rows: Dim::N,
            inner: Dim::K1,
            cols: Dim::K2,
            signature: "x".into(),
            once: false,
        };
        let g = granii_graph::generators::ring(5).unwrap();
        let input = FeaturizedInput::extract(&g, 4, 4);
        assert!(matches!(
            set.predict_step(&step, &input),
            Err(CoreError::MissingCostModel { .. })
        ));
    }
}
