//! The input featurizer (paper §IV-E1).
//!
//! "The input featurizer efficiently inspects the input graph at run time to
//! obtain the necessary graph features and concatenates the resulting
//! embedding with the GNN embedding sizes to create the final featurized
//! input embedding."

use granii_graph::{Graph, GraphFeatures};
use serde::{Deserialize, Serialize};

use crate::assoc::PrimStep;

/// A featurized (graph, embedding-size) input, ready to feed cost models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeaturizedInput {
    /// Structural graph features.
    pub graph: GraphFeatures,
    /// Node count (for resolving symbolic dims).
    pub num_nodes: usize,
    /// Adjacency nonzeros including self-loops (the aggregation pattern).
    pub num_edges: usize,
    /// Input embedding size.
    pub k1: usize,
    /// Output embedding size.
    pub k2: usize,
}

impl FeaturizedInput {
    /// Number of features produced per primitive invocation.
    pub const LEN: usize = GraphFeatures::LEN + 5;

    /// Extracts features from a graph (one O(nodes) pass) and records the
    /// embedding sizes. `num_edges` uses the self-loop form since that is the
    /// pattern aggregations run over.
    pub fn extract(graph: &Graph, k1: usize, k2: usize) -> Self {
        let features = GraphFeatures::extract(graph);
        Self {
            graph: features,
            num_nodes: graph.num_nodes(),
            num_edges: graph.num_edges() + graph.num_nodes(),
            k1,
            k2,
        }
    }

    /// The feature vector for one primitive step: graph features ++ resolved
    /// operation sizes ++ embedding sizes.
    pub fn step_features(&self, step: &PrimStep) -> Vec<f64> {
        let mut v = self.graph.to_vec();
        v.push(
            step.rows
                .resolve(self.num_nodes, self.num_edges, self.k1, self.k2) as f64,
        );
        v.push(
            step.inner
                .resolve(self.num_nodes, self.num_edges, self.k1, self.k2) as f64,
        );
        v.push(
            step.cols
                .resolve(self.num_nodes, self.num_edges, self.k1, self.k2) as f64,
        );
        v.push(self.k1 as f64);
        v.push(self.k2 as f64);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Dim;
    use granii_graph::generators;
    use granii_matrix::PrimitiveKind;

    #[test]
    fn feature_vector_has_fixed_length() {
        let g = generators::ring(10).unwrap();
        let f = FeaturizedInput::extract(&g, 32, 64);
        let step = PrimStep {
            kind: PrimitiveKind::Gemm,
            rows: Dim::N,
            inner: Dim::K1,
            cols: Dim::K2,
            signature: "t".into(),
            once: false,
        };
        assert_eq!(f.step_features(&step).len(), FeaturizedInput::LEN);
    }

    #[test]
    fn dims_resolve_against_graph_and_config() {
        let g = generators::ring(10).unwrap();
        let f = FeaturizedInput::extract(&g, 32, 64);
        let step = PrimStep {
            kind: PrimitiveKind::SpmmUnweighted,
            rows: Dim::N,
            inner: Dim::Nnz,
            cols: Dim::K2,
            signature: "t".into(),
            once: false,
        };
        let v = f.step_features(&step);
        let base = granii_graph::GraphFeatures::LEN;
        assert_eq!(v[base], 10.0); // rows = N
        assert_eq!(v[base + 1], (g.num_edges() + 10) as f64); // nnz with loops
        assert_eq!(v[base + 2], 64.0); // cols = K2
        assert_eq!(v[base + 3], 32.0);
        assert_eq!(v[base + 4], 64.0);
    }
}
