use std::fmt;

use granii_boost::BoostError;
use granii_gnn::GnnError;
use granii_graph::GraphError;
use granii_matrix::MatrixError;

/// Errors produced by the GRANII compiler and runtime.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// The IR was malformed (e.g. a chain with incompatible shapes).
    InvalidIr(String),
    /// Enumeration produced no executable candidate for a model.
    NoCandidates {
        /// The model whose enumeration came up empty.
        model: String,
    },
    /// A cost model was requested for a primitive/device that has none.
    MissingCostModel {
        /// Primitive name.
        primitive: String,
    },
    /// Cost-model training failed.
    Boost(BoostError),
    /// A GNN-layer operation failed.
    Gnn(GnnError),
    /// A graph operation failed.
    Graph(GraphError),
    /// A matrix kernel failed.
    Matrix(MatrixError),
    /// Model (de)serialization failed.
    Serde(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidIr(msg) => write!(f, "invalid matrix IR: {msg}"),
            CoreError::NoCandidates { model } => {
                write!(
                    f,
                    "association enumeration produced no candidates for {model}"
                )
            }
            CoreError::MissingCostModel { primitive } => {
                write!(f, "no trained cost model for primitive {primitive}")
            }
            CoreError::Boost(e) => write!(f, "cost-model training error: {e}"),
            CoreError::Gnn(e) => write!(f, "gnn error: {e}"),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Matrix(e) => write!(f, "matrix error: {e}"),
            CoreError::Serde(msg) => write!(f, "serialization error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Boost(e) => Some(e),
            CoreError::Gnn(e) => Some(e),
            CoreError::Graph(e) => Some(e),
            CoreError::Matrix(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BoostError> for CoreError {
    fn from(e: BoostError) -> Self {
        CoreError::Boost(e)
    }
}

impl From<GnnError> for CoreError {
    fn from(e: GnnError) -> Self {
        CoreError::Gnn(e)
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<MatrixError> for CoreError {
    fn from(e: MatrixError) -> Self {
        CoreError::Matrix(e)
    }
}
