//! IR rewrite passes (paper §IV-B, Fig 6(c), Appendix C).
//!
//! 1. [`eliminate_broadcasts`] — row-broadcasts act as re-association
//!    barriers; rewriting `d ⊗ x` into `diag(d) · x` lets the normalization
//!    participate in the multiplication chain.
//! 2. [`flatten`] — merges nested chains into single n-ary levels so every
//!    adjacent multiplication is visible to the enumerator.
//! 3. [`variants`] — additionally distributes a trailing weight over a sum
//!    (`(a + b)·W → a·W + b·W`), the reordering that moves GIN/SAGE's update
//!    GEMM across the aggregation.

use super::{Expr, MatRef};

/// Rewrites every row-broadcast into a diagonal-matrix multiplication.
pub fn eliminate_broadcasts(expr: &Expr) -> Expr {
    match expr {
        Expr::Mat(m) => Expr::Mat(m.clone()),
        Expr::Chain(es) => Expr::Chain(es.iter().map(eliminate_broadcasts).collect()),
        Expr::Add(es) => Expr::Add(es.iter().map(eliminate_broadcasts).collect()),
        Expr::RowBroadcast { d, x } => {
            Expr::Chain(vec![Expr::Mat(d.clone()), eliminate_broadcasts(x)])
        }
        Expr::Nonlinear(x) => Expr::Nonlinear(Box::new(eliminate_broadcasts(x))),
        Expr::Attention { theta } => Expr::Attention {
            theta: Box::new(eliminate_broadcasts(theta)),
        },
    }
}

/// Flattens nested chains into single n-ary levels.
pub fn flatten(expr: &Expr) -> Expr {
    match expr {
        Expr::Mat(m) => Expr::Mat(m.clone()),
        Expr::Chain(es) => {
            let mut out: Vec<Expr> = Vec::new();
            for e in es {
                match flatten(e) {
                    Expr::Chain(inner) => out.extend(inner),
                    other => out.push(other),
                }
            }
            if out.len() == 1 {
                out.pop().expect("one element")
            } else {
                Expr::Chain(out)
            }
        }
        Expr::Add(es) => Expr::Add(es.iter().map(flatten).collect()),
        Expr::RowBroadcast { d, x } => Expr::RowBroadcast {
            d: d.clone(),
            x: Box::new(flatten(x)),
        },
        Expr::Nonlinear(x) => Expr::Nonlinear(Box::new(flatten(x))),
        Expr::Attention { theta } => Expr::Attention {
            theta: Box::new(flatten(theta)),
        },
    }
}

/// Canonicalizes an IR for enumeration: broadcast elimination then flattening.
pub fn canonicalize(expr: &Expr) -> Expr {
    flatten(&eliminate_broadcasts(expr))
}

/// Produces the set of algebraic variants to enumerate over: the canonical
/// form plus every way of distributing chain factors over sums.
/// Variants are deduplicated by their rendering.
pub fn variants(expr: &Expr) -> Vec<Expr> {
    let canon = canonicalize(expr);
    let mut out = expand(&canon);
    let mut seen = std::collections::HashSet::new();
    out.retain(|e| seen.insert(e.render()));
    out
}

/// Recursively expands an expression into its distribution variants,
/// rebuilding every surrounding context.
fn expand(expr: &Expr) -> Vec<Expr> {
    match expr {
        Expr::Mat(_) => vec![expr.clone()],
        Expr::Nonlinear(x) => expand(x)
            .into_iter()
            .map(|v| Expr::Nonlinear(Box::new(v)))
            .collect(),
        Expr::Attention { theta } => expand(theta)
            .into_iter()
            .map(|v| Expr::Attention { theta: Box::new(v) })
            .collect(),
        Expr::RowBroadcast { d, x } => expand(x)
            .into_iter()
            .map(|v| Expr::RowBroadcast {
                d: d.clone(),
                x: Box::new(v),
            })
            .collect(),
        Expr::Add(es) => cartesian_exprs(es).into_iter().map(Expr::Add).collect(),
        Expr::Chain(es) => {
            let mut out = Vec::new();
            for combo in cartesian_exprs(es) {
                let chain = flatten(&Expr::Chain(combo));
                // The undistributed form.
                out.push(chain.clone());
                // Plus distributing head/tail factors over any Add child.
                if let Expr::Chain(parts) = &chain {
                    for (i, part) in parts.iter().enumerate() {
                        if let Expr::Add(terms) = part {
                            let head = &parts[..i];
                            let tail = &parts[i + 1..];
                            if head.is_empty() && tail.is_empty() {
                                continue;
                            }
                            let new_terms: Vec<Expr> = terms
                                .iter()
                                .map(|t| {
                                    let mut v = head.to_vec();
                                    v.push(t.clone());
                                    v.extend_from_slice(tail);
                                    flatten(&Expr::Chain(v))
                                })
                                .collect();
                            out.push(Expr::Add(new_terms));
                        }
                    }
                }
            }
            out
        }
    }
}

/// All combinations picking one variant per child expression.
fn cartesian_exprs(es: &[Expr]) -> Vec<Vec<Expr>> {
    let mut out: Vec<Vec<Expr>> = vec![Vec::new()];
    for e in es {
        let vs = expand(e);
        let mut next = Vec::with_capacity(out.len() * vs.len());
        for prefix in &out {
            for v in &vs {
                let mut p = prefix.clone();
                p.push(v.clone());
                next.push(p);
            }
        }
        out = next;
    }
    out
}

/// Collects the diagonal leaves of an expression (used by tests and the
/// complexity reporter).
pub fn diagonal_leaves(expr: &Expr) -> Vec<MatRef> {
    let mut out = Vec::new();
    fn rec(e: &Expr, out: &mut Vec<MatRef>) {
        match e {
            Expr::Mat(m) => {
                if m.attr == super::Attr::Diagonal {
                    out.push(m.clone());
                }
            }
            Expr::Chain(es) | Expr::Add(es) => es.iter().for_each(|e| rec(e, out)),
            Expr::RowBroadcast { d, x } => {
                out.push(d.clone());
                rec(x, out);
            }
            Expr::Nonlinear(x) | Expr::Attention { theta: x } => rec(x, out),
        }
    }
    rec(expr, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::builder::build;
    use granii_gnn::spec::{LayerConfig, ModelKind};

    #[test]
    fn gcn_rewrites_to_five_element_chain() {
        let e = build(ModelKind::Gcn, LayerConfig::new(8, 4));
        let canon = canonicalize(&e);
        assert_eq!(canon.render(), "σ(D·A·D·H·W)");
        match &canon {
            Expr::Nonlinear(inner) => match inner.as_ref() {
                Expr::Chain(es) => assert_eq!(es.len(), 5),
                other => panic!("expected chain, got {other:?}"),
            },
            other => panic!("expected nonlinear, got {other:?}"),
        }
    }

    #[test]
    fn sgc_two_hops_is_eight_element_chain() {
        let e = build(
            ModelKind::Sgc,
            LayerConfig {
                k_in: 8,
                k_out: 4,
                hops: 2,
            },
        );
        let canon = canonicalize(&e);
        assert_eq!(canon.render(), "(D·A·D·D·A·D·H·W)");
    }

    #[test]
    fn gin_distribution_moves_the_update() {
        let e = build(ModelKind::Gin, LayerConfig::new(8, 4));
        let vs = variants(&e);
        assert!(
            vs.len() >= 2,
            "expected distributed variant, got {}",
            vs.len()
        );
        let rendered: Vec<String> = vs.iter().map(Expr::render).collect();
        // The distributed form pushes W1 into both terms of the sum.
        assert!(
            rendered
                .iter()
                .any(|r| r.contains("H·W1") && r.contains("A·H·W1")),
            "{rendered:?}"
        );
    }

    #[test]
    fn variants_are_deduplicated() {
        let e = build(ModelKind::Gcn, LayerConfig::new(8, 4));
        let vs = variants(&e);
        let mut renders: Vec<_> = vs.iter().map(Expr::render).collect();
        renders.sort();
        renders.dedup();
        assert_eq!(renders.len(), vs.len());
    }

    #[test]
    fn diagonal_leaves_found() {
        let e = build(ModelKind::Gcn, LayerConfig::new(8, 4));
        assert_eq!(diagonal_leaves(&e).len(), 2);
    }
}
