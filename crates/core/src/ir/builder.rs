//! The GRANII front end: translates GNN models from the message-passing form
//! (the `granii-gnn` spec) into the matrix IR (paper §IV-B "Code
//! Translation").
//!
//! The paper's implementation parses Python ASTs; here the rule-based mapping
//! consumes the typed model description instead (see `DESIGN.md` §2). The
//! mapping is the same: `update_all(copy_u, sum)` becomes a multiplication by
//! the adjacency, per-node normalization becomes a row-broadcast, dense
//! `matmul` becomes a chain entry, and nonlinearities become barriers.

use granii_gnn::spec::{LayerConfig, ModelKind};

use super::{Attr, Dim, Expr, MatRef};

/// Leaf constructors shared by the model builders.
fn adj() -> Expr {
    Expr::Mat(MatRef::new("A", Dim::N, Dim::N, Attr::SparseUnweighted))
}
fn feats() -> Expr {
    Expr::Mat(MatRef::new("H", Dim::N, Dim::K1, Attr::DenseData))
}
fn weight(name: &str) -> Expr {
    Expr::Mat(MatRef::new(name, Dim::K1, Dim::K2, Attr::DenseWeight))
}
fn deg() -> MatRef {
    MatRef::new("D", Dim::N, Dim::N, Attr::Diagonal)
}

/// Builds the message-passing-level matrix IR of a model (pre-rewrite, with
/// explicit row-broadcasts as in Fig 6(b)).
///
/// `cfg.hops` controls the propagation depth of SGC/TAGCN.
pub fn build(model: ModelKind, cfg: LayerConfig) -> Expr {
    match model {
        // σ( D ⊗ (A · (D ⊗ H) · W) )  — Eq. 2.
        ModelKind::Gcn => Expr::Nonlinear(Box::new(Expr::RowBroadcast {
            d: deg(),
            x: Box::new(Expr::Chain(vec![
                adj(),
                Expr::RowBroadcast {
                    d: deg(),
                    x: Box::new(feats()),
                },
                weight("W"),
            ])),
        })),
        // (Ñ^k · H) · W with Ñ applied as broadcasts per hop; no nonlinearity.
        ModelKind::Sgc => {
            let mut x = feats();
            for _ in 0..cfg.hops {
                x = Expr::RowBroadcast {
                    d: deg(),
                    x: Box::new(Expr::Chain(vec![
                        adj(),
                        Expr::RowBroadcast {
                            d: deg(),
                            x: Box::new(x),
                        },
                    ])),
                };
            }
            Expr::Chain(vec![x, weight("W")])
        }
        // σ( Σ_k (Ñ^k · H) · W_k ).
        ModelKind::Tagcn => {
            let mut terms = Vec::with_capacity(cfg.hops + 1);
            let mut x = feats();
            terms.push(Expr::Chain(vec![x.clone(), weight("W0")]));
            for k in 1..=cfg.hops {
                x = Expr::RowBroadcast {
                    d: deg(),
                    x: Box::new(Expr::Chain(vec![
                        adj(),
                        Expr::RowBroadcast {
                            d: deg(),
                            x: Box::new(x),
                        },
                    ])),
                };
                terms.push(Expr::Chain(vec![x.clone(), weight(&format!("W{k}"))]));
            }
            Expr::Nonlinear(Box::new(Expr::Add(terms)))
        }
        // ( σ( ((1+ε)I ⊗ H + A·H) · W1 ) ) · W2.
        ModelKind::Gin => {
            let eps = MatRef::new("(1+ε)I", Dim::N, Dim::N, Attr::Diagonal);
            let sum = Expr::Add(vec![
                Expr::RowBroadcast {
                    d: eps,
                    x: Box::new(feats()),
                },
                Expr::Chain(vec![adj(), feats()]),
            ]);
            let hidden = Expr::Nonlinear(Box::new(Expr::Chain(vec![sum, weight("W1")])));
            Expr::Chain(vec![
                hidden,
                Expr::Mat(MatRef::new("W2", Dim::K2, Dim::K2, Attr::DenseWeight)),
            ])
        }
        // σ( Atten(Ã, H·W, W_A) · H · W )  — Eqs. 4-6; the shared `W` leaf
        // makes Θ = H·W a common subexpression between attention and
        // aggregation.
        ModelKind::Gat => Expr::Nonlinear(Box::new(Expr::Chain(vec![
            Expr::Attention {
                theta: Box::new(Expr::Chain(vec![feats(), weight("W")])),
            },
            feats(),
            weight("W"),
        ]))),
        // σ( H·W_self + (D^{-1} ⊗ (A·H)) · W_neigh )  — mean aggregation as a
        // diagonal scaling.
        ModelKind::Sage => {
            let dinv = MatRef::new("D^{-1}", Dim::N, Dim::N, Attr::Diagonal);
            Expr::Nonlinear(Box::new(Expr::Add(vec![
                Expr::Chain(vec![feats(), weight("W_self")]),
                Expr::Chain(vec![
                    Expr::RowBroadcast {
                        d: dinv,
                        x: Box::new(Expr::Chain(vec![adj(), feats()])),
                    },
                    weight("W_neigh"),
                ]),
            ])))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcn_renders_like_fig6() {
        let e = build(ModelKind::Gcn, LayerConfig::new(8, 4));
        assert_eq!(e.render(), "σ(D ⊗ (A·(D ⊗ H)·W))");
        assert_eq!(e.shape(), (Dim::N, Dim::K2));
    }

    #[test]
    fn sgc_nests_hops() {
        let e = build(
            ModelKind::Sgc,
            LayerConfig {
                k_in: 8,
                k_out: 4,
                hops: 2,
            },
        );
        let r = e.render();
        assert_eq!(r.matches('⊗').count(), 4); // two broadcasts per hop
        assert_eq!(e.shape(), (Dim::N, Dim::K2));
    }

    #[test]
    fn tagcn_has_hops_plus_one_terms() {
        let e = build(
            ModelKind::Tagcn,
            LayerConfig {
                k_in: 8,
                k_out: 4,
                hops: 2,
            },
        );
        match &e {
            Expr::Nonlinear(inner) => match inner.as_ref() {
                Expr::Add(terms) => assert_eq!(terms.len(), 3),
                other => panic!("expected Add, got {other:?}"),
            },
            other => panic!("expected Nonlinear, got {other:?}"),
        }
    }

    #[test]
    fn gat_shares_theta_between_attention_and_aggregation() {
        let e = build(ModelKind::Gat, LayerConfig::new(8, 4));
        let r = e.render();
        // Θ = (H·W) appears inside Atten and the aggregation chain ends ·H·W.
        assert!(r.contains("Atten(Ã, (H·W), W_A)"), "{r}");
        assert!(r.ends_with("·H·W)"), "{r}");
    }

    #[test]
    fn all_models_have_output_shape_n_by_k2() {
        for kind in [
            ModelKind::Gcn,
            ModelKind::Sgc,
            ModelKind::Tagcn,
            ModelKind::Gat,
            ModelKind::Sage,
        ] {
            let e = build(kind, LayerConfig::new(8, 4));
            assert_eq!(e.shape(), (Dim::N, Dim::K2), "{kind}");
        }
        // GIN's second MLP layer is K2 x K2.
        let gin = build(ModelKind::Gin, LayerConfig::new(8, 4));
        assert_eq!(gin.shape(), (Dim::N, Dim::K2));
    }
}
