//! The matrix intermediate representation (paper §IV-B).
//!
//! The IR is a tree whose leaves are matrices annotated with the Table I
//! attributes and whose interior nodes are matrix operations. Crucially —
//! and unlike a framework computation graph — *adjacent multiplications live
//! in one n-ary [`Expr::Chain`] level*, so the associativity information
//! needed for re-association is never lost. Nonlinear functions are barriers
//! ([`Expr::Nonlinear`]); GAT's attention-score computation is an opaque
//! sparse-producing sub-program ([`Expr::Attention`]).

pub mod builder;
pub mod rewrite;

use serde::{Deserialize, Serialize};

/// Symbolic matrix dimensions.
///
/// All shapes occurring in single-layer GNN programs are expressible over the
/// node count `N`, the input/output embedding sizes `K1`/`K2`, and `1`.
/// The adjacency's nonzero count `E` appears as the *work* dimension of
/// sparse primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dim {
    /// Number of graph nodes.
    N,
    /// Number of adjacency nonzeros (sparse work dimension).
    Nnz,
    /// Input embedding size.
    K1,
    /// Output embedding size.
    K2,
    /// Scalar / vector dimension 1.
    One,
}

impl Dim {
    /// Resolves the symbol against concrete sizes.
    pub fn resolve(self, n: usize, nnz: usize, k1: usize, k2: usize) -> usize {
        match self {
            Dim::N => n,
            Dim::Nnz => nnz,
            Dim::K1 => k1,
            Dim::K2 => k2,
            Dim::One => 1,
        }
    }

    /// Symbol name as used in complexity tables.
    pub fn symbol(self) -> &'static str {
        match self {
            Dim::N => "N",
            Dim::Nnz => "E",
            Dim::K1 => "K1",
            Dim::K2 => "K2",
            Dim::One => "1",
        }
    }
}

/// Leaf-matrix attributes (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Attr {
    /// Dense matrix holding data (features, intermediate embeddings).
    DenseData,
    /// Dense matrix holding learnable weights.
    DenseWeight,
    /// Sparse matrix using edge values.
    SparseWeighted,
    /// Sparse matrix storing only nonzero positions.
    SparseUnweighted,
    /// Diagonal matrix (per-node scalars such as `D^{-1/2}`).
    Diagonal,
}

impl Attr {
    /// Whether the attribute denotes a sparse representation (including
    /// diagonal, which Table I lists as a sparse sub-attribute).
    pub fn is_sparse(self) -> bool {
        matches!(
            self,
            Attr::SparseWeighted | Attr::SparseUnweighted | Attr::Diagonal
        )
    }
}

/// A leaf matrix reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MatRef {
    /// Display name (`A`, `H`, `W`, `D`, ...).
    pub name: String,
    /// Symbolic row count.
    pub rows: Dim,
    /// Symbolic column count.
    pub cols: Dim,
    /// Table I attribute.
    pub attr: Attr,
}

impl MatRef {
    /// Creates a leaf reference.
    pub fn new(name: impl Into<String>, rows: Dim, cols: Dim, attr: Attr) -> Self {
        Self {
            name: name.into(),
            rows,
            cols,
            attr,
        }
    }
}

/// A matrix-IR expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A leaf matrix.
    Mat(MatRef),
    /// An n-ary associative multiplication level. All adjacent
    /// multiplications are flattened into one `Chain`, preserving the freedom
    /// to re-associate (Fig 6(b)).
    Chain(Vec<Expr>),
    /// Element-wise sum of equally-shaped operands.
    Add(Vec<Expr>),
    /// Row-broadcast `d ⊗ x` where `d` is a per-node vector (Eq. 1).
    /// Rewritable into `diag(d) · x` by [`rewrite::eliminate_broadcasts`].
    RowBroadcast {
        /// The per-node scaling vector (a diagonal leaf).
        d: MatRef,
        /// The broadcast target.
        x: Box<Expr>,
    },
    /// A nonlinear function — a re-association barrier (§IV-B: "we consider
    /// non-linear operations such as ReLU and SoftMax as barriers").
    Nonlinear(Box<Expr>),
    /// GAT's attention computation `Atten(Ã, Θ, W_A)` (Eq. 4): consumes the
    /// updated embeddings `Θ` and produces the sparse attention matrix `α`.
    /// Internally fixed (softmax barrier); externally a sparse-weighted
    /// operand whose inner `Θ` is a reusable common subexpression.
    Attention {
        /// The updated-embedding sub-expression `Θ = H · W`.
        theta: Box<Expr>,
    },
}

impl Expr {
    /// The symbolic shape of this expression's value.
    ///
    /// # Panics
    ///
    /// Panics on an empty chain/add (never produced by the builder).
    pub fn shape(&self) -> (Dim, Dim) {
        match self {
            Expr::Mat(m) => (m.rows, m.cols),
            Expr::Chain(es) => {
                let first = es.first().expect("nonempty chain").shape();
                let last = es.last().expect("nonempty chain").shape();
                (first.0, last.1)
            }
            Expr::Add(es) => es.first().expect("nonempty add").shape(),
            Expr::RowBroadcast { x, .. } => x.shape(),
            Expr::Nonlinear(x) => x.shape(),
            Expr::Attention { .. } => (Dim::N, Dim::N),
        }
    }

    /// Renders the flattened textual form used in reports (e.g.
    /// `σ((D·A·D·H·W))` for the rewritten GCN).
    pub fn render(&self) -> String {
        match self {
            Expr::Mat(m) => m.name.clone(),
            Expr::Chain(es) => {
                let parts: Vec<String> = es.iter().map(Expr::render).collect();
                format!("({})", parts.join("·"))
            }
            Expr::Add(es) => {
                let parts: Vec<String> = es.iter().map(Expr::render).collect();
                format!("({})", parts.join(" + "))
            }
            Expr::RowBroadcast { d, x } => format!("({} ⊗ {})", d.name, x.render()),
            Expr::Nonlinear(x) => format!("σ{}", x.render()),
            Expr::Attention { theta } => format!("Atten(Ã, {}, W_A)", theta.render()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> MatRef {
        MatRef::new("H", Dim::N, Dim::K1, Attr::DenseData)
    }
    fn w() -> MatRef {
        MatRef::new("W", Dim::K1, Dim::K2, Attr::DenseWeight)
    }

    #[test]
    fn dim_resolution() {
        assert_eq!(Dim::N.resolve(10, 20, 3, 4), 10);
        assert_eq!(Dim::Nnz.resolve(10, 20, 3, 4), 20);
        assert_eq!(Dim::K1.resolve(10, 20, 3, 4), 3);
        assert_eq!(Dim::K2.resolve(10, 20, 3, 4), 4);
        assert_eq!(Dim::One.resolve(10, 20, 3, 4), 1);
    }

    #[test]
    fn chain_shape_spans_ends() {
        let e = Expr::Chain(vec![Expr::Mat(h()), Expr::Mat(w())]);
        assert_eq!(e.shape(), (Dim::N, Dim::K2));
    }

    #[test]
    fn render_is_readable() {
        let e = Expr::Nonlinear(Box::new(Expr::Chain(vec![Expr::Mat(h()), Expr::Mat(w())])));
        assert_eq!(e.render(), "σ(H·W)");
    }

    #[test]
    fn diagonal_counts_as_sparse_attribute() {
        assert!(Attr::Diagonal.is_sparse());
        assert!(Attr::SparseUnweighted.is_sparse());
        assert!(!Attr::DenseData.is_sparse());
    }
}
