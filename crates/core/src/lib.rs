//! GRANII: a compiler and runtime that selects and orders sparse/dense matrix
//! primitives in GNNs by inspecting the input.
//!
//! This crate is the paper's primary contribution (§IV). The pipeline mirrors
//! Figure 5:
//!
//! **Offline compilation stage**
//! 1. [`ir`] — GNN models (written against the message-passing API of
//!    `granii-gnn`) are translated into a *matrix IR*: a tree whose leaves
//!    carry the Table I attributes (dense data/weight, sparse
//!    weighted/unweighted, diagonal) and whose associative multiplications are
//!    kept n-ary so re-association choices stay visible (§IV-B),
//! 2. [`ir::rewrite`] — row-broadcasts are rewritten into diagonal-matrix
//!    multiplications so normalization can re-associate into the chain
//!    (Fig 6(c)),
//! 3. [`assoc`] — Algorithm 1 enumerates every valid association tree,
//!    assigning a sparse/dense primitive to each association via the rule
//!    table (App. D); common subexpressions are reused; the input-oblivious
//!    pruner drops candidates dominated under *both* embedding-size scenarios
//!    and annotates survivors with the scenario(s) they can win (§IV-C),
//! 4. [`plan`] — promoted candidates are lowered to executable compositions
//!    guarded by embedding-size conditions and cost-model comparisons
//!    (Fig 7, §IV-D).
//!
//! **Online runtime stage**
//! 5. [`cost`] — an input featurizer summarizes the graph; per-primitive
//!    gradient-boosted cost models (one per primitive × device, §IV-E)
//!    predict each candidate's latency,
//! 6. [`runtime`] — the cheapest candidate is selected for the concrete
//!    (graph, embedding sizes, device); selection overheads are reported,
//! 7. [`execplan`] — the selected candidate is lowered once into a
//!    slot-addressed [`execplan::ExecPlan`] whose steady-state iterations run
//!    with zero heap allocation and no string-keyed lookups; the
//!    string-resolving [`interp`] survives as the differential-test oracle.
//!
//! The top-level entry point is [`Granii`] (the `GRANII(model, graph, ...)`
//! call of Fig 4).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod assoc;
pub mod audit;
pub mod complexity;
pub mod cost;
mod error;
pub mod execplan;
mod granii;
pub mod interp;
pub mod ir;
pub mod plan;
pub mod runtime;

pub use audit::{SelectionAudit, VerifyReport};
pub use error::CoreError;
pub use granii::{Granii, GraniiOptions};
pub use runtime::{Selection, SteadyStateReport};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
