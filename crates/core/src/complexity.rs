//! Symbolic per-operation complexity tables (paper Fig 3).
//!
//! Figure 3 lists, for GCN's and GAT's composition pairs, each primitive with
//! its asymptotic complexity in `N`, `E`, `K1`, `K2`. This module regenerates
//! that table from the *promoted* association trees, so the reported
//! complexities are derived from the same programs the runtime selects among.

use granii_gnn::spec::{Composition, LayerConfig, ModelKind};
use serde::{Deserialize, Serialize};

use crate::plan::CompiledModel;
use crate::Result;

/// One composition's complexity breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComplexityRow {
    /// The executable composition.
    pub composition: Composition,
    /// `(primitive name, O(...))` per step, in execution order.
    pub operations: Vec<(String, String)>,
}

/// Builds the Fig 3-style table for a model.
///
/// # Errors
///
/// Propagates compilation errors.
pub fn complexity_table(model: ModelKind, cfg: LayerConfig) -> Result<Vec<ComplexityRow>> {
    let plan = CompiledModel::compile(model, cfg)?;
    Ok(plan
        .candidates
        .iter()
        .map(|c| ComplexityRow {
            composition: c.composition,
            operations: c
                .program
                .steps
                .iter()
                .map(|s| (s.kind.name().to_string(), s.complexity()))
                .collect(),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use granii_gnn::spec::{GatStrategy, NormStrategy, OpOrder};

    #[test]
    fn gcn_complexities_match_fig3() {
        let rows = complexity_table(ModelKind::Gcn, LayerConfig::new(32, 256)).unwrap();
        // Precompute + aggregate-first: SDDMM O(E), SpMM O(E·K1), GEMM O(N·K1·K2).
        let pre = rows
            .iter()
            .find(|r| {
                r.composition == Composition::Gcn(NormStrategy::Precompute, OpOrder::AggregateFirst)
            })
            .unwrap();
        let ops: Vec<&str> = pre.operations.iter().map(|(_, c)| c.as_str()).collect();
        assert!(ops.contains(&"O(E)"), "{ops:?}");
        assert!(ops.contains(&"O(E·K1)"), "{ops:?}");
        assert!(ops.contains(&"O(N·K1·K2)"), "{ops:?}");
        // Dynamic + update-first: row-broadcasts O(N·K2), SpMM O(E·K2).
        let dyn_up = rows
            .iter()
            .find(|r| {
                r.composition == Composition::Gcn(NormStrategy::Dynamic, OpOrder::UpdateFirst)
            })
            .unwrap();
        let ops: Vec<&str> = dyn_up.operations.iter().map(|(_, c)| c.as_str()).collect();
        assert!(ops.contains(&"O(N·K2)"), "{ops:?}");
        assert!(ops.contains(&"O(E·K2)"), "{ops:?}");
    }

    #[test]
    fn gat_complexities_show_the_tradeoff() {
        let rows = complexity_table(ModelKind::Gat, LayerConfig::new(32, 256)).unwrap();
        let reuse = rows
            .iter()
            .find(|r| r.composition == Composition::Gat(GatStrategy::Reuse))
            .unwrap();
        let recompute = rows
            .iter()
            .find(|r| r.composition == Composition::Gat(GatStrategy::Recompute))
            .unwrap();
        // Recompute aggregates at K1 but pays one more GEMM.
        let gemms = |r: &ComplexityRow| r.operations.iter().filter(|(n, _)| n == "gemm").count();
        assert_eq!(gemms(recompute), gemms(reuse) + 1);
        assert!(recompute.operations.iter().any(|(_, c)| c == "O(E·K1)"));
        assert!(reuse.operations.iter().any(|(_, c)| c == "O(E·K2)"));
    }
}
