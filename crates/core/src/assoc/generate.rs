//! Algorithm 1: exhaustive enumeration of association trees.
//!
//! The enumerator recursively reduces each n-ary multiplication chain by every
//! rule-matching adjacent pair, spawning one branch per candidate (the paper's
//! `getCandidates` / `apply` loop). The rule table (Appendix D substitute):
//!
//! | left × right | primitive | result |
//! |---|---|---|
//! | diag × diag | element-wise merge | diag |
//! | diag × sparse, sparse × diag | SDDMM edge scaling | sparse (weighted) |
//! | diag × dense | row-broadcast | dense |
//! | dense × diag | column-broadcast | dense |
//! | sparse × dense | g-SpMM (weighted per sparse sub-attribute) | dense |
//! | dense × dense | GEMM | dense |
//! | sparse × sparse | — (no SpGEMM primitive; branch dies) | |
//!
//! Consecutive diagonal absorptions into the same sparse operand fuse into a
//! single SDDMM (`(D·A)·D` and `D·(A·D)` both canonicalize to `D·A·D`), which
//! is what makes the GCN forest count 12 instead of Catalan(4) = 14.
//! Completed trees are deduplicated by canonical expression, and equal step
//! signatures are computed once (common-subexpression reuse).

use std::collections::BTreeMap;

use granii_matrix::PrimitiveKind;

use crate::ir::{Attr, Dim, Expr};
use crate::{CoreError, Result};

use super::{CandidateProgram, PrimStep};

/// A working element of a chain during reduction.
#[derive(Debug, Clone)]
struct Elem {
    rows: Dim,
    cols: Dim,
    kind: ElemKind,
    expr: String,
    /// Index (into the step list) of the step that produced this element, for
    /// SDDMM fusion.
    produced_by: Option<usize>,
    /// Whether the element depends on iteration-varying data (features or
    /// weights) as opposed to graph structure only; graph-only steps are
    /// hoisted (`PrimStep::once`).
    data: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ElemKind {
    Diag,
    Sparse { weighted: bool },
    Dense,
}

/// Hard bound on intermediate enumeration results. Algorithm 1 is
/// exponential in chain length (deep TAGCN/SGC hop counts multiply terms
/// combinatorially); beyond this budget enumeration reports a typed error
/// instead of exhausting memory.
pub const ENUMERATION_BUDGET: usize = 250_000;

/// Enumerates all association trees of an IR expression.
///
/// # Errors
///
/// Returns [`CoreError::InvalidIr`] for malformed expressions or when the
/// forest exceeds [`ENUMERATION_BUDGET`] intermediate results, and
/// [`CoreError::NoCandidates`] if no complete tree exists.
pub fn enumerate(expr: &Expr) -> Result<Vec<CandidateProgram>> {
    let mut budget = ENUMERATION_BUDGET;
    let results = enumerate_expr(expr, &mut budget)?;
    let mut out: BTreeMap<String, CandidateProgram> = BTreeMap::new();
    for (elem, steps) in results {
        let steps = dedupe_by_signature(steps);
        out.entry(elem.expr.clone()).or_insert(CandidateProgram {
            expr: elem.expr,
            steps,
        });
    }
    if out.is_empty() {
        return Err(CoreError::NoCandidates {
            model: expr.render(),
        });
    }
    Ok(out.into_values().collect())
}

/// Common-subexpression reuse: a step whose signature was already computed is
/// dropped (its value is reused).
fn dedupe_by_signature(steps: Vec<PrimStep>) -> Vec<PrimStep> {
    let mut seen = std::collections::HashSet::new();
    steps
        .into_iter()
        .filter(|s| seen.insert(s.signature.clone()))
        .collect()
}

/// Decrements the enumeration budget, erroring when exhausted.
fn spend(budget: &mut usize, amount: usize) -> Result<()> {
    if *budget < amount {
        return Err(CoreError::InvalidIr(format!(
            "association enumeration exceeds the {ENUMERATION_BUDGET}-result budget \
             (reduce the hop count; the forest grows exponentially with chain length)"
        )));
    }
    *budget -= amount;
    Ok(())
}

/// Recursively enumerates an expression into `(result element, steps)` pairs.
fn enumerate_expr(expr: &Expr, budget: &mut usize) -> Result<Vec<(Elem, Vec<PrimStep>)>> {
    match expr {
        Expr::Mat(m) => {
            let kind = match m.attr {
                Attr::Diagonal => ElemKind::Diag,
                Attr::SparseWeighted => ElemKind::Sparse { weighted: true },
                Attr::SparseUnweighted => ElemKind::Sparse { weighted: false },
                Attr::DenseData | Attr::DenseWeight => ElemKind::Dense,
            };
            let data = matches!(m.attr, Attr::DenseData | Attr::DenseWeight);
            Ok(vec![(
                Elem {
                    rows: m.rows,
                    cols: m.cols,
                    kind,
                    expr: m.name.clone(),
                    produced_by: None,
                    data,
                },
                Vec::new(),
            )])
        }
        Expr::Chain(es) => {
            if es.is_empty() {
                return Err(CoreError::InvalidIr("empty chain".into()));
            }
            // Cartesian product over the children's enumerations, then reduce
            // the resulting element chain in every rule-compatible order.
            let children: Vec<Vec<(Elem, Vec<PrimStep>)>> = es
                .iter()
                .map(|e| enumerate_expr(e, budget))
                .collect::<Result<_>>()?;
            let mut out = Vec::new();
            for combo in cartesian(&children) {
                let mut steps = Vec::new();
                let mut elems = Vec::with_capacity(combo.len());
                for (elem, child_steps) in combo {
                    let offset = steps.len();
                    let mut elem = elem.clone();
                    if let Some(p) = elem.produced_by {
                        elem.produced_by = Some(p + offset);
                    }
                    steps.extend(child_steps.iter().cloned());
                    elems.push(elem);
                }
                // Different reduction orders reaching the same chain state
                // produce identical futures (an element's expression fully
                // determines the steps that built it), so states are visited
                // once.
                let mut visited = std::collections::HashSet::new();
                reduce_chain(&elems, &steps, &mut out, budget, &mut visited)?;
            }
            Ok(out)
        }
        Expr::Add(es) => {
            if es.is_empty() {
                return Err(CoreError::InvalidIr("empty add".into()));
            }
            let children: Vec<Vec<(Elem, Vec<PrimStep>)>> = es
                .iter()
                .map(|e| enumerate_expr(e, budget))
                .collect::<Result<_>>()?;
            let mut out = Vec::new();
            for combo in cartesian(&children) {
                spend(budget, 1)?;
                let mut steps: Vec<PrimStep> = Vec::new();
                let mut exprs = Vec::new();
                let (mut rows, mut cols) = (Dim::N, Dim::K2);
                for (elem, child_steps) in &combo {
                    if elem.kind != ElemKind::Dense {
                        return Err(CoreError::InvalidIr("add of non-dense operands".into()));
                    }
                    steps.extend(child_steps.iter().cloned());
                    exprs.push(elem.expr.clone());
                    rows = elem.rows;
                    cols = elem.cols;
                }
                let expr = format!("({})", exprs.join(" + "));
                // One element-wise pass per extra operand.
                for i in 1..combo.len() {
                    steps.push(PrimStep {
                        kind: PrimitiveKind::Elementwise,
                        rows,
                        inner: Dim::One,
                        cols,
                        signature: format!("add{i}:{expr}"),
                        once: false,
                    });
                }
                out.push((
                    Elem {
                        rows,
                        cols,
                        kind: ElemKind::Dense,
                        expr,
                        produced_by: None,
                        data: true,
                    },
                    steps,
                ));
            }
            Ok(out)
        }
        Expr::Nonlinear(x) => {
            let inner = enumerate_expr(x, budget)?;
            Ok(inner
                .into_iter()
                .map(|(elem, mut steps)| {
                    let expr = format!("σ{}", wrap(&elem.expr));
                    steps.push(PrimStep {
                        kind: PrimitiveKind::Elementwise,
                        rows: elem.rows,
                        inner: Dim::One,
                        cols: elem.cols,
                        signature: expr.clone(),
                        once: false,
                    });
                    (
                        Elem {
                            rows: elem.rows,
                            cols: elem.cols,
                            kind: ElemKind::Dense,
                            expr,
                            produced_by: None,
                            data: true,
                        },
                        steps,
                    )
                })
                .collect())
        }
        Expr::Attention { theta } => {
            // Fixed sub-program (softmax barrier inside): Θ's own chain is
            // enumerable, then the score computation is a fixed primitive
            // sequence producing the sparse attention matrix α.
            let inner = enumerate_expr(theta, budget)?;
            Ok(inner
                .into_iter()
                .map(|(elem, mut steps)| {
                    let t = elem.expr.clone();
                    for (kind, rows, inner_d, cols, sig) in [
                        (
                            PrimitiveKind::Gemm,
                            Dim::N,
                            Dim::K2,
                            Dim::One,
                            format!("({t}·a_l)"),
                        ),
                        (
                            PrimitiveKind::Gemm,
                            Dim::N,
                            Dim::K2,
                            Dim::One,
                            format!("({t}·a_r)"),
                        ),
                        (
                            PrimitiveKind::Sddmm,
                            Dim::N,
                            Dim::Nnz,
                            Dim::One,
                            format!("att-logits:{t}"),
                        ),
                        (
                            PrimitiveKind::Elementwise,
                            Dim::Nnz,
                            Dim::One,
                            Dim::One,
                            format!("att-leaky:{t}"),
                        ),
                        (
                            PrimitiveKind::EdgeSoftmax,
                            Dim::N,
                            Dim::Nnz,
                            Dim::One,
                            format!("att-softmax:{t}"),
                        ),
                    ] {
                        steps.push(PrimStep {
                            kind,
                            rows,
                            inner: inner_d,
                            cols,
                            signature: sig,
                            once: false,
                        });
                    }
                    (
                        Elem {
                            rows: Dim::N,
                            cols: Dim::N,
                            kind: ElemKind::Sparse { weighted: true },
                            expr: "α".into(),
                            produced_by: None,
                            data: true,
                        },
                        steps,
                    )
                })
                .collect())
        }
        Expr::RowBroadcast { .. } => Err(CoreError::InvalidIr(
            "row-broadcasts must be rewritten before enumeration (run ir::rewrite::canonicalize)"
                .into(),
        )),
    }
}

/// All combinations picking one enumeration per child.
fn cartesian<T>(children: &[Vec<T>]) -> Vec<Vec<&T>> {
    let mut out: Vec<Vec<&T>> = vec![Vec::new()];
    for child in children {
        let mut next = Vec::with_capacity(out.len() * child.len());
        for prefix in &out {
            for item in child {
                let mut v = prefix.clone();
                v.push(item);
                next.push(v);
            }
        }
        out = next;
    }
    out
}

/// Depth-first reduction of an element chain by every applicable rule.
fn reduce_chain(
    elems: &[Elem],
    steps: &[PrimStep],
    out: &mut Vec<(Elem, Vec<PrimStep>)>,
    budget: &mut usize,
    visited: &mut std::collections::HashSet<String>,
) -> Result<()> {
    if elems.len() == 1 {
        spend(budget, 1)?;
        out.push((elems[0].clone(), steps.to_vec()));
        return Ok(());
    }
    let key = elems
        .iter()
        .map(|e| e.expr.as_str())
        .collect::<Vec<_>>()
        .join("\u{1f}");
    if !visited.insert(key) {
        return Ok(());
    }
    spend(budget, 1)?;
    for i in 0..elems.len() - 1 {
        if let Some((elem, new_steps)) = apply_rule(&elems[i], &elems[i + 1], steps) {
            let mut next: Vec<Elem> = Vec::with_capacity(elems.len() - 1);
            next.extend_from_slice(&elems[..i]);
            next.push(elem);
            next.extend_from_slice(&elems[i + 2..]);
            reduce_chain(&next, &new_steps, out, budget, visited)?;
        }
    }
    Ok(())
}

fn wrap(s: &str) -> String {
    if s.starts_with('(') && s.ends_with(')') {
        s.to_string()
    } else {
        format!("({s})")
    }
}

fn strip(s: &str) -> &str {
    s.strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .unwrap_or(s)
}

/// Applies the primitive-assignment rule for an adjacent pair; returns the
/// produced element and the updated step list.
fn apply_rule(l: &Elem, r: &Elem, steps: &[PrimStep]) -> Option<(Elem, Vec<PrimStep>)> {
    use ElemKind::*;
    let mut steps = steps.to_vec();
    let once = !l.data && !r.data;
    let data = l.data || r.data;
    match (l.kind, r.kind) {
        // diag · diag: merge the per-node vectors (element-wise).
        (Diag, Diag) => {
            let expr = format!("({}·{})", strip(&l.expr), strip(&r.expr));
            steps.push(PrimStep {
                kind: PrimitiveKind::Elementwise,
                rows: Dim::N,
                inner: Dim::One,
                cols: Dim::One,
                signature: expr.clone(),
                once,
            });
            let idx = steps.len() - 1;
            Some((
                Elem {
                    rows: l.rows,
                    cols: r.cols,
                    kind: Diag,
                    expr,
                    produced_by: Some(idx),
                    data,
                },
                steps,
            ))
        }
        // diag · sparse / sparse · diag: SDDMM edge scaling. Consecutive
        // absorptions into the same sparse fuse into one SDDMM.
        (Diag, Sparse { .. }) | (Sparse { .. }, Diag) => {
            let (sparse, absorb_left) = if l.kind == Diag {
                (r, true)
            } else {
                (l, false)
            };
            let diag = if absorb_left { l } else { r };
            let expr = if absorb_left {
                format!("({}·{})", diag.expr, strip(&sparse.expr))
            } else {
                format!("({}·{})", strip(&sparse.expr), diag.expr)
            };
            let fused = sparse.produced_by.filter(|&k| {
                steps[k].kind == PrimitiveKind::Sddmm && steps[k].signature == sparse.expr
            });
            let idx = match fused {
                Some(k) => {
                    steps[k].signature = expr.clone();
                    k
                }
                None => {
                    steps.push(PrimStep {
                        kind: PrimitiveKind::Sddmm,
                        rows: Dim::N,
                        inner: Dim::Nnz,
                        cols: Dim::One,
                        signature: expr.clone(),
                        once,
                    });
                    steps.len() - 1
                }
            };
            Some((
                Elem {
                    rows: Dim::N,
                    cols: Dim::N,
                    kind: Sparse { weighted: true },
                    expr,
                    produced_by: Some(idx),
                    data,
                },
                steps,
            ))
        }
        // diag · dense: row-broadcast.
        (Diag, Dense) => {
            let expr = format!("({}·{})", l.expr, r.expr);
            steps.push(PrimStep {
                kind: PrimitiveKind::RowBroadcast,
                rows: r.rows,
                inner: Dim::One,
                cols: r.cols,
                signature: expr.clone(),
                once,
            });
            let idx = steps.len() - 1;
            Some((
                Elem {
                    rows: r.rows,
                    cols: r.cols,
                    kind: Dense,
                    expr,
                    produced_by: Some(idx),
                    data,
                },
                steps,
            ))
        }
        // dense · diag: column-broadcast.
        (Dense, Diag) => {
            let expr = format!("({}·{})", l.expr, r.expr);
            steps.push(PrimStep {
                kind: PrimitiveKind::ColBroadcast,
                rows: l.rows,
                inner: Dim::One,
                cols: l.cols,
                signature: expr.clone(),
                once,
            });
            let idx = steps.len() - 1;
            Some((
                Elem {
                    rows: l.rows,
                    cols: l.cols,
                    kind: Dense,
                    expr,
                    produced_by: Some(idx),
                    data,
                },
                steps,
            ))
        }
        // sparse · dense: g-SpMM, weighted per the sparse sub-attribute.
        (Sparse { weighted }, Dense) => {
            let expr = format!("({}·{})", l.expr, r.expr);
            let kind = if weighted {
                PrimitiveKind::SpmmWeighted
            } else {
                PrimitiveKind::SpmmUnweighted
            };
            steps.push(PrimStep {
                kind,
                rows: l.rows,
                inner: Dim::Nnz,
                cols: r.cols,
                signature: expr.clone(),
                once,
            });
            let idx = steps.len() - 1;
            Some((
                Elem {
                    rows: l.rows,
                    cols: r.cols,
                    kind: Dense,
                    expr,
                    produced_by: Some(idx),
                    data,
                },
                steps,
            ))
        }
        // dense · dense: GEMM.
        (Dense, Dense) => {
            let expr = format!("({}·{})", l.expr, r.expr);
            steps.push(PrimStep {
                kind: PrimitiveKind::Gemm,
                rows: l.rows,
                inner: l.cols,
                cols: r.cols,
                signature: expr.clone(),
                once,
            });
            let idx = steps.len() - 1;
            Some((
                Elem {
                    rows: l.rows,
                    cols: r.cols,
                    kind: Dense,
                    expr,
                    produced_by: Some(idx),
                    data,
                },
                steps,
            ))
        }
        // sparse · sparse: no SpGEMM primitive — the branch dies.
        (Sparse { .. }, Sparse { .. }) | (Dense, Sparse { .. }) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{builder, rewrite};
    use granii_gnn::spec::{LayerConfig, ModelKind};

    fn enumerate_model(kind: ModelKind, cfg: LayerConfig) -> Vec<CandidateProgram> {
        let ir = builder::build(kind, cfg);
        let mut all: BTreeMap<String, CandidateProgram> = BTreeMap::new();
        for variant in rewrite::variants(&ir) {
            for cand in enumerate(&variant).unwrap() {
                all.entry(cand.expr.clone()).or_insert(cand);
            }
        }
        all.into_values().collect()
    }

    /// The §VI-B count: GCN has 12 compositions through re-association.
    #[test]
    fn gcn_enumerates_twelve_trees() {
        let cands = enumerate_model(ModelKind::Gcn, LayerConfig::new(8, 4));
        assert_eq!(
            cands.len(),
            12,
            "{:#?}",
            cands.iter().map(|c| &c.expr).collect::<Vec<_>>()
        );
    }

    /// The §VI-B count: GAT has 2 compositions (reuse vs recompute).
    #[test]
    fn gat_enumerates_two_trees() {
        let cands = enumerate_model(ModelKind::Gat, LayerConfig::new(8, 16));
        assert_eq!(
            cands.len(),
            2,
            "{:#?}",
            cands.iter().map(|c| &c.expr).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gat_reuse_tree_has_one_fewer_gemm() {
        let cands = enumerate_model(ModelKind::Gat, LayerConfig::new(8, 16));
        let gemm_counts: Vec<usize> = cands
            .iter()
            .map(|c| {
                c.steps
                    .iter()
                    .filter(|s| s.kind == PrimitiveKind::Gemm)
                    .count()
            })
            .collect();
        let min = gemm_counts.iter().min().unwrap();
        let max = gemm_counts.iter().max().unwrap();
        assert_eq!(
            max - min,
            1,
            "CSE must remove the reused Θ GEMM: {gemm_counts:?}"
        );
    }

    #[test]
    fn gcn_contains_both_normalization_families() {
        let cands = enumerate_model(ModelKind::Gcn, LayerConfig::new(8, 4));
        let with_sddmm = cands
            .iter()
            .filter(|c| c.steps.iter().any(|s| s.kind == PrimitiveKind::Sddmm))
            .count();
        let with_broadcast = cands
            .iter()
            .filter(|c| {
                c.steps
                    .iter()
                    .any(|s| s.kind == PrimitiveKind::RowBroadcast)
            })
            .count();
        assert!(with_sddmm > 0 && with_broadcast > 0);
        // The fused D·A·D tree exists.
        assert!(cands.iter().any(|c| c.expr.contains("(D·A·D)")));
    }

    #[test]
    fn sddmm_fusion_produces_single_step() {
        let cands = enumerate_model(ModelKind::Gcn, LayerConfig::new(8, 4));
        let fused = cands.iter().find(|c| c.expr.contains("(D·A·D)")).unwrap();
        let sddmms = fused
            .steps
            .iter()
            .filter(|s| s.kind == PrimitiveKind::Sddmm)
            .count();
        assert_eq!(sddmms, 1);
    }

    #[test]
    fn gin_and_sage_enumerate_multiple_orders() {
        for kind in [ModelKind::Gin, ModelKind::Sage] {
            let cands = enumerate_model(kind, LayerConfig::new(8, 4));
            assert!(cands.len() >= 2, "{kind}: {}", cands.len());
        }
    }

    #[test]
    fn sgc_enumeration_grows_with_hops() {
        let one = enumerate_model(
            ModelKind::Sgc,
            LayerConfig {
                k_in: 8,
                k_out: 4,
                hops: 1,
            },
        );
        let two = enumerate_model(
            ModelKind::Sgc,
            LayerConfig {
                k_in: 8,
                k_out: 4,
                hops: 2,
            },
        );
        assert!(two.len() > one.len());
        assert_eq!(
            one.len(),
            12,
            "1-hop SGC matches the GCN chain (no σ barrier changes count)"
        );
    }

    /// Deep TAGCN chains exceed the enumeration budget with a typed error
    /// instead of exhausting memory.
    #[test]
    fn enumeration_budget_guards_deep_hops() {
        let ir = builder::build(
            ModelKind::Tagcn,
            LayerConfig {
                k_in: 8,
                k_out: 4,
                hops: 3,
            },
        );
        let mut hit_budget = false;
        for v in rewrite::variants(&ir) {
            match enumerate(&v) {
                Ok(_) => {}
                Err(CoreError::InvalidIr(msg)) => {
                    assert!(msg.contains("budget"), "{msg}");
                    hit_budget = true;
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(hit_budget, "3-hop TAGCN should trip the budget");
    }

    #[test]
    fn every_candidate_ends_reduced() {
        for kind in [
            ModelKind::Gcn,
            ModelKind::Gat,
            ModelKind::Gin,
            ModelKind::Sage,
        ] {
            for c in enumerate_model(kind, LayerConfig::new(8, 4)) {
                assert!(!c.steps.is_empty(), "{kind}: {c:?}");
            }
        }
    }
}
