//! Lowering promoted association trees to executable compositions (paper
//! §IV-D "GRANII lowers the matrix primitives of each association tree to
//! kernel calls that are supported by the underlying GNN framework").
//!
//! The executable kernel-call sequences live in `granii-gnn::models`; this
//! module maps a promoted tree's primitive signature onto the matching
//! [`Composition`].

use granii_gnn::spec::{Composition, GatStrategy, ModelKind, NormStrategy, OpOrder};
use granii_matrix::PrimitiveKind;

use crate::ir::Dim;

use super::CandidateProgram;

/// Maps a candidate program to the executable composition implementing it.
///
/// Returns `None` for trees with no executable lowering (e.g. mixed-width
/// hybrids that the pruner usually eliminates anyway); the plan compiler
/// drops such candidates.
pub fn lower(model: ModelKind, program: &CandidateProgram) -> Option<Composition> {
    let has_sddmm = program
        .steps
        .iter()
        .any(|s| s.kind == PrimitiveKind::Sddmm && !s.signature.starts_with("att-logits"));
    let spmm_widths: Vec<Dim> = program
        .steps
        .iter()
        .filter(|s| {
            matches!(
                s.kind,
                PrimitiveKind::SpmmWeighted | PrimitiveKind::SpmmUnweighted
            )
        })
        .map(|s| s.cols)
        .collect();
    let all_k1 = !spmm_widths.is_empty() && spmm_widths.iter().all(|&w| w == Dim::K1);
    let all_k2 = !spmm_widths.is_empty() && spmm_widths.iter().all(|&w| w == Dim::K2);
    let order = if all_k2 {
        Some(OpOrder::UpdateFirst)
    } else if all_k1 {
        Some(OpOrder::AggregateFirst)
    } else {
        None
    };
    let norm = if has_sddmm {
        NormStrategy::Precompute
    } else {
        NormStrategy::Dynamic
    };

    match model {
        ModelKind::Gcn => Some(Composition::Gcn(norm, order?)),
        ModelKind::Sgc => Some(Composition::Sgc(norm, order?)),
        ModelKind::Tagcn => Some(Composition::Tagcn(norm, order?)),
        ModelKind::Gin => Some(Composition::Gin(order?)),
        ModelKind::Sage => Some(Composition::Sage(order?)),
        ModelKind::Gat => match order? {
            OpOrder::AggregateFirst => Some(Composition::Gat(GatStrategy::Recompute)),
            OpOrder::UpdateFirst => Some(Composition::Gat(GatStrategy::Reuse)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assoc::{enumerate, prune};
    use crate::ir::{builder, rewrite};
    use granii_gnn::spec::LayerConfig;
    use std::collections::BTreeSet;

    fn promoted_compositions(kind: ModelKind) -> BTreeSet<String> {
        let ir = builder::build(kind, LayerConfig::new(8, 4));
        let mut cands = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for v in rewrite::variants(&ir) {
            for c in enumerate(&v).unwrap() {
                if seen.insert(c.expr.clone()) {
                    cands.push(c);
                }
            }
        }
        let (promoted, _) = prune(&cands);
        promoted
            .iter()
            .filter_map(|p| lower(kind, &p.program))
            .map(|c| c.name())
            .collect()
    }

    #[test]
    fn gcn_promotes_all_four_executable_compositions() {
        let comps = promoted_compositions(ModelKind::Gcn);
        assert_eq!(comps.len(), 4, "{comps:?}");
        assert!(comps.contains("gcn/dynamic+agg-first"));
        assert!(comps.contains("gcn/dynamic+update-first"));
        assert!(comps.contains("gcn/precompute+agg-first"));
        assert!(comps.contains("gcn/precompute+update-first"));
    }

    #[test]
    fn gat_promotes_reuse_and_recompute() {
        let comps = promoted_compositions(ModelKind::Gat);
        assert_eq!(comps.len(), 2, "{comps:?}");
        assert!(comps.contains("gat/reuse"));
        assert!(comps.contains("gat/recompute"));
    }

    #[test]
    fn gin_and_sage_promote_both_orders() {
        for kind in [ModelKind::Gin, ModelKind::Sage] {
            let comps = promoted_compositions(kind);
            assert_eq!(comps.len(), 2, "{kind}: {comps:?}");
        }
    }

    #[test]
    fn sgc_promotes_norm_and_order_choices() {
        let comps = promoted_compositions(ModelKind::Sgc);
        assert!(comps.len() >= 2, "{comps:?}");
        assert!(comps.iter().any(|c| c.contains("precompute")));
        assert!(comps.iter().any(|c| c.contains("dynamic")));
    }
}
