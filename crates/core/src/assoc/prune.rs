//! Input-oblivious pruning of the association forest (paper §IV-C).
//!
//! Two embedding-size scenarios are considered — `K1 > K2` (shrinking) and
//! `K1 < K2` (growing). A candidate is dominated in a scenario if another
//! candidate
//!
//! 1. performs a strict sub-multiset of its primitives at the same sizes
//!    ("a candidate performing SpMM and a GEMM is unprofitable compared to
//!    another candidate performing only SpMM on the same matrix sizes"), or
//! 2. performs the same primitives on no-larger operand shapes.
//!
//! Candidates dominated in **both** scenarios are pruned; the survivors are
//! promoted and annotated with the scenario(s) in which they can win.

use std::cmp::Ordering;

use serde::{Deserialize, Serialize};

use crate::ir::Dim;

use super::{CandidateProgram, Promoted};

/// Embedding-size scenario used by the input-oblivious rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scenario {
    /// `K1 > K2`: the layer shrinks embeddings.
    Shrink,
    /// `K1 < K2`: the layer grows embeddings.
    Grow,
}

impl Scenario {
    /// Both scenarios.
    pub const BOTH: [Scenario; 2] = [Scenario::Shrink, Scenario::Grow];

    /// Compares two symbolic dims under this scenario's `K1`/`K2` order.
    /// Returns `None` when incomparable (e.g. `N` vs `K1` — graph-dependent).
    fn cmp_dim(self, a: Dim, b: Dim) -> Option<Ordering> {
        if a == b {
            return Some(Ordering::Equal);
        }
        let rank = |d: Dim| -> Option<u8> {
            match (self, d) {
                (_, Dim::One) => Some(0),
                (Scenario::Shrink, Dim::K2) | (Scenario::Grow, Dim::K1) => Some(1),
                (Scenario::Shrink, Dim::K1) | (Scenario::Grow, Dim::K2) => Some(2),
                _ => None, // N and Nnz are incomparable with K dims
            }
        };
        Some(rank(a)?.cmp(&rank(b)?))
    }
}

/// Prunes a deduplicated forest, returning the promoted candidates (in input
/// order) and the number pruned.
pub fn prune(candidates: &[CandidateProgram]) -> (Vec<Promoted>, usize) {
    let n = candidates.len();
    let mut survives = vec![[true, true]; n]; // [shrink, grow]
    for (si, s) in Scenario::BOTH.iter().enumerate() {
        for i in 0..n {
            for j in 0..n {
                if i != j && dominates(&candidates[j], &candidates[i], *s, j < i) {
                    survives[i][si] = false;
                    break;
                }
            }
        }
    }
    let mut promoted = Vec::new();
    let mut pruned = 0usize;
    for (i, cand) in candidates.iter().enumerate() {
        let [shrink, grow] = survives[i];
        if shrink || grow {
            promoted.push(Promoted {
                program: cand.clone(),
                shrink,
                grow,
            });
        } else {
            pruned += 1;
        }
    }
    (promoted, pruned)
}

/// Whether `a` dominates `b` under scenario `s` (`b` is then unprofitable).
/// `tie_break` resolves exact cost ties deterministically (the paper: "if
/// multiple association trees result in the same cost, GRANII selects one").
///
/// Unified form of the paper's two rules: `a` dominates `b` if every step of
/// `a` maps (injectively, same primitive kind) onto a step of `b` whose
/// operand sizes are no smaller under the scenario — i.e. `a` does a subset
/// of `b`'s work at no-larger sizes. Strictness comes from `b` having leftover
/// steps or a strictly larger matched size.
fn dominates(a: &CandidateProgram, b: &CandidateProgram, s: Scenario, tie_break: bool) -> bool {
    if a.tokens() == b.tokens() {
        // Identical primitive multisets at identical sizes: keep one.
        return tie_break;
    }
    if a.steps.len() > b.steps.len() {
        return false;
    }
    // Match per kind: sort both sides ascending by scenario size and greedily
    // pair each `a` step with the smallest unused `b` step that covers it.
    let mut any_strict = a.steps.len() < b.steps.len();
    for kind in kinds(a).into_iter() {
        let mut sa: Vec<&super::PrimStep> = a.steps.iter().filter(|p| p.kind == kind).collect();
        let mut sb: Vec<&super::PrimStep> = b.steps.iter().filter(|p| p.kind == kind).collect();
        if sa.len() > sb.len() {
            return false;
        }
        let key = |p: &&super::PrimStep| {
            (
                size_rank(s, p.rows),
                size_rank(s, p.inner),
                size_rank(s, p.cols),
            )
        };
        sa.sort_by_key(key);
        sb.sort_by_key(key);
        let mut used = vec![false; sb.len()];
        for pa in sa {
            let mut matched = false;
            for (j, pb) in sb.iter().enumerate() {
                if used[j] {
                    continue;
                }
                match step_le(pa, pb, s) {
                    Some(strict) => {
                        used[j] = true;
                        any_strict |= strict;
                        matched = true;
                        break;
                    }
                    None => continue,
                }
            }
            if !matched {
                return false;
            }
        }
    }
    any_strict
}

/// Distinct kinds appearing in a program.
fn kinds(p: &CandidateProgram) -> Vec<granii_matrix::PrimitiveKind> {
    let mut v: Vec<_> = p.steps.iter().map(|s| s.kind).collect();
    v.sort();
    v.dedup();
    v
}

/// A coarse sort rank so greedy matching tries small steps first.
fn size_rank(s: Scenario, d: Dim) -> u8 {
    match (s, d) {
        (_, Dim::One) => 0,
        (Scenario::Shrink, Dim::K2) | (Scenario::Grow, Dim::K1) => 1,
        (Scenario::Shrink, Dim::K1) | (Scenario::Grow, Dim::K2) => 2,
        (_, Dim::N) => 3,
        (_, Dim::Nnz) => 4,
    }
}

/// Whether step `a`'s sizes are all ≤ `b`'s under the scenario; returns
/// `Some(strict)` when comparable, `None` otherwise. A hoisted (`once`) step
/// is cheaper than a per-iteration one of the same sizes; a per-iteration
/// step never compares ≤ a hoisted one.
fn step_le(a: &super::PrimStep, b: &super::PrimStep, s: Scenario) -> Option<bool> {
    if !a.once && b.once {
        return None;
    }
    let mut strict = a.once && !b.once;
    for (da, db) in [(a.rows, b.rows), (a.inner, b.inner), (a.cols, b.cols)] {
        match s.cmp_dim(da, db)? {
            Ordering::Less => strict = true,
            Ordering::Equal => {}
            Ordering::Greater => return None,
        }
    }
    Some(strict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assoc::PrimStep;
    use granii_matrix::PrimitiveKind;

    fn step(kind: PrimitiveKind, rows: Dim, inner: Dim, cols: Dim, sig: &str) -> PrimStep {
        PrimStep {
            kind,
            rows,
            inner,
            cols,
            signature: sig.into(),
            once: false,
        }
    }

    fn prog(expr: &str, steps: Vec<PrimStep>) -> CandidateProgram {
        CandidateProgram {
            expr: expr.into(),
            steps,
        }
    }

    #[test]
    fn subset_rule_prunes_superset() {
        let small = prog(
            "a",
            vec![step(
                PrimitiveKind::SpmmWeighted,
                Dim::N,
                Dim::Nnz,
                Dim::K1,
                "s1",
            )],
        );
        let big = prog(
            "b",
            vec![
                step(PrimitiveKind::SpmmWeighted, Dim::N, Dim::Nnz, Dim::K1, "s1"),
                step(PrimitiveKind::Gemm, Dim::N, Dim::K1, Dim::K2, "g"),
            ],
        );
        let (promoted, pruned) = prune(&[small.clone(), big]);
        assert_eq!(pruned, 1);
        assert_eq!(promoted.len(), 1);
        assert_eq!(promoted[0].program.expr, "a");
        assert!(promoted[0].shrink && promoted[0].grow);
    }

    #[test]
    fn size_rule_prunes_only_when_dominated_in_both_scenarios() {
        // Same kinds; a runs at K1, b at K2: each wins one scenario.
        let at_k1 = prog(
            "k1",
            vec![step(
                PrimitiveKind::SpmmUnweighted,
                Dim::N,
                Dim::Nnz,
                Dim::K1,
                "x",
            )],
        );
        let at_k2 = prog(
            "k2",
            vec![step(
                PrimitiveKind::SpmmUnweighted,
                Dim::N,
                Dim::Nnz,
                Dim::K2,
                "y",
            )],
        );
        let (promoted, pruned) = prune(&[at_k1, at_k2]);
        assert_eq!(pruned, 0);
        assert_eq!(promoted.len(), 2);
        // Shrink scenario: K2 < K1 so the K2 tree survives shrink, K1 grows.
        assert!(!promoted[0].shrink && promoted[0].grow);
        assert!(promoted[1].shrink && !promoted[1].grow);
    }

    #[test]
    fn mixed_width_tree_pruned_in_both() {
        // {K1,K2} mixed loses to {K2,K2} under shrink and {K1,K1} under grow.
        let mk = |w1: Dim, w2: Dim, name: &str| {
            prog(
                name,
                vec![
                    step(PrimitiveKind::RowBroadcast, Dim::N, Dim::One, w1, "r1"),
                    step(PrimitiveKind::RowBroadcast, Dim::N, Dim::One, w2, "r2"),
                ],
            )
        };
        let (promoted, pruned) = prune(&[
            mk(Dim::K1, Dim::K1, "all-k1"),
            mk(Dim::K1, Dim::K2, "mixed"),
            mk(Dim::K2, Dim::K2, "all-k2"),
        ]);
        assert_eq!(pruned, 1);
        let names: Vec<_> = promoted.iter().map(|p| p.program.expr.as_str()).collect();
        assert_eq!(names, vec!["all-k1", "all-k2"]);
    }

    #[test]
    fn duplicates_are_removed_deterministically() {
        let a = prog(
            "first",
            vec![step(PrimitiveKind::Gemm, Dim::N, Dim::K1, Dim::K2, "g1")],
        );
        let b = prog(
            "second",
            vec![step(PrimitiveKind::Gemm, Dim::N, Dim::K1, Dim::K2, "g2")],
        );
        let (promoted, pruned) = prune(&[a, b]);
        assert_eq!(pruned, 1);
        assert_eq!(promoted[0].program.expr, "first");
    }

    #[test]
    fn incomparable_dims_block_domination() {
        // N-wide vs K1-wide broadcasts: cannot be compared input-obliviously.
        let a = prog(
            "n",
            vec![step(
                PrimitiveKind::RowBroadcast,
                Dim::N,
                Dim::One,
                Dim::N,
                "x",
            )],
        );
        let b = prog(
            "k",
            vec![step(
                PrimitiveKind::RowBroadcast,
                Dim::N,
                Dim::One,
                Dim::K1,
                "y",
            )],
        );
        let (promoted, pruned) = prune(&[a, b]);
        assert_eq!(pruned, 0);
        assert_eq!(promoted.len(), 2);
    }
}
