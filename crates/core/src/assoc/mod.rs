//! Association trees: concrete primitive assignments for matrix
//! re-associations (paper §IV-C).

mod generate;
mod lower;
mod prune;

pub use generate::enumerate;
pub use lower::lower;
pub use prune::{prune, Scenario};

use granii_matrix::{PrimitiveKind, WorkStats};
use serde::{Deserialize, Serialize};

use crate::ir::Dim;

/// One primitive invocation inside a candidate program.
///
/// `rows`/`inner`/`cols` are the symbolic operation sizes:
/// GEMM `rows × inner · inner × cols`; sparse primitives use `inner = Nnz`
/// (the adjacency work dimension) and `cols` = feature width.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrimStep {
    /// The assigned sparse/dense primitive.
    pub kind: PrimitiveKind,
    /// Symbolic output-row count.
    pub rows: Dim,
    /// Symbolic inner/work dimension.
    pub inner: Dim,
    /// Symbolic output-column count.
    pub cols: Dim,
    /// Canonical expression of the produced value; equal signatures are
    /// computed once (common-subexpression reuse, §IV-C).
    pub signature: String,
    /// Whether the step depends only on the graph structure (adjacency and
    /// degree operands) and is therefore hoisted out of the iteration loop —
    /// GCN's precomputed normalization (Eq. 3) is the canonical case. Its
    /// cost amortizes over the run's iterations.
    pub once: bool,
}

impl PrimStep {
    /// The size token used by the pruner (kind + symbolic sizes + hoisting,
    /// no signature).
    pub fn token(&self) -> (PrimitiveKind, Dim, Dim, Dim, bool) {
        (self.kind, self.rows, self.inner, self.cols, self.once)
    }

    /// Builds the [`WorkStats`] for this step at concrete sizes.
    ///
    /// `irregularity` is the adjacency degree CV (used by sparse primitives).
    pub fn work_stats(
        &self,
        n: usize,
        nnz: usize,
        k1: usize,
        k2: usize,
        irregularity: f64,
    ) -> WorkStats {
        let rows = self.rows.resolve(n, nnz, k1, k2);
        let inner = self.inner.resolve(n, nnz, k1, k2);
        let cols = self.cols.resolve(n, nnz, k1, k2);
        match self.kind {
            PrimitiveKind::Gemm => WorkStats::gemm(rows, inner, cols),
            PrimitiveKind::SpmmWeighted => WorkStats::spmm(rows, inner, cols, true, irregularity),
            PrimitiveKind::SpmmUnweighted => {
                WorkStats::spmm(rows, inner, cols, false, irregularity)
            }
            PrimitiveKind::Sddmm => WorkStats::sddmm(rows, inner, cols, irregularity),
            PrimitiveKind::RowBroadcast => WorkStats::row_broadcast(rows, cols),
            PrimitiveKind::ColBroadcast => WorkStats::col_broadcast(rows, cols),
            PrimitiveKind::Elementwise => WorkStats::elementwise(rows * cols, 1),
            PrimitiveKind::EdgeSoftmax => WorkStats::edge_softmax(rows, inner, irregularity),
            PrimitiveKind::Binning => WorkStats::binning(inner, rows),
        }
    }

    /// Symbolic complexity of the step (`O(...)` string for Fig 3 style
    /// tables).
    pub fn complexity(&self) -> String {
        let mut parts: Vec<&str> = Vec::new();
        for d in [self.rows, self.inner, self.cols] {
            if d != Dim::One {
                parts.push(d.symbol());
            }
        }
        // Sparse primitives' row dimension is covered by the nnz scan.
        if matches!(
            self.kind,
            PrimitiveKind::SpmmWeighted
                | PrimitiveKind::SpmmUnweighted
                | PrimitiveKind::Sddmm
                | PrimitiveKind::EdgeSoftmax
        ) && parts.first() == Some(&"N")
        {
            parts.remove(0);
        }
        format!("O({})", parts.join("·"))
    }
}

/// A complete association tree rendered as an executable primitive program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateProgram {
    /// Canonical parenthesized form (one association of the IR).
    pub expr: String,
    /// Primitive steps in execution order, after common-subexpression reuse.
    pub steps: Vec<PrimStep>,
}

impl CandidateProgram {
    /// Multiset of pruning tokens.
    pub fn tokens(&self) -> Vec<(PrimitiveKind, Dim, Dim, Dim, bool)> {
        let mut t: Vec<_> = self.steps.iter().map(PrimStep::token).collect();
        t.sort();
        t
    }
}

/// A candidate that survived input-oblivious pruning, annotated with the
/// embedding-size scenarios in which it can be optimal (§IV-C "It also
/// annotates the candidates when they were profitable (<, >)").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Promoted {
    /// The surviving program.
    pub program: CandidateProgram,
    /// Can win when `K1 > K2` (shrinking embeddings).
    pub shrink: bool,
    /// Can win when `K1 < K2` (growing embeddings).
    pub grow: bool,
}
