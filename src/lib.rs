//! GRANII: input-aware selection and ordering of sparse/dense matrix
//! primitives in graph neural networks.
//!
//! This is the façade crate of the GRANII reproduction. It re-exports the
//! whole stack:
//!
//! - [`matrix`] — sparse/dense kernels and device performance models,
//! - [`graph`] — graphs, generators, datasets, sampling, featurization,
//! - [`boost`] — gradient-boosted regression trees (the cost-model learner),
//! - [`gnn`] — GNN models, message passing, autodiff, baseline systems,
//! - [`core`] — the GRANII compiler and runtime itself,
//! - [`serve`] — the concurrent serving runtime (plan cache, bounded queue),
//! - [`telemetry`] — structured tracing, counters, and latency histograms.
//!
//! # Quickstart
//!
//! ```
//! use granii::core::{Granii, GraniiOptions};
//! use granii::gnn::spec::ModelKind;
//! use granii::graph::generators;
//! use granii::matrix::device::DeviceKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small power-law graph and a GCN layer 64 -> 32.
//! let graph = generators::power_law(500, 8, 42)?;
//! let granii = Granii::train_for_device(DeviceKind::H100, GraniiOptions::fast())?;
//! let decision = granii.select(ModelKind::Gcn, &graph, 64, 32)?;
//! println!("selected composition: {}", decision.composition_name());
//! # Ok(())
//! # }
//! ```

pub use granii_boost as boost;
pub use granii_core as core;
pub use granii_gnn as gnn;
pub use granii_graph as graph;
pub use granii_matrix as matrix;
pub use granii_serve as serve;
pub use granii_telemetry as telemetry;
