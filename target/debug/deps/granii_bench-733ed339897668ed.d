/root/repo/target/debug/deps/granii_bench-733ed339897668ed.d: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/policies.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libgranii_bench-733ed339897668ed.rlib: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/policies.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libgranii_bench-733ed339897668ed.rmeta: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/policies.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/grid.rs:
crates/bench/src/policies.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
