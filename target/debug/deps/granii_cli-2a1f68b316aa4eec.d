/root/repo/target/debug/deps/granii_cli-2a1f68b316aa4eec.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgranii_cli-2a1f68b316aa4eec.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
