/root/repo/target/debug/deps/observability-67f2ac7e6f1bfaba.d: tests/observability.rs

/root/repo/target/debug/deps/observability-67f2ac7e6f1bfaba: tests/observability.rs

tests/observability.rs:
