/root/repo/target/debug/deps/telemetry-8f676127b3569bec.d: crates/telemetry/tests/telemetry.rs

/root/repo/target/debug/deps/telemetry-8f676127b3569bec: crates/telemetry/tests/telemetry.rs

crates/telemetry/tests/telemetry.rs:
