/root/repo/target/debug/deps/proptests-8bca36226ef0e7f0.d: crates/boost/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-8bca36226ef0e7f0.rmeta: crates/boost/tests/proptests.rs Cargo.toml

crates/boost/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
