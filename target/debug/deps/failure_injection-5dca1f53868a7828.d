/root/repo/target/debug/deps/failure_injection-5dca1f53868a7828.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-5dca1f53868a7828: tests/failure_injection.rs

tests/failure_injection.rs:
