/root/repo/target/debug/deps/proptests-ec4971f2de4f7175.d: crates/graph/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ec4971f2de4f7175: crates/graph/tests/proptests.rs

crates/graph/tests/proptests.rs:
