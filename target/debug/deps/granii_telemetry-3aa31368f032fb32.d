/root/repo/target/debug/deps/granii_telemetry-3aa31368f032fb32.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libgranii_telemetry-3aa31368f032fb32.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
