/root/repo/target/debug/deps/table6_oracles-6616bc1b7ea9b185.d: crates/bench/benches/table6_oracles.rs Cargo.toml

/root/repo/target/debug/deps/libtable6_oracles-6616bc1b7ea9b185.rmeta: crates/bench/benches/table6_oracles.rs Cargo.toml

crates/bench/benches/table6_oracles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
