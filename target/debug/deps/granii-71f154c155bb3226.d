/root/repo/target/debug/deps/granii-71f154c155bb3226.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/granii-71f154c155bb3226: crates/cli/src/main.rs

crates/cli/src/main.rs:
