/root/repo/target/debug/deps/granii_boost-f911a56518366404.d: crates/boost/src/lib.rs crates/boost/src/data.rs crates/boost/src/error.rs crates/boost/src/gbt.rs crates/boost/src/metrics.rs crates/boost/src/tree.rs

/root/repo/target/debug/deps/libgranii_boost-f911a56518366404.rmeta: crates/boost/src/lib.rs crates/boost/src/data.rs crates/boost/src/error.rs crates/boost/src/gbt.rs crates/boost/src/metrics.rs crates/boost/src/tree.rs

crates/boost/src/lib.rs:
crates/boost/src/data.rs:
crates/boost/src/error.rs:
crates/boost/src/gbt.rs:
crates/boost/src/metrics.rs:
crates/boost/src/tree.rs:
