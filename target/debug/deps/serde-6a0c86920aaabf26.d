/root/repo/target/debug/deps/serde-6a0c86920aaabf26.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-6a0c86920aaabf26.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-6a0c86920aaabf26.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
