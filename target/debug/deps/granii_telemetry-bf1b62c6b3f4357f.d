/root/repo/target/debug/deps/granii_telemetry-bf1b62c6b3f4357f.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libgranii_telemetry-bf1b62c6b3f4357f.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
