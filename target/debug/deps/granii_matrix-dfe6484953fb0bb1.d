/root/repo/target/debug/deps/granii_matrix-dfe6484953fb0bb1.d: crates/matrix/src/lib.rs crates/matrix/src/coo.rs crates/matrix/src/csr.rs crates/matrix/src/dense.rs crates/matrix/src/device.rs crates/matrix/src/diag.rs crates/matrix/src/error.rs crates/matrix/src/ops/mod.rs crates/matrix/src/ops/broadcast.rs crates/matrix/src/ops/edge.rs crates/matrix/src/ops/gemm.rs crates/matrix/src/ops/sddmm.rs crates/matrix/src/ops/spmm.rs crates/matrix/src/parallel.rs crates/matrix/src/semiring.rs crates/matrix/src/stats.rs

/root/repo/target/debug/deps/libgranii_matrix-dfe6484953fb0bb1.rmeta: crates/matrix/src/lib.rs crates/matrix/src/coo.rs crates/matrix/src/csr.rs crates/matrix/src/dense.rs crates/matrix/src/device.rs crates/matrix/src/diag.rs crates/matrix/src/error.rs crates/matrix/src/ops/mod.rs crates/matrix/src/ops/broadcast.rs crates/matrix/src/ops/edge.rs crates/matrix/src/ops/gemm.rs crates/matrix/src/ops/sddmm.rs crates/matrix/src/ops/spmm.rs crates/matrix/src/parallel.rs crates/matrix/src/semiring.rs crates/matrix/src/stats.rs

crates/matrix/src/lib.rs:
crates/matrix/src/coo.rs:
crates/matrix/src/csr.rs:
crates/matrix/src/dense.rs:
crates/matrix/src/device.rs:
crates/matrix/src/diag.rs:
crates/matrix/src/error.rs:
crates/matrix/src/ops/mod.rs:
crates/matrix/src/ops/broadcast.rs:
crates/matrix/src/ops/edge.rs:
crates/matrix/src/ops/gemm.rs:
crates/matrix/src/ops/sddmm.rs:
crates/matrix/src/ops/spmm.rs:
crates/matrix/src/parallel.rs:
crates/matrix/src/semiring.rs:
crates/matrix/src/stats.rs:
