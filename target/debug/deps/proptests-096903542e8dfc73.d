/root/repo/target/debug/deps/proptests-096903542e8dfc73.d: crates/gnn/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-096903542e8dfc73.rmeta: crates/gnn/tests/proptests.rs Cargo.toml

crates/gnn/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
