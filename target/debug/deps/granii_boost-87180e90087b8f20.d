/root/repo/target/debug/deps/granii_boost-87180e90087b8f20.d: crates/boost/src/lib.rs crates/boost/src/data.rs crates/boost/src/error.rs crates/boost/src/gbt.rs crates/boost/src/metrics.rs crates/boost/src/tree.rs

/root/repo/target/debug/deps/granii_boost-87180e90087b8f20: crates/boost/src/lib.rs crates/boost/src/data.rs crates/boost/src/error.rs crates/boost/src/gbt.rs crates/boost/src/metrics.rs crates/boost/src/tree.rs

crates/boost/src/lib.rs:
crates/boost/src/data.rs:
crates/boost/src/error.rs:
crates/boost/src/gbt.rs:
crates/boost/src/metrics.rs:
crates/boost/src/tree.rs:
