/root/repo/target/debug/deps/granii-cc03a4d7ff8a3f9c.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/libgranii-cc03a4d7ff8a3f9c.rmeta: crates/cli/src/main.rs

crates/cli/src/main.rs:
