/root/repo/target/debug/deps/proptests-91ab432be482fe89.d: crates/matrix/tests/proptests.rs

/root/repo/target/debug/deps/proptests-91ab432be482fe89: crates/matrix/tests/proptests.rs

crates/matrix/tests/proptests.rs:
