/root/repo/target/debug/deps/repro-c77eec3ad279f598.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-c77eec3ad279f598.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
