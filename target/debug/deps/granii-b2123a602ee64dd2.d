/root/repo/target/debug/deps/granii-b2123a602ee64dd2.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libgranii-b2123a602ee64dd2.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
