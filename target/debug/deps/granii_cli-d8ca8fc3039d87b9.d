/root/repo/target/debug/deps/granii_cli-d8ca8fc3039d87b9.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libgranii_cli-d8ca8fc3039d87b9.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
