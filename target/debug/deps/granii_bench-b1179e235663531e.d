/root/repo/target/debug/deps/granii_bench-b1179e235663531e.d: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/policies.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/granii_bench-b1179e235663531e: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/policies.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/grid.rs:
crates/bench/src/policies.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
