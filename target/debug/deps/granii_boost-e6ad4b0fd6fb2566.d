/root/repo/target/debug/deps/granii_boost-e6ad4b0fd6fb2566.d: crates/boost/src/lib.rs crates/boost/src/data.rs crates/boost/src/error.rs crates/boost/src/gbt.rs crates/boost/src/metrics.rs crates/boost/src/tree.rs

/root/repo/target/debug/deps/libgranii_boost-e6ad4b0fd6fb2566.rlib: crates/boost/src/lib.rs crates/boost/src/data.rs crates/boost/src/error.rs crates/boost/src/gbt.rs crates/boost/src/metrics.rs crates/boost/src/tree.rs

/root/repo/target/debug/deps/libgranii_boost-e6ad4b0fd6fb2566.rmeta: crates/boost/src/lib.rs crates/boost/src/data.rs crates/boost/src/error.rs crates/boost/src/gbt.rs crates/boost/src/metrics.rs crates/boost/src/tree.rs

crates/boost/src/lib.rs:
crates/boost/src/data.rs:
crates/boost/src/error.rs:
crates/boost/src/gbt.rs:
crates/boost/src/metrics.rs:
crates/boost/src/tree.rs:
