/root/repo/target/debug/deps/granii_bench-77dd11ee045cbe21.d: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/policies.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libgranii_bench-77dd11ee045cbe21.rmeta: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/policies.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/grid.rs:
crates/bench/src/policies.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
