/root/repo/target/debug/deps/granii_telemetry-b71291e83acb6c33.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/granii_telemetry-b71291e83acb6c33: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/span.rs:
