/root/repo/target/debug/deps/proptests-6344dfeb27d7b253.d: crates/boost/tests/proptests.rs

/root/repo/target/debug/deps/proptests-6344dfeb27d7b253: crates/boost/tests/proptests.rs

crates/boost/tests/proptests.rs:
