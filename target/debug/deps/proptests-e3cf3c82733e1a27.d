/root/repo/target/debug/deps/proptests-e3cf3c82733e1a27.d: crates/matrix/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-e3cf3c82733e1a27.rmeta: crates/matrix/tests/proptests.rs Cargo.toml

crates/matrix/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
