/root/repo/target/debug/deps/granii-48547cb333cca019.d: src/lib.rs

/root/repo/target/debug/deps/libgranii-48547cb333cca019.rmeta: src/lib.rs

src/lib.rs:
