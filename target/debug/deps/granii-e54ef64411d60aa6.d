/root/repo/target/debug/deps/granii-e54ef64411d60aa6.d: src/lib.rs

/root/repo/target/debug/deps/libgranii-e54ef64411d60aa6.rlib: src/lib.rs

/root/repo/target/debug/deps/libgranii-e54ef64411d60aa6.rmeta: src/lib.rs

src/lib.rs:
