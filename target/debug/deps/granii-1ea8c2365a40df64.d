/root/repo/target/debug/deps/granii-1ea8c2365a40df64.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/granii-1ea8c2365a40df64: crates/cli/src/main.rs

crates/cli/src/main.rs:
