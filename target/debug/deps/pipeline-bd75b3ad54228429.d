/root/repo/target/debug/deps/pipeline-bd75b3ad54228429.d: tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-bd75b3ad54228429.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
