/root/repo/target/debug/deps/reproduction-a099e474c9ec4f02.d: tests/reproduction.rs Cargo.toml

/root/repo/target/debug/deps/libreproduction-a099e474c9ec4f02.rmeta: tests/reproduction.rs Cargo.toml

tests/reproduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
