/root/repo/target/debug/deps/granii_graph-9fef2ae5b272a8f2.d: crates/graph/src/lib.rs crates/graph/src/datasets.rs crates/graph/src/error.rs crates/graph/src/features.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/sampling.rs

/root/repo/target/debug/deps/libgranii_graph-9fef2ae5b272a8f2.rmeta: crates/graph/src/lib.rs crates/graph/src/datasets.rs crates/graph/src/error.rs crates/graph/src/features.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/sampling.rs

crates/graph/src/lib.rs:
crates/graph/src/datasets.rs:
crates/graph/src/error.rs:
crates/graph/src/features.rs:
crates/graph/src/generators.rs:
crates/graph/src/graph.rs:
crates/graph/src/io.rs:
crates/graph/src/sampling.rs:
