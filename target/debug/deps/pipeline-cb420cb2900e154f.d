/root/repo/target/debug/deps/pipeline-cb420cb2900e154f.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-cb420cb2900e154f: tests/pipeline.rs

tests/pipeline.rs:
