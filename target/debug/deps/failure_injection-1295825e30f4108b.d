/root/repo/target/debug/deps/failure_injection-1295825e30f4108b.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-1295825e30f4108b: tests/failure_injection.rs

tests/failure_injection.rs:
