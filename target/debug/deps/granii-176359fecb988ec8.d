/root/repo/target/debug/deps/granii-176359fecb988ec8.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgranii-176359fecb988ec8.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
