/root/repo/target/debug/deps/proptests-49ddeb74b9b9e282.d: crates/gnn/tests/proptests.rs

/root/repo/target/debug/deps/proptests-49ddeb74b9b9e282: crates/gnn/tests/proptests.rs

crates/gnn/tests/proptests.rs:
