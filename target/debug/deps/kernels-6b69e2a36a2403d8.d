/root/repo/target/debug/deps/kernels-6b69e2a36a2403d8.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-6b69e2a36a2403d8.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
