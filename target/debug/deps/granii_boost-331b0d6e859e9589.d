/root/repo/target/debug/deps/granii_boost-331b0d6e859e9589.d: crates/boost/src/lib.rs crates/boost/src/data.rs crates/boost/src/error.rs crates/boost/src/gbt.rs crates/boost/src/metrics.rs crates/boost/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libgranii_boost-331b0d6e859e9589.rmeta: crates/boost/src/lib.rs crates/boost/src/data.rs crates/boost/src/error.rs crates/boost/src/gbt.rs crates/boost/src/metrics.rs crates/boost/src/tree.rs Cargo.toml

crates/boost/src/lib.rs:
crates/boost/src/data.rs:
crates/boost/src/error.rs:
crates/boost/src/gbt.rs:
crates/boost/src/metrics.rs:
crates/boost/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
