/root/repo/target/debug/deps/granii-b7fdee516ba6d353.d: src/lib.rs

/root/repo/target/debug/deps/granii-b7fdee516ba6d353: src/lib.rs

src/lib.rs:
