/root/repo/target/debug/deps/granii_gnn-1c7b9e6d0eb3fa12.d: crates/gnn/src/lib.rs crates/gnn/src/autodiff.rs crates/gnn/src/ctx.rs crates/gnn/src/error.rs crates/gnn/src/exec.rs crates/gnn/src/models/mod.rs crates/gnn/src/models/gat.rs crates/gnn/src/models/gcn.rs crates/gnn/src/models/gin.rs crates/gnn/src/models/model.rs crates/gnn/src/models/sage.rs crates/gnn/src/models/sgc.rs crates/gnn/src/models/tagcn.rs crates/gnn/src/spec.rs crates/gnn/src/system.rs crates/gnn/src/train.rs

/root/repo/target/debug/deps/libgranii_gnn-1c7b9e6d0eb3fa12.rmeta: crates/gnn/src/lib.rs crates/gnn/src/autodiff.rs crates/gnn/src/ctx.rs crates/gnn/src/error.rs crates/gnn/src/exec.rs crates/gnn/src/models/mod.rs crates/gnn/src/models/gat.rs crates/gnn/src/models/gcn.rs crates/gnn/src/models/gin.rs crates/gnn/src/models/model.rs crates/gnn/src/models/sage.rs crates/gnn/src/models/sgc.rs crates/gnn/src/models/tagcn.rs crates/gnn/src/spec.rs crates/gnn/src/system.rs crates/gnn/src/train.rs

crates/gnn/src/lib.rs:
crates/gnn/src/autodiff.rs:
crates/gnn/src/ctx.rs:
crates/gnn/src/error.rs:
crates/gnn/src/exec.rs:
crates/gnn/src/models/mod.rs:
crates/gnn/src/models/gat.rs:
crates/gnn/src/models/gcn.rs:
crates/gnn/src/models/gin.rs:
crates/gnn/src/models/model.rs:
crates/gnn/src/models/sage.rs:
crates/gnn/src/models/sgc.rs:
crates/gnn/src/models/tagcn.rs:
crates/gnn/src/spec.rs:
crates/gnn/src/system.rs:
crates/gnn/src/train.rs:
