/root/repo/target/debug/deps/interp_proptests-e341e222a1374d9a.d: crates/core/tests/interp_proptests.rs

/root/repo/target/debug/deps/interp_proptests-e341e222a1374d9a: crates/core/tests/interp_proptests.rs

crates/core/tests/interp_proptests.rs:
