/root/repo/target/debug/deps/granii_bench-4a1dbc52247ad51b.d: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/policies.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libgranii_bench-4a1dbc52247ad51b.rlib: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/policies.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libgranii_bench-4a1dbc52247ad51b.rmeta: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/policies.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/grid.rs:
crates/bench/src/policies.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
