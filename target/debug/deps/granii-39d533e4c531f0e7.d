/root/repo/target/debug/deps/granii-39d533e4c531f0e7.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libgranii-39d533e4c531f0e7.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
