/root/repo/target/debug/deps/repro-70496fdb93df3559.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-70496fdb93df3559.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
