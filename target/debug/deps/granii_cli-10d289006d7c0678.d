/root/repo/target/debug/deps/granii_cli-10d289006d7c0678.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgranii_cli-10d289006d7c0678.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
