/root/repo/target/debug/deps/repro-2dfc8d117b7aad2a.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-2dfc8d117b7aad2a: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
