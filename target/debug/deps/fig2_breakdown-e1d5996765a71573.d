/root/repo/target/debug/deps/fig2_breakdown-e1d5996765a71573.d: crates/bench/benches/fig2_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_breakdown-e1d5996765a71573.rmeta: crates/bench/benches/fig2_breakdown.rs Cargo.toml

crates/bench/benches/fig2_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
