/root/repo/target/debug/deps/granii_core-63b21c0293e5ced3.d: crates/core/src/lib.rs crates/core/src/assoc/mod.rs crates/core/src/assoc/generate.rs crates/core/src/assoc/lower.rs crates/core/src/assoc/prune.rs crates/core/src/complexity.rs crates/core/src/cost/mod.rs crates/core/src/cost/featurizer.rs crates/core/src/cost/models.rs crates/core/src/cost/training.rs crates/core/src/error.rs crates/core/src/granii.rs crates/core/src/interp.rs crates/core/src/ir/mod.rs crates/core/src/ir/builder.rs crates/core/src/ir/rewrite.rs crates/core/src/plan.rs crates/core/src/runtime.rs

/root/repo/target/debug/deps/libgranii_core-63b21c0293e5ced3.rmeta: crates/core/src/lib.rs crates/core/src/assoc/mod.rs crates/core/src/assoc/generate.rs crates/core/src/assoc/lower.rs crates/core/src/assoc/prune.rs crates/core/src/complexity.rs crates/core/src/cost/mod.rs crates/core/src/cost/featurizer.rs crates/core/src/cost/models.rs crates/core/src/cost/training.rs crates/core/src/error.rs crates/core/src/granii.rs crates/core/src/interp.rs crates/core/src/ir/mod.rs crates/core/src/ir/builder.rs crates/core/src/ir/rewrite.rs crates/core/src/plan.rs crates/core/src/runtime.rs

crates/core/src/lib.rs:
crates/core/src/assoc/mod.rs:
crates/core/src/assoc/generate.rs:
crates/core/src/assoc/lower.rs:
crates/core/src/assoc/prune.rs:
crates/core/src/complexity.rs:
crates/core/src/cost/mod.rs:
crates/core/src/cost/featurizer.rs:
crates/core/src/cost/models.rs:
crates/core/src/cost/training.rs:
crates/core/src/error.rs:
crates/core/src/granii.rs:
crates/core/src/interp.rs:
crates/core/src/ir/mod.rs:
crates/core/src/ir/builder.rs:
crates/core/src/ir/rewrite.rs:
crates/core/src/plan.rs:
crates/core/src/runtime.rs:
