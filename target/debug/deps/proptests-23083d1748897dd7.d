/root/repo/target/debug/deps/proptests-23083d1748897dd7.d: crates/graph/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-23083d1748897dd7.rmeta: crates/graph/tests/proptests.rs Cargo.toml

crates/graph/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
