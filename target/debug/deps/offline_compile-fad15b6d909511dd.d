/root/repo/target/debug/deps/offline_compile-fad15b6d909511dd.d: crates/bench/benches/offline_compile.rs Cargo.toml

/root/repo/target/debug/deps/liboffline_compile-fad15b6d909511dd.rmeta: crates/bench/benches/offline_compile.rs Cargo.toml

crates/bench/benches/offline_compile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
