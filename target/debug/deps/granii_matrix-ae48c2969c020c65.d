/root/repo/target/debug/deps/granii_matrix-ae48c2969c020c65.d: crates/matrix/src/lib.rs crates/matrix/src/coo.rs crates/matrix/src/csr.rs crates/matrix/src/dense.rs crates/matrix/src/device.rs crates/matrix/src/diag.rs crates/matrix/src/error.rs crates/matrix/src/ops/mod.rs crates/matrix/src/ops/broadcast.rs crates/matrix/src/ops/edge.rs crates/matrix/src/ops/gemm.rs crates/matrix/src/ops/sddmm.rs crates/matrix/src/ops/spmm.rs crates/matrix/src/parallel.rs crates/matrix/src/semiring.rs crates/matrix/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libgranii_matrix-ae48c2969c020c65.rmeta: crates/matrix/src/lib.rs crates/matrix/src/coo.rs crates/matrix/src/csr.rs crates/matrix/src/dense.rs crates/matrix/src/device.rs crates/matrix/src/diag.rs crates/matrix/src/error.rs crates/matrix/src/ops/mod.rs crates/matrix/src/ops/broadcast.rs crates/matrix/src/ops/edge.rs crates/matrix/src/ops/gemm.rs crates/matrix/src/ops/sddmm.rs crates/matrix/src/ops/spmm.rs crates/matrix/src/parallel.rs crates/matrix/src/semiring.rs crates/matrix/src/stats.rs Cargo.toml

crates/matrix/src/lib.rs:
crates/matrix/src/coo.rs:
crates/matrix/src/csr.rs:
crates/matrix/src/dense.rs:
crates/matrix/src/device.rs:
crates/matrix/src/diag.rs:
crates/matrix/src/error.rs:
crates/matrix/src/ops/mod.rs:
crates/matrix/src/ops/broadcast.rs:
crates/matrix/src/ops/edge.rs:
crates/matrix/src/ops/gemm.rs:
crates/matrix/src/ops/sddmm.rs:
crates/matrix/src/ops/spmm.rs:
crates/matrix/src/parallel.rs:
crates/matrix/src/semiring.rs:
crates/matrix/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
