/root/repo/target/debug/deps/telemetry-94e90812b7ed5a78.d: crates/telemetry/tests/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry-94e90812b7ed5a78.rmeta: crates/telemetry/tests/telemetry.rs Cargo.toml

crates/telemetry/tests/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
