/root/repo/target/debug/deps/granii_telemetry-5fd803aaa946b1c1.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libgranii_telemetry-5fd803aaa946b1c1.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/span.rs:
