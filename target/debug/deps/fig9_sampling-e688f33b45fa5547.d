/root/repo/target/debug/deps/fig9_sampling-e688f33b45fa5547.d: crates/bench/benches/fig9_sampling.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_sampling-e688f33b45fa5547.rmeta: crates/bench/benches/fig9_sampling.rs Cargo.toml

crates/bench/benches/fig9_sampling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
