/root/repo/target/debug/deps/proptests-047eb6446d7a9b79.d: crates/boost/tests/proptests.rs

/root/repo/target/debug/deps/proptests-047eb6446d7a9b79: crates/boost/tests/proptests.rs

crates/boost/tests/proptests.rs:
