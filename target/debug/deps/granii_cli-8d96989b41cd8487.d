/root/repo/target/debug/deps/granii_cli-8d96989b41cd8487.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libgranii_cli-8d96989b41cd8487.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libgranii_cli-8d96989b41cd8487.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
