/root/repo/target/debug/deps/repro-b655ac7905387303.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-b655ac7905387303: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
