/root/repo/target/debug/deps/granii_boost-caf7e2c37b405255.d: crates/boost/src/lib.rs crates/boost/src/data.rs crates/boost/src/error.rs crates/boost/src/gbt.rs crates/boost/src/metrics.rs crates/boost/src/tree.rs

/root/repo/target/debug/deps/granii_boost-caf7e2c37b405255: crates/boost/src/lib.rs crates/boost/src/data.rs crates/boost/src/error.rs crates/boost/src/gbt.rs crates/boost/src/metrics.rs crates/boost/src/tree.rs

crates/boost/src/lib.rs:
crates/boost/src/data.rs:
crates/boost/src/error.rs:
crates/boost/src/gbt.rs:
crates/boost/src/metrics.rs:
crates/boost/src/tree.rs:
