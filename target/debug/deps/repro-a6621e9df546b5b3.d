/root/repo/target/debug/deps/repro-a6621e9df546b5b3.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-a6621e9df546b5b3.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
