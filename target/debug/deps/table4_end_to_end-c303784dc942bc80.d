/root/repo/target/debug/deps/table4_end_to_end-c303784dc942bc80.d: crates/bench/benches/table4_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_end_to_end-c303784dc942bc80.rmeta: crates/bench/benches/table4_end_to_end.rs Cargo.toml

crates/bench/benches/table4_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
