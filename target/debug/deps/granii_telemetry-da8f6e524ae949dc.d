/root/repo/target/debug/deps/granii_telemetry-da8f6e524ae949dc.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libgranii_telemetry-da8f6e524ae949dc.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libgranii_telemetry-da8f6e524ae949dc.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/span.rs:
