/root/repo/target/debug/deps/serde_json-5dca135d72833133.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-5dca135d72833133.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
