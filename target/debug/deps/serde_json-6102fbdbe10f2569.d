/root/repo/target/debug/deps/serde_json-6102fbdbe10f2569.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-6102fbdbe10f2569.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-6102fbdbe10f2569.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
