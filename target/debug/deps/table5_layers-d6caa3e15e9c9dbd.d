/root/repo/target/debug/deps/table5_layers-d6caa3e15e9c9dbd.d: crates/bench/benches/table5_layers.rs Cargo.toml

/root/repo/target/debug/deps/libtable5_layers-d6caa3e15e9c9dbd.rmeta: crates/bench/benches/table5_layers.rs Cargo.toml

crates/bench/benches/table5_layers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
