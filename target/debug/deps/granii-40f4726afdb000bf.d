/root/repo/target/debug/deps/granii-40f4726afdb000bf.d: src/lib.rs

/root/repo/target/debug/deps/granii-40f4726afdb000bf: src/lib.rs

src/lib.rs:
