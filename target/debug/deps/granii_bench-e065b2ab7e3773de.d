/root/repo/target/debug/deps/granii_bench-e065b2ab7e3773de.d: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/policies.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/granii_bench-e065b2ab7e3773de: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/policies.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/grid.rs:
crates/bench/src/policies.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
