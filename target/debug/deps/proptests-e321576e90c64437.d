/root/repo/target/debug/deps/proptests-e321576e90c64437.d: crates/matrix/tests/proptests.rs

/root/repo/target/debug/deps/proptests-e321576e90c64437: crates/matrix/tests/proptests.rs

crates/matrix/tests/proptests.rs:
