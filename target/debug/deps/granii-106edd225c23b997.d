/root/repo/target/debug/deps/granii-106edd225c23b997.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/granii-106edd225c23b997: crates/cli/src/main.rs

crates/cli/src/main.rs:
