/root/repo/target/debug/deps/proptests-ace2d194903d1664.d: crates/gnn/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ace2d194903d1664: crates/gnn/tests/proptests.rs

crates/gnn/tests/proptests.rs:
