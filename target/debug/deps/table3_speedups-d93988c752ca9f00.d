/root/repo/target/debug/deps/table3_speedups-d93988c752ca9f00.d: crates/bench/benches/table3_speedups.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_speedups-d93988c752ca9f00.rmeta: crates/bench/benches/table3_speedups.rs Cargo.toml

crates/bench/benches/table3_speedups.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
