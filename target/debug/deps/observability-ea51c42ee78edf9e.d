/root/repo/target/debug/deps/observability-ea51c42ee78edf9e.d: tests/observability.rs Cargo.toml

/root/repo/target/debug/deps/libobservability-ea51c42ee78edf9e.rmeta: tests/observability.rs Cargo.toml

tests/observability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
