/root/repo/target/debug/deps/granii_cli-4549244b846b8212.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libgranii_cli-4549244b846b8212.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libgranii_cli-4549244b846b8212.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
