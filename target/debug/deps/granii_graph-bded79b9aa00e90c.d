/root/repo/target/debug/deps/granii_graph-bded79b9aa00e90c.d: crates/graph/src/lib.rs crates/graph/src/datasets.rs crates/graph/src/error.rs crates/graph/src/features.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/sampling.rs Cargo.toml

/root/repo/target/debug/deps/libgranii_graph-bded79b9aa00e90c.rmeta: crates/graph/src/lib.rs crates/graph/src/datasets.rs crates/graph/src/error.rs crates/graph/src/features.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/sampling.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/datasets.rs:
crates/graph/src/error.rs:
crates/graph/src/features.rs:
crates/graph/src/generators.rs:
crates/graph/src/graph.rs:
crates/graph/src/io.rs:
crates/graph/src/sampling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
