/root/repo/target/debug/deps/granii_bench-78ec66668052ac9a.d: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/policies.rs crates/bench/src/report.rs crates/bench/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libgranii_bench-78ec66668052ac9a.rmeta: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/policies.rs crates/bench/src/report.rs crates/bench/src/runner.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/grid.rs:
crates/bench/src/policies.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
