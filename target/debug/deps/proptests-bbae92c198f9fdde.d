/root/repo/target/debug/deps/proptests-bbae92c198f9fdde.d: crates/core/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-bbae92c198f9fdde.rmeta: crates/core/tests/proptests.rs Cargo.toml

crates/core/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
