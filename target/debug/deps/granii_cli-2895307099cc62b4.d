/root/repo/target/debug/deps/granii_cli-2895307099cc62b4.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libgranii_cli-2895307099cc62b4.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libgranii_cli-2895307099cc62b4.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
