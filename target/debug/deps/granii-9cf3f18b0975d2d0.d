/root/repo/target/debug/deps/granii-9cf3f18b0975d2d0.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/granii-9cf3f18b0975d2d0: crates/cli/src/main.rs

crates/cli/src/main.rs:
