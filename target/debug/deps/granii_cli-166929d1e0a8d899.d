/root/repo/target/debug/deps/granii_cli-166929d1e0a8d899.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/granii_cli-166929d1e0a8d899: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
