/root/repo/target/debug/deps/pipeline-f57ada78d2fd0b7d.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-f57ada78d2fd0b7d: tests/pipeline.rs

tests/pipeline.rs:
