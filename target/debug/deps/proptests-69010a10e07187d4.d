/root/repo/target/debug/deps/proptests-69010a10e07187d4.d: crates/graph/tests/proptests.rs

/root/repo/target/debug/deps/proptests-69010a10e07187d4: crates/graph/tests/proptests.rs

crates/graph/tests/proptests.rs:
