/root/repo/target/debug/deps/proptests-bd8ad0c6bd60405c.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-bd8ad0c6bd60405c: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
