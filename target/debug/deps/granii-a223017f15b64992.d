/root/repo/target/debug/deps/granii-a223017f15b64992.d: src/lib.rs

/root/repo/target/debug/deps/libgranii-a223017f15b64992.rlib: src/lib.rs

/root/repo/target/debug/deps/libgranii-a223017f15b64992.rmeta: src/lib.rs

src/lib.rs:
