/root/repo/target/debug/deps/interp_proptests-477f68c388547ded.d: crates/core/tests/interp_proptests.rs Cargo.toml

/root/repo/target/debug/deps/libinterp_proptests-477f68c388547ded.rmeta: crates/core/tests/interp_proptests.rs Cargo.toml

crates/core/tests/interp_proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
