/root/repo/target/debug/deps/granii-7984558ff1c2d61b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgranii-7984558ff1c2d61b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
