/root/repo/target/debug/deps/granii-8bc88d2832d9e09c.d: src/lib.rs

/root/repo/target/debug/deps/libgranii-8bc88d2832d9e09c.rlib: src/lib.rs

/root/repo/target/debug/deps/libgranii-8bc88d2832d9e09c.rmeta: src/lib.rs

src/lib.rs:
