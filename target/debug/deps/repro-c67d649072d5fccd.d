/root/repo/target/debug/deps/repro-c67d649072d5fccd.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-c67d649072d5fccd: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
