/root/repo/target/debug/deps/fig1_policies-22e226e9ea7b3877.d: crates/bench/benches/fig1_policies.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_policies-22e226e9ea7b3877.rmeta: crates/bench/benches/fig1_policies.rs Cargo.toml

crates/bench/benches/fig1_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
