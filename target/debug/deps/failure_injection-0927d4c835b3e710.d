/root/repo/target/debug/deps/failure_injection-0927d4c835b3e710.d: tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-0927d4c835b3e710.rmeta: tests/failure_injection.rs Cargo.toml

tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
