/root/repo/target/debug/deps/reproduction-f1e382464bde2d31.d: tests/reproduction.rs

/root/repo/target/debug/deps/reproduction-f1e382464bde2d31: tests/reproduction.rs

tests/reproduction.rs:
