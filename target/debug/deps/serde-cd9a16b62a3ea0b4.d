/root/repo/target/debug/deps/serde-cd9a16b62a3ea0b4.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-cd9a16b62a3ea0b4.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
