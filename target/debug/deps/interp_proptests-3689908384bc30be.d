/root/repo/target/debug/deps/interp_proptests-3689908384bc30be.d: crates/core/tests/interp_proptests.rs

/root/repo/target/debug/deps/interp_proptests-3689908384bc30be: crates/core/tests/interp_proptests.rs

crates/core/tests/interp_proptests.rs:
