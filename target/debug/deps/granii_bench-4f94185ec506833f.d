/root/repo/target/debug/deps/granii_bench-4f94185ec506833f.d: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/policies.rs crates/bench/src/report.rs crates/bench/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libgranii_bench-4f94185ec506833f.rmeta: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/policies.rs crates/bench/src/report.rs crates/bench/src/runner.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/grid.rs:
crates/bench/src/policies.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
