/root/repo/target/debug/deps/granii_bench-7c551cd7c34d20ab.d: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/policies.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libgranii_bench-7c551cd7c34d20ab.rlib: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/policies.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libgranii_bench-7c551cd7c34d20ab.rmeta: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/policies.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/grid.rs:
crates/bench/src/policies.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
