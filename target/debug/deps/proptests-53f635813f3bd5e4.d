/root/repo/target/debug/deps/proptests-53f635813f3bd5e4.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-53f635813f3bd5e4: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
