/root/repo/target/debug/deps/reproduction-62262038853654ab.d: tests/reproduction.rs

/root/repo/target/debug/deps/reproduction-62262038853654ab: tests/reproduction.rs

tests/reproduction.rs:
