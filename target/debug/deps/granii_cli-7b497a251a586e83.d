/root/repo/target/debug/deps/granii_cli-7b497a251a586e83.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/granii_cli-7b497a251a586e83: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
