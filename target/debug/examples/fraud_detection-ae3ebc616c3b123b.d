/root/repo/target/debug/examples/fraud_detection-ae3ebc616c3b123b.d: examples/fraud_detection.rs

/root/repo/target/debug/examples/fraud_detection-ae3ebc616c3b123b: examples/fraud_detection.rs

examples/fraud_detection.rs:
