/root/repo/target/debug/examples/sampled_sage-a414154dd47d02c5.d: examples/sampled_sage.rs

/root/repo/target/debug/examples/sampled_sage-a414154dd47d02c5: examples/sampled_sage.rs

examples/sampled_sage.rs:
