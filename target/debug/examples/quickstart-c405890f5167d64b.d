/root/repo/target/debug/examples/quickstart-c405890f5167d64b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c405890f5167d64b: examples/quickstart.rs

examples/quickstart.rs:
