/root/repo/target/debug/examples/quickstart-bd49b360cc6dcc65.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-bd49b360cc6dcc65: examples/quickstart.rs

examples/quickstart.rs:
