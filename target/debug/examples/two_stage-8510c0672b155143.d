/root/repo/target/debug/examples/two_stage-8510c0672b155143.d: examples/two_stage.rs Cargo.toml

/root/repo/target/debug/examples/libtwo_stage-8510c0672b155143.rmeta: examples/two_stage.rs Cargo.toml

examples/two_stage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
