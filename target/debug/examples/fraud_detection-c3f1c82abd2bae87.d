/root/repo/target/debug/examples/fraud_detection-c3f1c82abd2bae87.d: examples/fraud_detection.rs Cargo.toml

/root/repo/target/debug/examples/libfraud_detection-c3f1c82abd2bae87.rmeta: examples/fraud_detection.rs Cargo.toml

examples/fraud_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
