/root/repo/target/debug/examples/fraud_detection-a36612633a225936.d: examples/fraud_detection.rs

/root/repo/target/debug/examples/fraud_detection-a36612633a225936: examples/fraud_detection.rs

examples/fraud_detection.rs:
