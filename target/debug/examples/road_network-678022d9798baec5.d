/root/repo/target/debug/examples/road_network-678022d9798baec5.d: examples/road_network.rs Cargo.toml

/root/repo/target/debug/examples/libroad_network-678022d9798baec5.rmeta: examples/road_network.rs Cargo.toml

examples/road_network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
