/root/repo/target/debug/examples/road_network-4a2c46ea603d8842.d: examples/road_network.rs

/root/repo/target/debug/examples/road_network-4a2c46ea603d8842: examples/road_network.rs

examples/road_network.rs:
