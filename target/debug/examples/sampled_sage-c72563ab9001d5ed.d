/root/repo/target/debug/examples/sampled_sage-c72563ab9001d5ed.d: examples/sampled_sage.rs Cargo.toml

/root/repo/target/debug/examples/libsampled_sage-c72563ab9001d5ed.rmeta: examples/sampled_sage.rs Cargo.toml

examples/sampled_sage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
