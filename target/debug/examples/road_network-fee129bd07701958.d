/root/repo/target/debug/examples/road_network-fee129bd07701958.d: examples/road_network.rs

/root/repo/target/debug/examples/road_network-fee129bd07701958: examples/road_network.rs

examples/road_network.rs:
