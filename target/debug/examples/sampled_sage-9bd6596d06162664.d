/root/repo/target/debug/examples/sampled_sage-9bd6596d06162664.d: examples/sampled_sage.rs

/root/repo/target/debug/examples/sampled_sage-9bd6596d06162664: examples/sampled_sage.rs

examples/sampled_sage.rs:
