/root/repo/target/debug/examples/two_stage-2e34581d93b945a4.d: examples/two_stage.rs

/root/repo/target/debug/examples/two_stage-2e34581d93b945a4: examples/two_stage.rs

examples/two_stage.rs:
