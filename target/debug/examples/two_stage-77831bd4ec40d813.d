/root/repo/target/debug/examples/two_stage-77831bd4ec40d813.d: examples/two_stage.rs

/root/repo/target/debug/examples/two_stage-77831bd4ec40d813: examples/two_stage.rs

examples/two_stage.rs:
