/root/repo/target/debug/examples/quickstart-fe63952f0d2c4541.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-fe63952f0d2c4541.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
