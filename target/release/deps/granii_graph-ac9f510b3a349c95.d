/root/repo/target/release/deps/granii_graph-ac9f510b3a349c95.d: crates/graph/src/lib.rs crates/graph/src/datasets.rs crates/graph/src/error.rs crates/graph/src/features.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/sampling.rs

/root/repo/target/release/deps/libgranii_graph-ac9f510b3a349c95.rlib: crates/graph/src/lib.rs crates/graph/src/datasets.rs crates/graph/src/error.rs crates/graph/src/features.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/sampling.rs

/root/repo/target/release/deps/libgranii_graph-ac9f510b3a349c95.rmeta: crates/graph/src/lib.rs crates/graph/src/datasets.rs crates/graph/src/error.rs crates/graph/src/features.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/sampling.rs

crates/graph/src/lib.rs:
crates/graph/src/datasets.rs:
crates/graph/src/error.rs:
crates/graph/src/features.rs:
crates/graph/src/generators.rs:
crates/graph/src/graph.rs:
crates/graph/src/io.rs:
crates/graph/src/sampling.rs:
