/root/repo/target/release/deps/granii_boost-e86687504023b7da.d: crates/boost/src/lib.rs crates/boost/src/data.rs crates/boost/src/error.rs crates/boost/src/gbt.rs crates/boost/src/metrics.rs crates/boost/src/tree.rs

/root/repo/target/release/deps/libgranii_boost-e86687504023b7da.rlib: crates/boost/src/lib.rs crates/boost/src/data.rs crates/boost/src/error.rs crates/boost/src/gbt.rs crates/boost/src/metrics.rs crates/boost/src/tree.rs

/root/repo/target/release/deps/libgranii_boost-e86687504023b7da.rmeta: crates/boost/src/lib.rs crates/boost/src/data.rs crates/boost/src/error.rs crates/boost/src/gbt.rs crates/boost/src/metrics.rs crates/boost/src/tree.rs

crates/boost/src/lib.rs:
crates/boost/src/data.rs:
crates/boost/src/error.rs:
crates/boost/src/gbt.rs:
crates/boost/src/metrics.rs:
crates/boost/src/tree.rs:
