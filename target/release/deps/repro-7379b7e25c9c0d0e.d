/root/repo/target/release/deps/repro-7379b7e25c9c0d0e.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-7379b7e25c9c0d0e: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
