/root/repo/target/release/deps/granii-847b5c4db4b62ec5.d: crates/cli/src/main.rs

/root/repo/target/release/deps/granii-847b5c4db4b62ec5: crates/cli/src/main.rs

crates/cli/src/main.rs:
