/root/repo/target/release/deps/granii_gnn-cebce2dd7af80f50.d: crates/gnn/src/lib.rs crates/gnn/src/autodiff.rs crates/gnn/src/ctx.rs crates/gnn/src/error.rs crates/gnn/src/exec.rs crates/gnn/src/models/mod.rs crates/gnn/src/models/gat.rs crates/gnn/src/models/gcn.rs crates/gnn/src/models/gin.rs crates/gnn/src/models/model.rs crates/gnn/src/models/sage.rs crates/gnn/src/models/sgc.rs crates/gnn/src/models/tagcn.rs crates/gnn/src/spec.rs crates/gnn/src/system.rs crates/gnn/src/train.rs

/root/repo/target/release/deps/libgranii_gnn-cebce2dd7af80f50.rlib: crates/gnn/src/lib.rs crates/gnn/src/autodiff.rs crates/gnn/src/ctx.rs crates/gnn/src/error.rs crates/gnn/src/exec.rs crates/gnn/src/models/mod.rs crates/gnn/src/models/gat.rs crates/gnn/src/models/gcn.rs crates/gnn/src/models/gin.rs crates/gnn/src/models/model.rs crates/gnn/src/models/sage.rs crates/gnn/src/models/sgc.rs crates/gnn/src/models/tagcn.rs crates/gnn/src/spec.rs crates/gnn/src/system.rs crates/gnn/src/train.rs

/root/repo/target/release/deps/libgranii_gnn-cebce2dd7af80f50.rmeta: crates/gnn/src/lib.rs crates/gnn/src/autodiff.rs crates/gnn/src/ctx.rs crates/gnn/src/error.rs crates/gnn/src/exec.rs crates/gnn/src/models/mod.rs crates/gnn/src/models/gat.rs crates/gnn/src/models/gcn.rs crates/gnn/src/models/gin.rs crates/gnn/src/models/model.rs crates/gnn/src/models/sage.rs crates/gnn/src/models/sgc.rs crates/gnn/src/models/tagcn.rs crates/gnn/src/spec.rs crates/gnn/src/system.rs crates/gnn/src/train.rs

crates/gnn/src/lib.rs:
crates/gnn/src/autodiff.rs:
crates/gnn/src/ctx.rs:
crates/gnn/src/error.rs:
crates/gnn/src/exec.rs:
crates/gnn/src/models/mod.rs:
crates/gnn/src/models/gat.rs:
crates/gnn/src/models/gcn.rs:
crates/gnn/src/models/gin.rs:
crates/gnn/src/models/model.rs:
crates/gnn/src/models/sage.rs:
crates/gnn/src/models/sgc.rs:
crates/gnn/src/models/tagcn.rs:
crates/gnn/src/spec.rs:
crates/gnn/src/system.rs:
crates/gnn/src/train.rs:
