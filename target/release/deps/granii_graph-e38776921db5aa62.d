/root/repo/target/release/deps/granii_graph-e38776921db5aa62.d: crates/graph/src/lib.rs crates/graph/src/datasets.rs crates/graph/src/error.rs crates/graph/src/features.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/sampling.rs

/root/repo/target/release/deps/libgranii_graph-e38776921db5aa62.rlib: crates/graph/src/lib.rs crates/graph/src/datasets.rs crates/graph/src/error.rs crates/graph/src/features.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/sampling.rs

/root/repo/target/release/deps/libgranii_graph-e38776921db5aa62.rmeta: crates/graph/src/lib.rs crates/graph/src/datasets.rs crates/graph/src/error.rs crates/graph/src/features.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/sampling.rs

crates/graph/src/lib.rs:
crates/graph/src/datasets.rs:
crates/graph/src/error.rs:
crates/graph/src/features.rs:
crates/graph/src/generators.rs:
crates/graph/src/graph.rs:
crates/graph/src/io.rs:
crates/graph/src/sampling.rs:
