/root/repo/target/release/deps/granii_telemetry-0fb6c31d0e675d22.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libgranii_telemetry-0fb6c31d0e675d22.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libgranii_telemetry-0fb6c31d0e675d22.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/span.rs:
