/root/repo/target/release/deps/granii_boost-daf1ff7828accdae.d: crates/boost/src/lib.rs crates/boost/src/data.rs crates/boost/src/error.rs crates/boost/src/gbt.rs crates/boost/src/metrics.rs crates/boost/src/tree.rs

/root/repo/target/release/deps/libgranii_boost-daf1ff7828accdae.rlib: crates/boost/src/lib.rs crates/boost/src/data.rs crates/boost/src/error.rs crates/boost/src/gbt.rs crates/boost/src/metrics.rs crates/boost/src/tree.rs

/root/repo/target/release/deps/libgranii_boost-daf1ff7828accdae.rmeta: crates/boost/src/lib.rs crates/boost/src/data.rs crates/boost/src/error.rs crates/boost/src/gbt.rs crates/boost/src/metrics.rs crates/boost/src/tree.rs

crates/boost/src/lib.rs:
crates/boost/src/data.rs:
crates/boost/src/error.rs:
crates/boost/src/gbt.rs:
crates/boost/src/metrics.rs:
crates/boost/src/tree.rs:
