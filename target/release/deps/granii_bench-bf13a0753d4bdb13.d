/root/repo/target/release/deps/granii_bench-bf13a0753d4bdb13.d: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/policies.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/libgranii_bench-bf13a0753d4bdb13.rlib: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/policies.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/libgranii_bench-bf13a0753d4bdb13.rmeta: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/policies.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/grid.rs:
crates/bench/src/policies.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
