/root/repo/target/release/deps/granii-f69e6c6af99bdffe.d: src/lib.rs

/root/repo/target/release/deps/libgranii-f69e6c6af99bdffe.rlib: src/lib.rs

/root/repo/target/release/deps/libgranii-f69e6c6af99bdffe.rmeta: src/lib.rs

src/lib.rs:
