/root/repo/target/release/deps/granii-fe7e9c1eedc32418.d: src/lib.rs

/root/repo/target/release/deps/libgranii-fe7e9c1eedc32418.rlib: src/lib.rs

/root/repo/target/release/deps/libgranii-fe7e9c1eedc32418.rmeta: src/lib.rs

src/lib.rs:
