/root/repo/target/release/deps/granii_cli-95bc2a9033a3da6a.d: crates/cli/src/lib.rs

/root/repo/target/release/deps/libgranii_cli-95bc2a9033a3da6a.rlib: crates/cli/src/lib.rs

/root/repo/target/release/deps/libgranii_cli-95bc2a9033a3da6a.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
