//! Traffic modeling on a road network with GCN — the sparse end of the
//! paper's graph spectrum (belgium_osm class: degree ≤ 4, huge diameter).
//!
//! On road graphs the precompute composition (Eq. 3) wins: the per-node
//! broadcast passes of dynamic normalization dominate when edges are scarce.
//! The example shows GRANII reaching that conclusion from its cost models and
//! compares the modeled latencies of every composition across devices.
//!
//! Run with `cargo run --release --example road_network`.

use granii::core::{Granii, GraniiOptions};
use granii::gnn::models::GnnLayer;
use granii::gnn::spec::{Composition, LayerConfig, ModelKind};
use granii::gnn::{Exec, GraphCtx};
use granii::graph::generators;
use granii::matrix::device::{DeviceKind, Engine};
use granii::matrix::DenseMatrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 120x100 road grid (12k intersections, degree <= 4).
    let graph = generators::grid_2d(120, 100)?;
    println!(
        "road network: {} nodes, {} directed edges, avg degree {:.1}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.avg_degree()
    );
    let ctx = GraphCtx::new(&graph)?;
    let cfg = LayerConfig::new(128, 128);
    let h = DenseMatrix::random(graph.num_nodes(), cfg.k_in, 1.0, 11);

    for device in [DeviceKind::H100, DeviceKind::A100, DeviceKind::Cpu] {
        let granii = Granii::train_for_device(device, GraniiOptions::fast())?;
        let sel = granii.select(ModelKind::Gcn, &graph, cfg.k_in, cfg.k_out)?;
        println!("\n[{device}] GRANII picks {}", sel.composition_name());

        // Modeled latency of every composition over a 100-iteration run.
        let engine = Engine::modeled(device);
        let exec = Exec::virtual_only(&engine);
        let layer = GnnLayer::new(ModelKind::Gcn, cfg, 2)?;
        for comp in Composition::all_for(ModelKind::Gcn) {
            engine.take_profile();
            let prepared = layer.prepare(&exec, &ctx, comp)?;
            let prep = engine.take_profile().total_seconds();
            layer.forward(&exec, &ctx, &prepared, &h, comp)?;
            let iter = engine.take_profile().total_seconds();
            let total = prep + 100.0 * iter;
            let marker = if comp == sel.composition {
                "  <- selected"
            } else {
                ""
            };
            println!("  {comp}: {:.3} ms / 100 iters{marker}", total * 1e3);
        }
    }
    Ok(())
}
