//! The offline/online split across a process boundary (paper Fig 5).
//!
//! The offline stage (profiling + cost-model training) runs once per device
//! and persists its models as JSON; the online stage loads them and makes
//! per-input decisions — the `granii train` / `granii select` CLI workflow,
//! shown here as a library user.
//!
//! Run with `cargo run --release --example two_stage`.

use granii::core::cost::training::{self, TrainingConfig};
use granii::core::cost::CostModelSet;
use granii::core::Granii;
use granii::gnn::spec::ModelKind;
use granii::graph::datasets::{Dataset, Scale};
use granii::matrix::device::DeviceKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::temp_dir().join("granii-cost-models-a100.json");

    // ---- Offline stage (once per device; in production a separate process).
    println!("[offline] profiling primitives and training cost models for the A100 model...");
    let models = training::train(DeviceKind::A100, &TrainingConfig::fast())?;
    for (kind, (rmse, spearman)) in &models.validation {
        println!("[offline]   {kind}: rmse(log) {rmse:.3}, spearman {spearman:.3}");
    }
    std::fs::write(&path, models.to_json()?)?;
    println!("[offline] persisted to {}", path.display());

    // ---- Online stage (every run: load models, decide per input).
    let restored = CostModelSet::from_json(&std::fs::read_to_string(&path)?)?;
    let granii = Granii::with_cost_models(restored);
    println!("[online] loaded cost models for {}", granii.device());

    for dataset in [Dataset::Mycielskian17, Dataset::BelgiumOsm, Dataset::Reddit] {
        let graph = dataset.load(Scale::Tiny)?;
        for (k1, k2) in [(32usize, 32usize), (1024, 1024)] {
            let sel = granii.select(ModelKind::Gcn, &graph, k1, k2)?;
            println!(
                "[online] {dataset} GCN ({k1},{k2}): {} ({} candidates compared, {:.2} ms overhead)",
                sel.composition_name(),
                sel.predicted.len(),
                sel.overhead_seconds() * 1e3
            );
        }
    }
    std::fs::remove_file(&path).ok();
    Ok(())
}
