//! Financial-fraud detection with GAT — one of the application domains the
//! paper's introduction motivates (heterogeneous account graphs, attention
//! over suspicious neighborhoods).
//!
//! A synthetic account-transaction graph (power-law: few hub merchants, many
//! leaf accounts) is labelled with a planted anomaly pattern; a single-head
//! GAT layer is trained on it, with GRANII choosing the attention
//! aggregation composition (reuse vs recompute) per configuration.
//!
//! Run with `cargo run --release --example fraud_detection`.

use granii::core::{Granii, GraniiOptions};
use granii::gnn::spec::{Composition, LayerConfig, ModelKind};
use granii::gnn::train::Trainer;
use granii::gnn::{Exec, GraphCtx};
use granii::graph::generators;
use granii::matrix::device::{DeviceKind, Engine};
use granii::matrix::DenseMatrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Account graph: hubs are merchants, leaves are customer accounts.
    let graph = generators::power_law(1_500, 6, 99)?;
    let ctx = GraphCtx::new(&graph)?;
    let n = graph.num_nodes();

    // 16 behavioral features per account; fraud score target correlated with
    // degree (hub-adjacent rings) plus feature noise.
    let feats = DenseMatrix::random(n, 16, 1.0, 3);
    let degrees = graph.out_degrees();
    let max_deg = degrees.iter().cloned().fold(1.0f32, f32::max);
    let target = DenseMatrix::from_fn(n, 8, |i, j| {
        (degrees[i] / max_deg) * ((j + 1) as f32 / 8.0) + feats.get(i, j % 16) * 0.05
    });

    // GRANII decides reuse-vs-recompute for the growing 16 -> 8... note this
    // config shrinks, so the embedding-size condition alone resolves it; try
    // a growing configuration as well to exercise the cost models.
    let granii = Granii::train_for_device(DeviceKind::A100, GraniiOptions::fast())?;
    for (k1, k2) in [(16usize, 8usize), (16, 64)] {
        let sel = granii.select(ModelKind::Gat, &graph, k1, k2)?;
        println!(
            "GAT {k1}->{k2}: GRANII picked {} (cost models used: {})",
            sel.composition_name(),
            sel.used_cost_models
        );
    }

    // Train the 16 -> 8 head for a few epochs with the selected composition.
    let sel = granii.select(ModelKind::Gat, &graph, 16, 8)?;
    let comp: Composition = sel.composition;
    let engine = Engine::cpu_measured();
    let exec = Exec::real(&engine);
    let mut trainer = Trainer::new(ModelKind::Gat, LayerConfig::new(16, 8), 5, 0.5)?;
    let mut first = None;
    let mut last = 0.0;
    for epoch in 0..40 {
        last = trainer.step(&exec, &ctx, &feats, &target, comp)?;
        if first.is_none() {
            first = Some(last);
        }
        if epoch % 10 == 0 {
            println!("epoch {epoch:2}: loss {last:.5}");
        }
    }
    let first = first.expect("at least one epoch");
    println!(
        "loss {first:.5} -> {last:.5} ({}% reduction), wall time {:.1} ms",
        ((1.0 - last / first) * 100.0) as i32,
        engine.elapsed_seconds() * 1e3
    );
    assert!(last < first, "training must reduce the loss");
    Ok(())
}
