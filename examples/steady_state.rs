//! Compile-once execution: plan-build vs steady-state timing.
//!
//! Selects a composition for a GCN layer, lowers it once into a
//! slot-addressed `ExecPlan`, and runs 100 iterations. Telemetry splits the
//! one-time costs (plan build, bind + hoisted precompute, warm-up) from the
//! steady-state loop, and the allocation counters verify that after warm-up
//! no iteration touches the heap.
//!
//! Run with: `cargo run --release --example steady_state`

use std::error::Error;

use granii::core::execplan::PlanInputs;
use granii::core::plan::CompiledModel;
use granii::core::runtime::{self, run_steady_state};
use granii::core::{Granii, GraniiOptions};
use granii::gnn::spec::{LayerConfig, ModelKind};
use granii::gnn::{Exec, GraphCtx};
use granii::graph::generators;
use granii::matrix::device::{DeviceKind, Engine};
use granii::matrix::DenseMatrix;

fn main() -> Result<(), Box<dyn Error>> {
    granii::telemetry::enable();

    let graph = generators::power_law(2_000, 12, 42)?;
    let ctx = GraphCtx::new(&graph)?;
    let cfg = LayerConfig::new(64, 32);

    // Online selection picks the composition for this concrete input.
    let granii = Granii::train_for_device(DeviceKind::Cpu, GraniiOptions::fast())?;
    let decision = granii.select(ModelKind::Gcn, &graph, cfg.k_in, cfg.k_out)?;
    println!("selected composition: {}", decision.composition_name());

    // Compile-once: lower the winning candidate into an ExecPlan and run it.
    let plan = CompiledModel::compile(ModelKind::Gcn, cfg)?;
    let h = DenseMatrix::random(ctx.num_nodes(), cfg.k_in, 1.0, 7);
    let inputs = PlanInputs::for_model(ModelKind::Gcn, cfg, &ctx, h, 7);
    let engine = Engine::modeled(DeviceKind::Cpu);
    let exec = Exec::real(&engine);

    let allocs_before = runtime::allocation_counter_total();
    let report = run_steady_state(&exec, &plan, decision.composition, &inputs, 100)?;
    println!("\nprogram: {}", report.expr);
    println!("plan build:        {:>10.1} µs", report.build_seconds * 1e6);
    println!("bind + precompute: {:>10.1} µs", report.bind_seconds * 1e6);
    println!(
        "warm-up iteration: {:>10.1} µs",
        report.warmup_seconds * 1e6
    );
    println!(
        "steady state:      {:>10.1} µs/iter over {} iterations",
        report.seconds_per_iteration() * 1e6,
        report.steady_iterations,
    );
    println!(
        "steady-state heap allocations: {} (one-time setup allocated {})",
        report.steady_allocations,
        runtime::allocation_counter_total() - allocs_before - report.steady_allocations,
    );

    // The same split is visible in the telemetry histograms.
    println!("\ntelemetry histograms:");
    for h in granii::telemetry::metrics_snapshot().histograms {
        if h.name.starts_with("execplan.") {
            println!(
                "  {:<20} count {:>4}  mean {:>10.1} µs",
                h.name,
                h.count,
                h.mean_ns() / 1e3,
            );
        }
    }
    Ok(())
}
