//! GraphSAGE with neighborhood sampling — the paper's §VI-E scenario:
//! "through sampling, we can support GraphSAGE with GCN aggregation", and a
//! single GRANII call can be reused across sampled subgraphs because random
//! samples of the same fanout barely shift the decision inputs.
//!
//! Run with `cargo run --release --example sampled_sage`.

use granii::core::{Granii, GraniiOptions};
use granii::gnn::models::GnnLayer;
use granii::gnn::spec::{LayerConfig, ModelKind};
use granii::gnn::{Exec, GraphCtx};
use granii::graph::{generators, sampling};
use granii::matrix::device::{DeviceKind, Engine};
use granii::matrix::DenseMatrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A social graph with heavy hubs; sampling caps neighborhoods at a fanout.
    let graph = generators::power_law(5_000, 20, 1)?;
    println!(
        "full graph: {} nodes / {} edges (max degree {})",
        graph.num_nodes(),
        graph.num_edges(),
        graph.row_stats().max
    );

    let granii = Granii::train_for_device(DeviceKind::H100, GraniiOptions::fast())?;
    let full_decision = granii.select(ModelKind::Sage, &graph, 64, 32)?;
    println!(
        "decision on the full graph: {}",
        full_decision.composition_name()
    );

    // One decision, many samples: check stability across 8 random samples per
    // fanout, then run the layer on one of them with real kernels.
    for fanout in [25usize, 10, 5] {
        let mut agree = 0;
        for seed in 0..8 {
            let sampled = sampling::sample_neighbors(&graph, fanout, seed)?;
            let sel = granii.select(ModelKind::Sage, &sampled, 64, 32)?;
            if sel.composition == full_decision.composition {
                agree += 1;
            }
        }
        println!("fanout {fanout:3}: decision matches the full graph on {agree}/8 samples");
    }

    let sampled = sampling::sample_neighbors(&graph, 10, 123)?;
    let ctx = GraphCtx::new(&sampled)?;
    let engine = Engine::cpu_measured();
    let exec = Exec::real(&engine);
    let layer = GnnLayer::new(ModelKind::Sage, LayerConfig::new(64, 32), 9)?;
    let h = DenseMatrix::random(sampled.num_nodes(), 64, 1.0, 2);
    let prepared = layer.prepare(&exec, &ctx, full_decision.composition)?;
    let out = layer.forward(&exec, &ctx, &prepared, &h, full_decision.composition)?;
    println!(
        "SAGE forward on the sampled graph: output {}x{}, {:.1} ms measured",
        out.rows(),
        out.cols(),
        engine.elapsed_seconds() * 1e3
    );
    Ok(())
}
