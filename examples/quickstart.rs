//! Quickstart: the paper's Fig 4 usage pattern.
//!
//! ```text
//! import GRANII
//! graph, node_feats, labels = ...
//! model = GraphConv(..)
//! GRANII(model, graph, node_feats, labels)   # <- Only change
//! res = model(graph, node_feats)
//! ```
//!
//! Run with `cargo run --release --example quickstart`.

use granii::core::{Granii, GraniiOptions};
use granii::gnn::models::GnnLayer;
use granii::gnn::spec::{LayerConfig, ModelKind};
use granii::gnn::{Exec, GraphCtx};
use granii::graph::generators;
use granii::matrix::device::{DeviceKind, Engine};
use granii::matrix::DenseMatrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // graph, node_feats = ...
    let graph = generators::power_law(2_000, 12, 42)?;
    let node_feats = DenseMatrix::random(graph.num_nodes(), 64, 1.0, 7);

    // GRANII(model, graph, ...) — the one-time offline stage (profiling +
    // cost-model training) followed by the online selection for this input.
    let granii = Granii::train_for_device(DeviceKind::H100, GraniiOptions::fast())?;
    let decision = granii.select(ModelKind::Gcn, &graph, 64, 32)?;
    println!("GRANII selected: {}", decision.composition_name());
    println!(
        "selection overhead: {:.2} ms (featurize {:.2} ms, cost models {:.2} ms)",
        decision.overhead_seconds() * 1e3,
        decision.featurize_seconds * 1e3,
        decision.select_seconds * 1e3,
    );
    for (comp, cost) in &decision.predicted {
        println!("  predicted {:.3} ms  {}", cost * 1e3, comp);
    }

    // res = model(graph, node_feats) — run the selected composition with real
    // kernels, measured on the host CPU.
    let ctx = GraphCtx::new(&graph)?;
    let engine = Engine::cpu_measured();
    let exec = Exec::real(&engine);
    let layer = GnnLayer::new(ModelKind::Gcn, LayerConfig::new(64, 32), 1)?;
    let prepared = layer.prepare(&exec, &ctx, decision.composition)?;
    let out = layer.forward(&exec, &ctx, &prepared, &node_feats, decision.composition)?;
    println!(
        "forward done: output {}x{}, measured {:.2} ms on the CPU",
        out.rows(),
        out.cols(),
        engine.elapsed_seconds() * 1e3
    );
    Ok(())
}
