//! Offline `#[derive(Serialize, Deserialize)]` for the serde shim.
//!
//! The generated impls target the shim's value-tree traits
//! (`serde::Serialize::serialize(&self) -> serde::Value` and back) and follow
//! serde_json's external-tagging conventions so persisted JSON keeps the
//! upstream shape: structs become objects keyed by field name, unit enum
//! variants become bare strings, newtype variants `{"V": inner}`, tuple
//! variants `{"V": [..]}`, struct variants `{"V": {..}}`.
//!
//! There is no `syn`/`quote` offline, so the item is parsed directly from the
//! token stream. Supported input: non-generic structs with named fields and
//! non-generic enums; `#[serde(...)]` attributes are not supported (none are
//! used in this workspace).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

/// Shape of one enum variant.
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Parsed derive input.
enum Body {
    Struct(Vec<String>),
    Enum(Vec<(String, VariantKind)>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_item(input);
    let code = match &body {
        Body::Struct(fields) => gen_struct_serialize(&name, fields),
        Body::Enum(variants) => gen_enum_serialize(&name, variants),
    };
    code.parse()
        .expect("serde_derive shim generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_item(input);
    let code = match &body {
        Body::Struct(fields) => gen_struct_deserialize(&name, fields),
        Body::Enum(variants) => gen_enum_deserialize(&name, variants),
    };
    code.parse()
        .expect("serde_derive shim generated invalid Deserialize impl")
}

// ---------------------------------------------------------------- parsing

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

fn parse_item(input: TokenStream) -> (String, Body) {
    let mut it = input.into_iter().peekable();
    let kind = loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next(); // the [...] attribute group
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                match s.as_str() {
                    "pub" => skip_vis_restriction(&mut it),
                    "struct" | "enum" => break s,
                    other => panic!("serde_derive shim: unsupported item `{other}`"),
                }
            }
            other => panic!("serde_derive shim: unexpected token {other:?}"),
        }
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other:?}"),
    };
    let body_group = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive shim: generic type `{name}` is unsupported")
        }
        other => panic!("serde_derive shim: expected braced body for `{name}`, got {other:?}"),
    };
    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_named_fields(body_group.stream())),
        _ => Body::Enum(parse_variants(body_group.stream())),
    };
    (name, body)
}

/// Skips the `(...)` in `pub(crate)` / `pub(in ...)` if present.
fn skip_vis_restriction(it: &mut TokenIter) {
    if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis) {
        it.next();
    }
}

/// Skips any leading `#[...]` attributes.
fn skip_attrs(it: &mut TokenIter) {
    while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        it.next();
        it.next();
    }
}

/// Consumes tokens until a top-level `,` (angle-bracket aware) or the end.
fn skip_to_comma(it: &mut TokenIter) {
    let mut angle_depth = 0i64;
    for tok in it.by_ref() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut it = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs(&mut it);
        if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            it.next();
            skip_vis_restriction(&mut it);
        }
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, got {other:?}"),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after `{name}`, got {other:?}"),
        }
        skip_to_comma(&mut it);
        fields.push(name);
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<(String, VariantKind)> {
    let mut it = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, got {other:?}"),
        };
        let kind = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                it.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        skip_to_comma(&mut it); // also skips any `= discriminant`
        variants.push((name, kind));
    }
    variants
}

/// Counts the comma-separated types inside a tuple variant's parentheses.
fn tuple_arity(body: TokenStream) -> usize {
    let mut it = body.into_iter().peekable();
    let mut arity = 0usize;
    while it.peek().is_some() {
        skip_to_comma(&mut it);
        arity += 1;
    }
    arity
}

// ---------------------------------------------------------------- codegen

const IMPL_ATTRS: &str =
    "#[automatically_derived]\n#[allow(unused_mut, unused_variables, clippy::all)]\n";

fn gen_struct_serialize(name: &str, fields: &[String]) -> String {
    let mut body = String::from("let mut m = ::serde::Map::new();\n");
    for f in fields {
        body.push_str(&format!(
            "m.insert(::std::string::String::from(\"{f}\"), \
             ::serde::Serialize::serialize(&self.{f}));\n"
        ));
    }
    body.push_str("::serde::Value::Object(m)");
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
}

fn gen_struct_deserialize(name: &str, fields: &[String]) -> String {
    let mut ctor = format!("{name} {{ ");
    for f in fields {
        ctor.push_str(&format!("{f}: ::serde::get_field(m, \"{f}\")?, "));
    }
    ctor.push('}');
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         let m = match value {{\n\
             ::serde::Value::Object(m) => m,\n\
             _ => return ::std::result::Result::Err(::serde::Error::custom(\"expected object for {name}\")),\n\
         }};\n\
         ::std::result::Result::Ok({ctor})\n}}\n}}"
    )
}

fn gen_enum_serialize(name: &str, variants: &[(String, VariantKind)]) -> String {
    let mut arms = String::new();
    for (v, kind) in variants {
        match kind {
            VariantKind::Unit => arms.push_str(&format!(
                "{name}::{v} => ::serde::Value::String(::std::string::String::from(\"{v}\")),\n"
            )),
            VariantKind::Tuple(arity) => {
                let binds: Vec<String> = (0..*arity).map(|i| format!("v{i}")).collect();
                let inner = if *arity == 1 {
                    "::serde::Serialize::serialize(v0)".to_string()
                } else {
                    let elems: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::serialize({b})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
                };
                arms.push_str(&format!(
                    "{name}::{v}({binds}) => {{\n\
                     let mut m = ::serde::Map::new();\n\
                     m.insert(::std::string::String::from(\"{v}\"), {inner});\n\
                     ::serde::Value::Object(m)\n}}\n",
                    binds = binds.join(", ")
                ));
            }
            VariantKind::Named(fields) => {
                let mut inner = String::from("let mut inner = ::serde::Map::new();\n");
                for f in fields {
                    inner.push_str(&format!(
                        "inner.insert(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize({f}));\n"
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{v} {{ {fields} }} => {{\n{inner}\
                     let mut m = ::serde::Map::new();\n\
                     m.insert(::std::string::String::from(\"{v}\"), ::serde::Value::Object(inner));\n\
                     ::serde::Value::Object(m)\n}}\n",
                    fields = fields.join(", ")
                ));
            }
        }
    }
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[(String, VariantKind)]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for (v, kind) in variants {
        match kind {
            VariantKind::Unit => unit_arms.push_str(&format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"
            )),
            VariantKind::Tuple(arity) if *arity == 1 => data_arms.push_str(&format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                 ::serde::Deserialize::deserialize(inner)?)),\n"
            )),
            VariantKind::Tuple(arity) => {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::deserialize(&a[{i}])?"))
                    .collect();
                data_arms.push_str(&format!(
                    "\"{v}\" => match inner {{\n\
                     ::serde::Value::Array(a) if a.len() == {arity} => \
                     ::std::result::Result::Ok({name}::{v}({elems})),\n\
                     _ => ::std::result::Result::Err(::serde::Error::custom(\
                     \"expected {arity}-element array for variant {v}\")),\n}}\n",
                    elems = elems.join(", ")
                ));
            }
            VariantKind::Named(fields) => {
                let ctor: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::get_field(im, \"{f}\")?"))
                    .collect();
                data_arms.push_str(&format!(
                    "\"{v}\" => {{\n\
                     let im = match inner {{\n\
                         ::serde::Value::Object(im) => im,\n\
                         _ => return ::std::result::Result::Err(::serde::Error::custom(\
                         \"expected object for variant {v}\")),\n\
                     }};\n\
                     ::std::result::Result::Ok({name}::{v} {{ {ctor} }})\n}}\n",
                    ctor = ctor.join(", ")
                ));
            }
        }
    }
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         match value {{\n\
         ::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}\
             other => ::std::result::Result::Err(::serde::Error::custom(\
             ::std::format!(\"unknown variant `{{}}` of {name}\", other))),\n}},\n\
         ::serde::Value::Object(m) if m.len() == 1 => {{\n\
             let (k, inner) = m.iter().next().expect(\"len checked\");\n\
             match k.as_str() {{\n{data_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{}}` of {name}\", other))),\n}}\n}}\n\
         _ => ::std::result::Result::Err(::serde::Error::custom(\"expected enum {name}\")),\n\
         }}\n}}\n}}"
    )
}
