//! Offline shim exposing the subset of `parking_lot` the workspace uses,
//! backed by `std::sync`. Lock poisoning is absorbed (`parking_lot` locks do
//! not poison), so a panic in one test cannot cascade into unrelated ones.

use std::sync::{self, PoisonError};

/// Mutual exclusion primitive with `parking_lot`'s non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with `parking_lot`'s non-poisoning `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
