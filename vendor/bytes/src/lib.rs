//! Offline shim exposing the subset of `bytes` the workspace uses, backed by
//! plain `Vec<u8>`. `Bytes` keeps a consumed-prefix cursor so the `Buf`
//! reading methods advance exactly like upstream.

use std::ops::{Bound, RangeBounds};

/// Read-side cursor interface (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u32`, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
}

/// Write-side interface (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends `src` to the buffer.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Immutable byte buffer with a read cursor (subset of `bytes::Bytes`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Unread length of the buffer.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Unread contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// Copies the unread contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a new buffer holding `range` of the unread contents.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len(),
        };
        Bytes::from(self.as_slice()[start..end].to_vec())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.remaining(),
            "copy_to_slice past end of buffer"
        );
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// Growable byte buffer (subset of `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length of the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_round_trip() {
        let mut w = BytesMut::with_capacity(16);
        w.put_slice(b"GR");
        w.put_u32_le(0xDEAD_BEEF);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 6);
        let mut magic = [0u8; 2];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"GR");
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_is_relative_to_unread_view() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        b.get_u32_le();
        assert_eq!(b.slice(0..2).to_vec(), vec![4, 5]);
        assert_eq!(b.len(), 2);
    }
}
