//! Offline micro-benchmark harness shim with criterion's API surface.
//!
//! Implements the subset the workspace benches use (`bench_function`,
//! `benchmark_group`, `bench_with_input`, `Bencher::iter`) with a simple
//! warmup + fixed-sample median-time measurement printed to stdout. No
//! statistics machinery, plots, or baselines — just honest wall-clock
//! numbers so `cargo bench` works offline.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink, like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for a parameterized benchmark, like `criterion::BenchmarkId`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    per_iter: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, recording the median of the sample runs.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One warmup run (also primes caches and lazy state).
        black_box(routine());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.per_iter = Some(times[times.len() / 2]);
    }
}

fn run_one(label: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        per_iter: None,
    };
    f(&mut b);
    match b.per_iter {
        Some(t) => println!("bench {label:<40} {t:>12.2?}/iter (median of {samples})"),
        None => println!("bench {label:<40} (no measurement)"),
    }
}

/// Named group of benchmarks sharing a sample count.
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        run_one(&format!("{}/{}", self.name, id.into()), self.samples, |b| {
            f(b)
        });
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.label), self.samples, |b| {
            f(b, input)
        });
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Top-level harness handle, like `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark with the default sample count.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        run_one(&id.into(), 10, |b| f(b));
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
        }
    }
}

/// Declares a benchmark group entry point, like `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, like `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_measurement() {
        let mut ran = 0u32;
        run_one("smoke", 3, |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran >= 4, "warmup + samples should run");
    }

    #[test]
    fn group_runs_parameterized_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut hits = 0u32;
        group.bench_with_input(BenchmarkId::new("id", 7), &7usize, |b, &n| {
            b.iter(|| {
                hits += 1;
                black_box(n)
            })
        });
        group.finish();
        assert!(hits > 0);
    }
}
