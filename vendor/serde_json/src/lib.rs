//! Offline JSON text layer for the serde shim: renders [`serde::Value`] trees
//! to JSON strings and parses them back, exposing serde_json's `to_string` /
//! `from_str` entry points.

pub use serde::Value;

use std::fmt;

/// Error raised by JSON rendering or parsing.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out)?;
    Ok(out)
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    Ok(T::deserialize(&value)?)
}

// ---------------------------------------------------------------- writer

fn write_value(v: &Value, out: &mut String) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            if !n.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // Rust's float Display is shortest-round-trip and never uses an
            // exponent, so the output is always a valid JSON number.
            out.push_str(&format!("{n}"));
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => self.eat_keyword("null", Value::Null),
            b't' => self.eat_keyword("true", Value::Bool(true)),
            b'f' => self.eat_keyword("false", Value::Bool(false)),
            b'"' => self.string().map(Value::String),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = serde::Map::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Decode surrogate pairs; lone surrogates error.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        self.pos += 4;
        let s = std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let mut obj = serde::Map::new();
        obj.insert("pi".into(), Value::Number(3.25));
        obj.insert("neg".into(), Value::Number(-1e-3));
        obj.insert("s".into(), Value::String("a\"b\\c\nd".into()));
        obj.insert(
            "arr".into(),
            Value::Array(vec![Value::Null, Value::Bool(true)]),
        );
        let v = Value::Object(obj);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v: Value = from_str(" { \"a\" : [ 1 , { \"b\" : 2.5e2 } ] } ").unwrap();
        let a = v.as_object().unwrap()["a"].as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_object().unwrap()["b"].as_f64(), Some(250.0));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("Aé😀"));
    }
}
