//! Offline property-testing shim with proptest's macro surface.
//!
//! Each `proptest!` test expands to a plain `#[test]` that runs the body over
//! a deterministic stream of random cases (seeded from the test name), so
//! results are reproducible across runs and machines. Shrinking is not
//! implemented — a failing case panics with its inputs via the assert
//! message, which is enough for a fixed-seed regression suite.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

/// Deterministic case generator handed to [`Strategy::generate`].
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates a generator for `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the test name
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// Draws one value uniformly from a half-open range.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        self.0.gen_range(range)
    }
}

/// A generator of random values (shim of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
    {
        FlatMapStrategy { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMapStrategy<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Constant strategy (shim of `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(usize, u64, u32, u16, u8, f64, f32);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is drawn from `size` (shim of
    /// `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-block configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// Configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a single case ended early.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`.
        Reject,
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
    };
}

/// Asserts a condition inside a `proptest!` body, with optional context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` body, with optional context.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a `proptest!` body, with optional context.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares deterministic property tests (shim of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)
        $(
            $(#[doc = $doc:expr])*
            #[test]
            fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[doc = $doc])*
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let strategies = ($($strategy,)+);
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    let ($($pat,)+) = $crate::Strategy::generate(&strategies, &mut rng);
                    // The closure gives `prop_assume!` an early-return target.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => {}
                    }
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair(max: usize) -> impl Strategy<Value = (usize, usize)> {
        (1usize..max).prop_flat_map(move |a| (Just(a), 0usize..a + 1))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Generated values respect their ranges.
        #[test]
        fn ranges_in_bounds(n in 3usize..10, x in -1.5f64..1.5) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((-1.5..1.5).contains(&x));
        }

        /// Flat-mapped strategies see the upstream value.
        #[test]
        fn flat_map_dependency((a, b) in pair(20)) {
            prop_assert!(b <= a);
        }

        /// Vec strategy respects the length range; assume skips cases.
        #[test]
        fn vec_lengths(v in crate::collection::vec(0u64..5, 2..7)) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
    }
}
