//! Offline serialization shim standing in for `serde`.
//!
//! Instead of upstream's visitor architecture, [`Serialize`] renders a type to
//! an in-memory JSON [`Value`] tree and [`Deserialize`] rebuilds it from one.
//! The derive macros (re-exported from `serde_derive`) generate impls matching
//! serde_json's external-tagging conventions, so persisted artifacts keep the
//! same shape: structs are objects, unit enum variants are strings, data
//! variants are single-key objects.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// Object representation used by [`Value::Object`].
pub type Map = BTreeMap<String, Value>;

/// An in-memory JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (all numerics are carried as `f64`).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with deterministic (sorted) key order.
    Object(Map),
}

impl Value {
    /// Borrows the object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Error produced when a [`Value`] does not match the target type's shape.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into a [`Value`] tree.
pub trait Serialize {
    /// Converts to the JSON value model.
    fn serialize(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Converts from the JSON value model.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match `Self`.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Looks up and deserializes a struct field; absent fields deserialize from
/// `null` so `Option` fields tolerate omission (matching serde's default).
///
/// # Errors
///
/// Propagates the field's deserialization error.
pub fn get_field<T: Deserialize>(map: &Map, name: &str) -> Result<T, Error> {
    match map.get(name) {
        Some(v) => T::deserialize(v).map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
        None => T::deserialize(&Value::Null)
            .map_err(|_| Error::custom(format!("missing field `{name}`"))),
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                value
                    .as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| Error::custom(concat!("expected number for ", stringify!($t))))
            }
        }
    )*};
}
impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected boolean"))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::deserialize(value).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value.as_array().map(Vec::as_slice) {
            Some([a, b]) => Ok((A::deserialize(a)?, B::deserialize(b)?)),
            _ => Err(Error::custom("expected 2-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value.as_array().map(Vec::as_slice) {
            Some([a, b, c]) => Ok((A::deserialize(a)?, B::deserialize(b)?, C::deserialize(c)?)),
            _ => Err(Error::custom("expected 3-element array")),
        }
    }
}

/// Maps serialize as objects; the key must itself serialize to a string
/// (unit enum variants and `String` do), matching serde_json's constraint.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            let key = match k.serialize() {
                Value::String(s) => s,
                Value::Number(n) => format!("{n}"),
                other => panic!("map key must serialize to a string, got {other:?}"),
            };
            m.insert(key, v.serialize());
        }
        Value::Object(m)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?;
        let mut out = BTreeMap::new();
        for (k, v) in obj {
            let key = K::deserialize(&Value::String(k.clone()))
                .map_err(|e| Error::custom(format!("map key `{k}`: {e}")))?;
            out.insert(key, V::deserialize(v)?);
        }
        Ok(out)
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
