//! Offline shim exposing the subset of `crossbeam` the workspace uses:
//! `crossbeam::thread::scope` with spawn closures that receive the scope,
//! backed by `std::thread::scope`.

pub mod thread {
    use std::any::Any;

    /// Error type carried by a failed [`scope`] (a panicked child thread).
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle passed to [`scope`]'s closure and to every spawned
    /// thread's closure (crossbeam's nested-spawn convention).
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    /// Handle to a scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the panic
        /// payload.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope (ignored by
        /// all call sites here, kept for crossbeam signature parity).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            ScopedJoinHandle(inner.spawn(move || f(&Scope(inner))))
        }
    }

    /// Runs `f` with a thread scope; all spawned threads are joined before
    /// this returns. Unlike crossbeam, a child panic propagates out of this
    /// call instead of surfacing as `Err` — every call site immediately
    /// `.expect()`s the result, so the observable behaviour is identical.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope(s))))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_return() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn spawn_without_join_still_completes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        crate::thread::scope(|s| {
            for _ in 0..4 {
                let hits = &hits;
                s.spawn(move |_| hits.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }
}
