//! Offline shim exposing the subset of `crossbeam` the workspace uses:
//! `crossbeam::thread::scope` with spawn closures that receive the scope
//! (backed by `std::thread::scope`), and `crossbeam::queue::ArrayQueue`, a
//! bounded lock-free MPMC queue (Vyukov's bounded MPMC algorithm, the same
//! design the real crossbeam uses).

pub mod queue {
    use std::cell::UnsafeCell;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// One ring-buffer cell. `seq` encodes the cell's lap state: `== tail`
    /// means writable by the pusher claiming index `tail`; `== head + 1`
    /// means readable by the popper claiming index `head`; anything else
    /// means another thread is mid-transfer (full/empty from this caller's
    /// perspective).
    struct Slot<T> {
        seq: AtomicUsize,
        value: UnsafeCell<MaybeUninit<T>>,
    }

    /// A bounded lock-free multi-producer multi-consumer queue.
    ///
    /// `push` never blocks: a full queue returns the value to the caller
    /// (shed-don't-block — exactly the admission semantics the serving
    /// runtime needs). `pop` never blocks: an empty queue returns `None`.
    /// Per-producer FIFO order is preserved.
    pub struct ArrayQueue<T> {
        head: AtomicUsize,
        tail: AtomicUsize,
        slots: Box<[Slot<T>]>,
    }

    // SAFETY: values move through `UnsafeCell`s, but every cell is owned by
    // exactly one thread at a time (guarded by the `seq` protocol), so the
    // queue is Sync whenever T can be sent between threads.
    unsafe impl<T: Send> Send for ArrayQueue<T> {}
    unsafe impl<T: Send> Sync for ArrayQueue<T> {}

    impl<T> ArrayQueue<T> {
        /// Creates a queue holding at most `capacity` values.
        ///
        /// # Panics
        ///
        /// Panics if `capacity` is zero (a zero-capacity queue cannot hold
        /// the in-flight cell the algorithm needs; callers wanting
        /// "admit nothing" shed before pushing).
        pub fn new(capacity: usize) -> Self {
            assert!(capacity > 0, "ArrayQueue capacity must be at least 1");
            let slots = (0..capacity)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect();
            ArrayQueue {
                head: AtomicUsize::new(0),
                tail: AtomicUsize::new(0),
                slots,
            }
        }

        /// Maximum number of values the queue can hold.
        pub fn capacity(&self) -> usize {
            self.slots.len()
        }

        /// Attempts to enqueue; on a full queue the value comes straight
        /// back as `Err` so the caller can shed it.
        pub fn push(&self, value: T) -> Result<(), T> {
            let cap = self.slots.len();
            let mut tail = self.tail.load(Ordering::Relaxed);
            loop {
                let slot = &self.slots[tail % cap];
                let seq = slot.seq.load(Ordering::Acquire);
                let dif = seq as isize - tail as isize;
                if dif == 0 {
                    // The slot is free on this lap: claim the index.
                    match self.tail.compare_exchange_weak(
                        tail,
                        tail.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: the CAS above gives this thread sole
                            // ownership of the cell until the seq store.
                            unsafe { (*slot.value.get()).write(value) };
                            slot.seq.store(tail.wrapping_add(1), Ordering::Release);
                            return Ok(());
                        }
                        Err(t) => tail = t,
                    }
                } else if dif < 0 {
                    // The slot still holds last lap's value: full.
                    return Err(value);
                } else {
                    // Another pusher claimed this index; reload and retry.
                    tail = self.tail.load(Ordering::Relaxed);
                }
            }
        }

        /// Attempts to dequeue; `None` on an empty queue.
        pub fn pop(&self) -> Option<T> {
            let cap = self.slots.len();
            let mut head = self.head.load(Ordering::Relaxed);
            loop {
                let slot = &self.slots[head % cap];
                let seq = slot.seq.load(Ordering::Acquire);
                let dif = seq as isize - head.wrapping_add(1) as isize;
                if dif == 0 {
                    match self.head.compare_exchange_weak(
                        head,
                        head.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: the CAS gives this thread sole
                            // ownership of the filled cell.
                            let value = unsafe { (*slot.value.get()).assume_init_read() };
                            slot.seq.store(head.wrapping_add(cap), Ordering::Release);
                            return Some(value);
                        }
                        Err(h) => head = h,
                    }
                } else if dif < 0 {
                    // The slot was not yet filled on this lap: empty.
                    return None;
                } else {
                    head = self.head.load(Ordering::Relaxed);
                }
            }
        }

        /// Number of values currently queued (exact when quiescent, a
        /// point-in-time estimate under concurrent push/pop — fine for the
        /// depth gauges it feeds).
        pub fn len(&self) -> usize {
            let tail = self.tail.load(Ordering::SeqCst);
            let head = self.head.load(Ordering::SeqCst);
            tail.wrapping_sub(head).min(self.slots.len())
        }

        /// Whether the queue is currently empty (same caveat as [`len`]).
        ///
        /// [`len`]: ArrayQueue::len
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Drop for ArrayQueue<T> {
        fn drop(&mut self) {
            // Pop (and thereby drop) everything still queued.
            while self.pop().is_some() {}
        }
    }
}

pub mod thread {
    use std::any::Any;

    /// Error type carried by a failed [`scope`] (a panicked child thread).
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle passed to [`scope`]'s closure and to every spawned
    /// thread's closure (crossbeam's nested-spawn convention).
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    /// Handle to a scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the panic
        /// payload.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope (ignored by
        /// all call sites here, kept for crossbeam signature parity).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            ScopedJoinHandle(inner.spawn(move || f(&Scope(inner))))
        }
    }

    /// Runs `f` with a thread scope; all spawned threads are joined before
    /// this returns. Unlike crossbeam, a child panic propagates out of this
    /// call instead of surfacing as `Err` — every call site immediately
    /// `.expect()`s the result, so the observable behaviour is identical.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope(s))))
    }
}

#[cfg(test)]
mod tests {
    use crate::queue::ArrayQueue;

    #[test]
    fn full_queue_returns_value_to_pusher() {
        let q = ArrayQueue::new(2);
        assert_eq!(q.capacity(), 2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3)); // shed, not blocked
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3).is_ok()); // slot freed by the pop
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = ArrayQueue::<u32>::new(0);
    }

    #[test]
    fn drain_after_producers_stop_returns_everything_in_fifo_order() {
        // Drain-on-shutdown: once producers are done, sequential pops must
        // surface every queued value, in order.
        let q = ArrayQueue::new(64);
        for i in 0..48 {
            q.push(i).unwrap();
        }
        let drained: Vec<u32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, (0..48).collect::<Vec<_>>());
    }

    #[test]
    fn mpmc_preserves_per_producer_order_and_loses_nothing() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;

        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 1000;
        let q = ArrayQueue::new(8); // small ring: forces lap reuse under contention
        let collected = Mutex::new(Vec::new());
        let done = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let q = &q;
                let done = &done;
                s.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let mut item = (p, i);
                        // Full queue: retry (producers here want delivery;
                        // the serving layer is the one that sheds).
                        while let Err(back) = q.push(item) {
                            item = back;
                            std::thread::yield_now();
                        }
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
            for _ in 0..PRODUCERS {
                let q = &q;
                let done = &done;
                let collected = &collected;
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        match q.pop() {
                            Some(item) => local.push(item),
                            None if done.load(Ordering::SeqCst) == PRODUCERS && q.is_empty() => {
                                break
                            }
                            None => std::thread::yield_now(),
                        }
                    }
                    collected.lock().unwrap().push(local);
                });
            }
        });
        let per_consumer = collected.into_inner().unwrap();
        // Within one consumer's consumption order, each producer's sequence
        // numbers must be strictly increasing (per-producer FIFO).
        for local in &per_consumer {
            let mut last = [None::<usize>; PRODUCERS];
            for &(p, i) in local {
                assert!(
                    last[p].is_none_or(|prev| prev < i),
                    "producer {p} reordered"
                );
                last[p] = Some(i);
            }
        }
        // And globally: every item exactly once (no loss, no duplication).
        let mut all: Vec<(usize, usize)> = per_consumer.into_iter().flatten().collect();
        assert_eq!(all.len(), PRODUCERS * PER_PRODUCER);
        all.sort_unstable();
        let want: Vec<(usize, usize)> = (0..PRODUCERS)
            .flat_map(|p| (0..PER_PRODUCER).map(move |i| (p, i)))
            .collect();
        assert_eq!(all, want);
    }

    #[test]
    fn scoped_threads_join_and_return() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn spawn_without_join_still_completes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        crate::thread::scope(|s| {
            for _ in 0..4 {
                let hits = &hits;
                s.spawn(move |_| hits.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }
}
