//! Offline shim exposing the subset of `rand` 0.8 the workspace uses:
//! `StdRng::seed_from_u64`, `Rng::{gen, gen_range}`, and
//! `seq::SliceRandom::shuffle`, backed by a SplitMix64 generator.
//!
//! The stream differs from upstream `StdRng` (ChaCha12), but every consumer
//! only relies on determinism-per-seed, which SplitMix64 provides.

use std::ops::Range;

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Constructs a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable uniformly from their "standard" distribution
/// (`[0, 1)` for floats), mirroring `rand::distributions::Standard`.
pub trait StandardSample: Sized {
    /// Draws one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform double in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a generator can sample uniformly (half-open ranges only, matching
/// every call site in the workspace).
pub trait SampleRange {
    /// The sampled element type.
    type Output;

    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is negligible for the small spans used here.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                let v = self.start + u * (self.end - self.start);
                // Guard the open upper bound against fp rounding.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}
float_sample_range!(f64, f32);

/// High-level sampling interface, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draws one value from the type's standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (SplitMix64) standing in for `rand::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix once so nearby seeds diverge immediately.
            let mut rng = StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            };
            rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom::shuffle`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
