//! Failure-injection tests: every layer of the stack must turn malformed
//! inputs into typed errors rather than panics or silent corruption.

use granii::boost::{BoostError, Dataset as BoostDataset};
use granii::core::cost::CostModelSet;
use granii::core::{CoreError, Granii, GraniiOptions};
use granii::gnn::models::{GnnLayer, Prepared};
use granii::gnn::spec::{Composition, LayerConfig, ModelKind};
use granii::gnn::{Exec, GnnError, GraphCtx};
use granii::graph::{generators, io, Graph, GraphError};
use granii::matrix::device::{DeviceKind, Engine};
use granii::matrix::{CsrMatrix, DenseMatrix, MatrixError};

#[test]
fn kernel_layer_rejects_shape_mismatches() {
    let a = DenseMatrix::zeros(2, 3).unwrap();
    let b = DenseMatrix::zeros(5, 2).unwrap();
    assert!(matches!(
        granii::matrix::ops::gemm(&a, &b),
        Err(MatrixError::ShapeMismatch { op: "gemm", .. })
    ));
}

#[test]
fn oversized_allocations_are_guarded_not_aborted() {
    // The analogue of Table IV's illegal-memory-access row: a typed error.
    let err = DenseMatrix::zeros(1 << 20, 1 << 20).unwrap_err();
    assert!(matches!(err, MatrixError::AllocationTooLarge { .. }));
}

#[test]
fn invalid_csr_structures_are_rejected() {
    assert!(CsrMatrix::from_parts(2, 2, vec![0, 3, 2], vec![0, 1], None).is_err());
    assert!(CsrMatrix::from_parts(1, 2, vec![0, 1], vec![7], None).is_err());
}

#[test]
fn graph_layer_rejects_bad_inputs() {
    assert!(matches!(
        Graph::from_edges(3, &[(0, 9)]),
        Err(GraphError::NodeOutOfRange { node: 9, .. })
    ));
    assert!(generators::erdos_renyi(10, 100.0, 0).is_err());
    assert!(matches!(
        io::read_edge_list("1 banana\n".as_bytes()),
        Err(GraphError::Parse { line: 1, .. })
    ));
}

#[test]
fn gnn_layer_rejects_mismatched_features_and_compositions() {
    let g = generators::ring(10).unwrap();
    let ctx = GraphCtx::new(&g).unwrap();
    let engine = Engine::modeled(DeviceKind::Cpu);
    let exec = Exec::real(&engine);
    let layer = GnnLayer::new(ModelKind::Gcn, LayerConfig::new(4, 2), 1).unwrap();
    let comp = Composition::all_for(ModelKind::Gcn)[0];
    let p = layer.prepare(&exec, &ctx, comp).unwrap();

    let wrong_rows = DenseMatrix::zeros(3, 4).unwrap();
    assert!(matches!(
        layer.forward(&exec, &ctx, &p, &wrong_rows, comp),
        Err(GnnError::FeatureMismatch { .. })
    ));
    let wrong_cols = DenseMatrix::zeros(10, 7).unwrap();
    assert!(matches!(
        layer.forward(&exec, &ctx, &p, &wrong_cols, comp),
        Err(GnnError::DimensionMismatch { .. })
    ));
    let alien = Composition::all_for(ModelKind::Gat)[0];
    assert!(layer
        .forward(&exec, &ctx, &Prepared::default(), &wrong_cols, alien)
        .is_err());
}

#[test]
fn empty_graphs_are_rejected_by_the_context() {
    let g = Graph::from_edges(0, &[]).unwrap();
    assert!(GraphCtx::new(&g).is_err());
}

#[test]
fn boost_layer_rejects_degenerate_datasets() {
    let empty: &[Vec<f64>] = &[];
    assert_eq!(
        BoostDataset::from_rows(empty, &[]).unwrap_err(),
        BoostError::EmptyDataset
    );
    assert_eq!(
        BoostDataset::from_rows(&[vec![f64::NAN]], &[1.0]).unwrap_err(),
        BoostError::NonFinite
    );
}

#[test]
fn runtime_reports_missing_cost_models() {
    // An empty cost-model set: selection that needs models must fail loudly.
    let empty = CostModelSet::new(
        DeviceKind::H100,
        std::collections::BTreeMap::new(),
        std::collections::BTreeMap::new(),
    );
    let granii = Granii::with_cost_models(empty);
    let g = generators::power_law(100, 4, 1).unwrap();
    // (64, 64) is a shrink-scenario config with two GCN candidates → needs
    // the cost models.
    let err = granii.select(ModelKind::Gcn, &g, 64, 64).unwrap_err();
    assert!(matches!(err, CoreError::MissingCostModel { .. }), "{err}");
    // But a pure embedding-size decision still works without any models.
    let ok = granii.select(ModelKind::Gat, &g, 256, 32).unwrap();
    assert!(!ok.used_cost_models);
}

#[test]
fn corrupt_cost_model_json_is_a_typed_error() {
    assert!(matches!(
        CostModelSet::from_json("{not json"),
        Err(CoreError::Serde(_))
    ));
}

#[test]
fn invalid_layer_configs_are_rejected_everywhere() {
    assert!(GnnLayer::new(ModelKind::Gcn, LayerConfig::new(0, 8), 1).is_err());
    let granii = Granii::train_for_device(DeviceKind::Cpu, GraniiOptions::fast()).unwrap();
    let g = generators::ring(5).unwrap();
    assert!(granii.select(ModelKind::Gcn, &g, 8, 0).is_err());
}
