//! Cross-crate integration tests: the full GRANII pipeline from model spec to
//! executed kernels, checked against reference executions.

use granii::core::plan::CompiledModel;
use granii::core::{Granii, GraniiOptions};
use granii::gnn::models::GnnLayer;
use granii::gnn::spec::{Composition, LayerConfig, ModelKind};
use granii::gnn::system::{BaselineRunner, System};
use granii::gnn::train::Trainer;
use granii::gnn::{Exec, GraphCtx};
use granii::graph::datasets::{Dataset, Scale};
use granii::matrix::device::{DeviceKind, Engine};
use granii::matrix::DenseMatrix;

fn trained(device: DeviceKind) -> Granii {
    Granii::train_for_device(device, GraniiOptions::fast()).expect("offline stage")
}

/// The end-to-end guarantee: whatever composition GRANII selects, executing
/// it produces the same output as the baseline system's default composition
/// (same parameters), for every model, on a real-kernel run.
#[test]
fn selected_composition_matches_baseline_output() {
    let granii = trained(DeviceKind::H100);
    let graph = Dataset::CoAuthorsCiteseer.load(Scale::Tiny).unwrap();
    let ctx = GraphCtx::new(&graph).unwrap();
    let engine = Engine::modeled(DeviceKind::H100);
    let exec = Exec::real(&engine);
    let cfg = LayerConfig::new(12, 6);
    let h = DenseMatrix::random(graph.num_nodes(), 12, 1.0, 3);

    for kind in ModelKind::EVAL {
        let selection = granii.select(kind, &graph, cfg.k_in, cfg.k_out).unwrap();
        let layer = GnnLayer::new(kind, cfg, 42).unwrap();
        let prepared = layer.prepare(&exec, &ctx, selection.composition).unwrap();
        let ours = layer
            .forward(&exec, &ctx, &prepared, &h, selection.composition)
            .unwrap();

        let baseline_comp = System::Dgl.default_composition(kind, cfg);
        let prepared_b = layer.prepare(&exec, &ctx, baseline_comp).unwrap();
        let reference = layer
            .forward(&exec, &ctx, &prepared_b, &h, baseline_comp)
            .unwrap();

        let diff = ours.max_abs_diff(&reference).unwrap();
        assert!(diff < 1e-3, "{kind}: GRANII output diverges by {diff}");
    }
}

/// Training with the selected composition converges, and its per-step charge
/// is no worse than the worst composition's.
#[test]
fn training_with_selected_composition_converges() {
    let granii = trained(DeviceKind::A100);
    let graph = Dataset::ComAmazon.load(Scale::Tiny).unwrap();
    let ctx = GraphCtx::new(&graph).unwrap();
    let engine = Engine::modeled(DeviceKind::A100);
    let exec = Exec::real(&engine);
    let h = DenseMatrix::random(graph.num_nodes(), 8, 1.0, 4);
    let y = DenseMatrix::random(graph.num_nodes(), 4, 1.0, 5);

    for kind in [ModelKind::Gcn, ModelKind::Gat] {
        let sel = granii.select(kind, &graph, 8, 4).unwrap();
        let mut trainer = Trainer::new(kind, LayerConfig::new(8, 4), 6, 0.05).unwrap();
        let first = trainer.step(&exec, &ctx, &h, &y, sel.composition).unwrap();
        let mut last = first;
        for _ in 0..10 {
            last = trainer.step(&exec, &ctx, &h, &y, sel.composition).unwrap();
        }
        assert!(last < first, "{kind}: loss {first} -> {last}");
    }
}

/// The offline stage's §VI-B counts and the plan's scenario split reproduce
/// exactly through the whole stack.
#[test]
fn offline_stage_counts_match_paper() {
    let gcn = CompiledModel::compile(ModelKind::Gcn, LayerConfig::new(32, 256)).unwrap();
    assert_eq!(
        (gcn.enumerated, gcn.pruned, gcn.candidates.len()),
        (12, 8, 4)
    );
    let gat = CompiledModel::compile(ModelKind::Gat, LayerConfig::new(32, 256)).unwrap();
    assert_eq!(
        (gat.enumerated, gat.pruned, gat.candidates.len()),
        (2, 0, 2)
    );
}

/// Input sensitivity across the dataset suite: the GCN decision differs
/// between the densest and sparsest stand-ins at large widths.
#[test]
fn decisions_are_input_sensitive_across_datasets() {
    let granii = trained(DeviceKind::H100);
    let dense = Dataset::Mycielskian17.load(Scale::Small).unwrap();
    let sparse = Dataset::BelgiumOsm.load(Scale::Small).unwrap();
    let a = granii.select(ModelKind::Gcn, &dense, 1024, 1024).unwrap();
    let b = granii.select(ModelKind::Gcn, &sparse, 1024, 1024).unwrap();
    assert_ne!(a.composition, b.composition, "dense {a:?} vs sparse {b:?}");
}

/// Baseline emulation sanity: WiseGraph's binning makes its GCN iteration
/// slower than DGL's on dense graphs for the same modeled device.
#[test]
fn wisegraph_binning_is_visible_in_baselines() {
    let graph = Dataset::Mycielskian17.load(Scale::Tiny).unwrap();
    let ctx = GraphCtx::new(&graph).unwrap();
    let cfg = LayerConfig::new(32, 32);
    let h = DenseMatrix::zeros(graph.num_nodes(), 32).unwrap();

    let time_for = |system: System| {
        let engine = Engine::modeled(DeviceKind::A100);
        let exec = Exec::virtual_only(&engine);
        let runner = BaselineRunner::new(system, ModelKind::Gcn, cfg, 1, &exec, &ctx).unwrap();
        engine.take_profile();
        runner.iterate(&exec, &ctx, &h).unwrap();
        engine.take_profile().total_seconds()
    };
    assert!(time_for(System::WiseGraph) > 1.5 * time_for(System::Dgl));
}

/// Cost models persist and reload across a (simulated) process boundary —
/// the offline/online decoupling of Fig 5.
#[test]
fn offline_artifacts_round_trip() {
    let granii = trained(DeviceKind::Cpu);
    let json = granii.cost_models().to_json().unwrap();
    let reloaded = granii::core::cost::CostModelSet::from_json(&json).unwrap();
    let online = Granii::with_cost_models(reloaded);
    let graph = Dataset::Reddit.load(Scale::Tiny).unwrap();
    for kind in ModelKind::EVAL {
        let a = granii.select(kind, &graph, 64, 128).unwrap();
        let b = online.select(kind, &graph, 64, 128).unwrap();
        assert_eq!(a.composition, b.composition, "{kind}");
    }
}

/// GAT decisions follow the paper's §III-B analysis end to end: shrinking
/// sizes always reuse; the growing case is resolved by the cost models.
#[test]
fn gat_selection_follows_paper_analysis() {
    let granii = trained(DeviceKind::H100);
    let graph = Dataset::Reddit.load(Scale::Tiny).unwrap();
    let shrink = granii.select(ModelKind::Gat, &graph, 256, 32).unwrap();
    assert!(!shrink.used_cost_models);
    assert_eq!(shrink.composition.name(), "gat/reuse");
    let grow = granii.select(ModelKind::Gat, &graph, 32, 256).unwrap();
    assert!(grow.used_cost_models);
    assert!(matches!(grow.composition, Composition::Gat(_)));
}
