//! Integration tests asserting the *shape* of the paper's headline results on
//! the tiny dataset stand-ins — the same checks `EXPERIMENTS.md` documents at
//! full scale.

use granii::core::{Granii, GraniiOptions};
use granii::gnn::spec::ModelKind;
use granii::graph::datasets::{Dataset, Scale};
use granii::matrix::device::DeviceKind;
use granii_bench::grid::{embed_combos, EvalConfig, Mode, Record};
use granii_bench::policies::{geomean_speedup, Policy};
use granii_bench::runner::evaluate_config;
use granii_gnn::system::System;

/// Builds a reduced grid of records (tiny graphs, one device) shared by the
/// assertions below.
fn records() -> Vec<Record> {
    let granii = Granii::train_for_device(DeviceKind::H100, GraniiOptions::fast()).unwrap();
    let mut out = Vec::new();
    for dataset in [Dataset::Reddit, Dataset::Mycielskian17, Dataset::BelgiumOsm] {
        let graph = dataset.load(Scale::Tiny).unwrap();
        for system in System::ALL {
            for model in [ModelKind::Gcn, ModelKind::Gat, ModelKind::Sgc] {
                for (k1, k2) in embed_combos(model).into_iter().take(3) {
                    for mode in Mode::ALL {
                        let cfg = EvalConfig {
                            system,
                            device: DeviceKind::H100,
                            model,
                            dataset,
                            k1,
                            k2,
                            mode,
                        };
                        out.push(evaluate_config(&cfg, &graph, &granii).unwrap());
                    }
                }
            }
        }
    }
    out
}

#[test]
fn headline_shapes_hold() {
    let records = records();

    // 1. GRANII achieves an overall geomean speedup > 1 in both modes, with
    //    training <= inference (Table III's trend).
    let inference: Vec<f64> = records
        .iter()
        .filter(|r| r.config.mode == Mode::Inference)
        .map(Record::speedup)
        .collect();
    let training: Vec<f64> = records
        .iter()
        .filter(|r| r.config.mode == Mode::Training)
        .map(Record::speedup)
        .collect();
    let gm = |v: &[f64]| {
        v.iter()
            .map(|x| x.ln())
            .sum::<f64>()
            .exp()
            .powf(1.0 / v.len() as f64)
    };
    let gi = gm(&inference);
    let gt = gm(&training);
    assert!(gi > 1.0, "inference geomean {gi}");
    assert!(gt > 1.0, "training geomean {gt}");
    assert!(
        gt <= gi + 0.05,
        "training {gt} should not exceed inference {gi}"
    );

    // 2. GRANII never loses badly: worst-case slowdown bounded (the paper's
    //    slowdowns are small and rare, Fig 8(d)). Judged on composition choice
    //    alone — the one-time selection overhead is wall-clock (and inflated
    //    under debug builds); it is bounded by its own test below.
    let worst = records
        .iter()
        .map(|r| {
            let chosen = r
                .seconds_of(r.granii_composition)
                .expect("chosen was timed");
            r.baseline_seconds / chosen
        })
        .fold(f64::INFINITY, f64::min);
    assert!(worst > 0.8, "worst-case composition-choice speedup {worst}");

    // 3. GRANII beats every single-factor oracle and approaches Optimal
    //    (Table VI's ordering).
    let granii_s = geomean_speedup(Policy::Granii, &records);
    let optimal_s = geomean_speedup(Policy::Optimal, &records);
    assert!(optimal_s >= granii_s * 0.999);
    assert!(
        granii_s > 0.95 * optimal_s,
        "GRANII {granii_s} vs optimal {optimal_s}"
    );
    for policy in [Policy::Hw, Policy::Graph, Policy::Sys, Policy::Static] {
        let s = geomean_speedup(policy, &records);
        assert!(
            granii_s >= s - 1e-9,
            "GRANII {granii_s} must match or beat {} ({s})",
            policy.name()
        );
    }
}

/// The dense-graph WiseGraph speedups exceed the sparse-graph ones for GCN
/// (the binning effect, §VI-C1). This is a density-contrast effect, so it is
/// asserted at `Small` scale where the stand-ins' density ratios match the
/// paper's suite.
#[test]
fn wisegraph_gcn_speedup_grows_with_density() {
    let granii = Granii::train_for_device(DeviceKind::A100, GraniiOptions::fast()).unwrap();
    let wise_gcn = |dataset: Dataset| {
        let graph = dataset.load(Scale::Small).unwrap();
        let cfg = EvalConfig {
            system: System::WiseGraph,
            device: DeviceKind::A100,
            model: ModelKind::Gcn,
            dataset,
            k1: 32,
            k2: 32,
            mode: Mode::Inference,
        };
        evaluate_config(&cfg, &graph, &granii).unwrap().speedup()
    };
    let mc = wise_gcn(Dataset::Mycielskian17);
    let bl = wise_gcn(Dataset::BelgiumOsm);
    assert!(mc > 2.0 * bl, "MC {mc} vs BL {bl}");
}

#[test]
fn overheads_are_small_and_one_time() {
    let granii = Granii::train_for_device(DeviceKind::H100, GraniiOptions::fast()).unwrap();
    let graph = Dataset::Reddit.load(Scale::Tiny).unwrap();
    let sel = granii.select(ModelKind::Gcn, &graph, 64, 64).unwrap();
    // Sub-second on any host; the paper reports <= 7ms (GPU hosts).
    assert!(
        sel.overhead_seconds() < 1.0,
        "overhead {}",
        sel.overhead_seconds()
    );
}

#[test]
fn a100_speedups_exceed_h100_for_wisegraph_gcn() {
    // Table III: WiseGraph GCN speedups are much larger on the A100.
    let graph = Dataset::Mycielskian17.load(Scale::Tiny).unwrap();
    let speedup_on = |device: DeviceKind| {
        let granii = Granii::train_for_device(device, GraniiOptions::fast()).unwrap();
        let cfg = EvalConfig {
            system: System::WiseGraph,
            device,
            model: ModelKind::Gcn,
            dataset: Dataset::Mycielskian17,
            k1: 32,
            k2: 32,
            mode: Mode::Inference,
        };
        evaluate_config(&cfg, &graph, &granii).unwrap().speedup()
    };
    let a100 = speedup_on(DeviceKind::A100);
    let h100 = speedup_on(DeviceKind::H100);
    assert!(a100 > h100, "a100 {a100} vs h100 {h100}");
}
