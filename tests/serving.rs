//! Concurrency stress tests (ISSUE 4, satellite 5): many threads hammering
//! one shared [`Granii`] — directly and through the serving runtime — must
//! produce selections and outputs bitwise identical to a serial run. Runs
//! under the CI `GRANII_THREADS` matrix (1 and default), so both the
//! single-threaded and parallel kernel paths are covered.

use std::sync::Arc;

use granii::core::{Granii, GraniiOptions};
use granii::gnn::spec::{Composition, LayerConfig, ModelKind};
use granii::graph::datasets::{Dataset, Scale};
use granii::graph::Graph;
use granii::matrix::device::DeviceKind;
use granii::serve::{ServeConfig, ServeRequest, Server};

const THREADS: usize = 8;
const ROUNDS: usize = 4;

/// The mixed workload: every thread cycles through all of these.
fn signatures() -> Vec<(ModelKind, Arc<Graph>, usize, usize)> {
    let citeseer = Arc::new(
        Dataset::CoAuthorsCiteseer
            .load(Scale::Tiny)
            .expect("tiny dataset"),
    );
    let mycielskian = Arc::new(
        Dataset::Mycielskian17
            .load(Scale::Tiny)
            .expect("tiny dataset"),
    );
    vec![
        (ModelKind::Gcn, citeseer.clone(), 48, 96),
        (ModelKind::Gcn, mycielskian.clone(), 96, 48),
        (ModelKind::Gin, citeseer.clone(), 32, 64),
        (ModelKind::Sgc, mycielskian.clone(), 64, 32),
        (ModelKind::Gat, citeseer, 16, 32),
        (ModelKind::Tagcn, mycielskian, 32, 16),
    ]
}

fn granii() -> Arc<Granii> {
    Arc::new(Granii::train_for_device(DeviceKind::H100, GraniiOptions::fast()).expect("training"))
}

/// The selection path is deterministic under contention: 8 threads times 4
/// rounds of mixed `select_with_config` calls against one shared instance
/// all reproduce the serial selections — same composition, same predicted
/// costs to the bit.
#[test]
fn concurrent_selections_are_bitwise_identical_to_serial() {
    let granii = granii();
    let work = signatures();

    // Serial reference: one selection per signature.
    let reference: Vec<(Composition, Vec<(Composition, u64)>)> = work
        .iter()
        .map(|(model, graph, k1, k2)| {
            let sel = granii
                .select_with_config(*model, graph, LayerConfig::new(*k1, *k2), 100)
                .expect("serial selection");
            let predicted = sel
                .predicted
                .iter()
                .map(|(c, cost)| (*c, cost.to_bits()))
                .collect();
            (sel.composition, predicted)
        })
        .collect();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let granii = &granii;
            let work = &work;
            let reference = &reference;
            s.spawn(move || {
                for round in 0..ROUNDS {
                    // Offset the start so threads contend on different
                    // signatures at the same instant.
                    for i in 0..work.len() {
                        let idx = (t + round + i) % work.len();
                        let (model, graph, k1, k2) = &work[idx];
                        let sel = granii
                            .select_with_config(*model, graph, LayerConfig::new(*k1, *k2), 100)
                            .expect("concurrent selection");
                        let (ref_comp, ref_predicted) = &reference[idx];
                        assert_eq!(
                            sel.composition, *ref_comp,
                            "thread {t} round {round}: selection diverged for {model}"
                        );
                        let predicted: Vec<(Composition, u64)> = sel
                            .predicted
                            .iter()
                            .map(|(c, cost)| (*c, cost.to_bits()))
                            .collect();
                        assert_eq!(
                            predicted, *ref_predicted,
                            "thread {t} round {round}: predicted costs diverged for {model}"
                        );
                    }
                }
            });
        }
    });
}

/// The serving path is deterministic under contention: outputs from a
/// multi-worker server under 8 concurrent clients are bitwise identical to a
/// serial single-worker run, cache hits and misses alike.
#[test]
fn concurrent_serving_outputs_are_bitwise_identical_to_serial() {
    let granii = granii();
    let work = signatures();

    // Serial reference: fresh single-worker server, one response per
    // signature (all cache-cold).
    let serial = Server::start(
        granii.clone(),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let reference: Vec<(Composition, Vec<u32>)> = work
        .iter()
        .map(|(model, graph, k1, k2)| {
            let response = serial
                .process(ServeRequest::new(*model, graph.clone(), *k1, *k2))
                .expect("serial request");
            let bits = response
                .output
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            (response.composition, bits)
        })
        .collect();
    serial.shutdown();

    let server = Server::start(
        granii,
        ServeConfig {
            workers: 4,
            queue_depth: THREADS * work.len(),
            ..ServeConfig::default()
        },
    );
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let server = &server;
            let work = &work;
            let reference = &reference;
            s.spawn(move || {
                for round in 0..ROUNDS {
                    for i in 0..work.len() {
                        let idx = (t + round + i) % work.len();
                        let (model, graph, k1, k2) = &work[idx];
                        let response = server
                            .process(ServeRequest::new(*model, graph.clone(), *k1, *k2))
                            .expect("concurrent request");
                        let (ref_comp, ref_bits) = &reference[idx];
                        assert_eq!(
                            response.composition, *ref_comp,
                            "thread {t} round {round}: composition diverged for {model}"
                        );
                        let bits: Vec<u32> = response
                            .output
                            .as_slice()
                            .iter()
                            .map(|v| v.to_bits())
                            .collect();
                        assert_eq!(
                            &bits, ref_bits,
                            "thread {t} round {round}: output bits diverged for {model}"
                        );
                    }
                }
            });
        }
    });
    let stats = server.stats();
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.completed, (THREADS * ROUNDS * work.len()) as u64);
    assert_eq!(stats.shed, 0, "queue was sized to never shed");
    server.shutdown();
}
