//! End-to-end checks of the telemetry layer: a traced CLI run producing a
//! valid Chrome trace, and span coverage of every matrix primitive.
//!
//! Telemetry state is process-global, so the tests serialize on `TEST_LOCK`.

use std::collections::BTreeSet;
use std::sync::Mutex;

use granii_matrix::device::{DeviceKind, Engine};
use granii_matrix::{PrimitiveKind, WorkStats};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn cli(args: &[&str]) -> Result<String, String> {
    let raw: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    granii_cli::run(&granii_cli::Args::parse(&raw)?)
}

/// The acceptance check for `--trace-out`: a traced `bench` run (kernels +
/// selection + a training step) must emit a Chrome trace-event JSON array of
/// objects with `name`/`ph`/`ts` keys and at least four distinct span names
/// spanning the matrix-kernel, selection, and training layers.
#[test]
fn traced_cli_bench_writes_valid_chrome_trace() {
    let _g = TEST_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let dir = std::env::temp_dir().join("granii-observability-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let models = dir.join("models.json");
    let trace = dir.join("trace.json");
    let models_s = models.to_str().expect("utf8");
    let trace_s = trace.to_str().expect("utf8");

    cli(&[
        "train", "--device", "h100", "--out", models_s, "--fast", "true",
    ])
    .expect("train");
    let out = cli(&[
        "bench",
        "--models",
        models_s,
        "--model",
        "gcn",
        "--k1",
        "8",
        "--k2",
        "8",
        "--iters",
        "2",
        "--dataset",
        "RD",
        "--trace-out",
        trace_s,
        "--trace-summary",
    ])
    .expect("bench");
    assert!(out.contains("GRANII's choice"), "{out}");
    assert!(out.contains("training step"), "{out}");
    assert!(out.contains("trace:"), "{out}");

    let json = std::fs::read_to_string(&trace).expect("trace file");
    let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    let events = value.as_array().expect("trace is a JSON array");
    assert!(!events.is_empty());
    let mut names = BTreeSet::new();
    for event in events {
        let obj = event.as_object().expect("event is an object");
        let name = obj.get("name").and_then(|v| v.as_str()).expect("name key");
        assert_eq!(obj.get("ph").and_then(|v| v.as_str()), Some("X"), "ph key");
        assert!(obj.get("ts").and_then(|v| v.as_f64()).is_some(), "ts key");
        assert!(obj.get("dur").and_then(|v| v.as_f64()).is_some(), "dur key");
        assert!(obj.get("tid").and_then(|v| v.as_f64()).is_some(), "tid key");
        names.insert(name.to_string());
    }
    assert!(
        names.len() >= 4,
        "expected >= 4 distinct span names, got {names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("kernel.")),
        "matrix layer missing: {names:?}"
    );
    assert!(
        names.contains("select"),
        "selection layer missing: {names:?}"
    );
    assert!(
        names.contains("train.step"),
        "training layer missing: {names:?}"
    );

    std::fs::remove_file(&models).ok();
    std::fs::remove_file(&trace).ok();
}

/// The acceptance check for `select --audit`: per-candidate predicted cost,
/// chosen-vs-oracle regret, and the cost model's ln-latency MAPE must all be
/// reported.
#[test]
fn audited_cli_select_reports_regret_and_oracle() {
    let dir = std::env::temp_dir().join("granii-audit-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let models = dir.join("models.json");
    let models_s = models.to_str().expect("utf8");

    cli(&[
        "train", "--device", "h100", "--out", models_s, "--fast", "true",
    ])
    .expect("train");
    let out = cli(&[
        "select",
        "--models",
        models_s,
        "--model",
        "gcn",
        "--k1",
        "256",
        "--k2",
        "64",
        "--dataset",
        "MC",
        "--audit",
    ])
    .expect("select");
    assert!(out.contains("selected:"), "{out}");
    assert!(out.contains("audit: oracle"), "{out}");
    assert!(out.contains("regret"), "{out}");
    assert!(out.contains("ln-latency MAPE"), "{out}");
    assert!(out.contains("<- chosen"), "{out}");
    // Eligible candidates each carry a measured and a predicted column.
    let rows = out
        .lines()
        .filter(|l| l.contains(" ms ") && l.contains("gcn/"))
        .count();
    assert!(rows >= 2, "expected >= 2 measured candidates: {out}");

    std::fs::remove_file(&models).ok();
}

/// Every primitive the engine executes must surface as a span named after its
/// kind, carrying the `WorkStats`-derived attributes.
#[test]
fn every_primitive_kind_emits_a_span() {
    let _g = TEST_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    granii_telemetry::reset();
    granii_telemetry::enable();
    let engine = Engine::modeled(DeviceKind::A100);
    engine.run(WorkStats::gemm(16, 16, 16), || ());
    engine.run(WorkStats::spmm(16, 64, 8, true, 0.5), || ());
    engine.run(WorkStats::spmm(16, 64, 8, false, 0.5), || ());
    engine.charge(WorkStats::sddmm(16, 64, 8, 0.5));
    engine.charge(WorkStats::row_broadcast(16, 8));
    engine.charge(WorkStats::col_broadcast(16, 8));
    engine.charge(WorkStats::elementwise(128, 1));
    engine.charge(WorkStats::edge_softmax(16, 64, 0.5));
    engine.charge(WorkStats::binning(64, 16));
    granii_telemetry::disable();

    let spans = granii_telemetry::take_spans();
    let names: BTreeSet<&str> = spans.iter().map(|s| s.name).collect();
    for kind in PrimitiveKind::ALL {
        assert!(
            names.contains(kind.span_name()),
            "missing span for {kind}: {names:?}"
        );
    }
    // WorkStats attributes ride along on every kernel span.
    for span in &spans {
        assert!(span.attrs.iter().any(|(k, _)| *k == "flops"), "{span:?}");
        assert!(span.attrs.iter().any(|(k, _)| *k == "bytes"), "{span:?}");
    }

    // Metrics side: one histogram per kind plus the dispatch counter.
    let snapshot = granii_telemetry::metrics_snapshot();
    assert!(snapshot
        .counters
        .iter()
        .any(|(n, v)| n == "engine.kernels" && *v == 9));
    assert_eq!(snapshot.histograms.len(), PrimitiveKind::ALL.len());
    granii_telemetry::reset();
}
